#!/usr/bin/env python3
"""BFS frontier data structures: block queue vs TLS queues vs pennant bag.

Runs the paper's §IV-C comparison on one graph, validates every variant
against the sequential oracle, prints the speedup table next to the
§III-C analytic model, and demos the pennant-bag API directly.

Run:  python examples/bfs_frontier_structures.py
"""

import numpy as np

from repro import KNF, bfs_model_speedup, bfs_sequential
from repro.experiments.report import format_rows
from repro.graph import tube_mesh
from repro.kernels.bfs import Bag, frontier_profile, simulate_bfs

VARIANTS = [
    ("OpenMP-Block-relaxed", "openmp-block", True),
    ("OpenMP-Block (locked)", "openmp-block", False),
    ("TBB-Block-relaxed", "tbb-block", True),
    ("OpenMP-TLS (SNAP)", "openmp-tls", False),
    ("CilkPlus-Bag-relaxed", "cilk-bag", True),
]


def main():
    # a deep tube, like the paper's pwtk outlier
    graph = tube_mesh(20_000, section=80, clique=14, cliques_per_vertex=1.0,
                      coupling=5, seed=3, name="bfs-demo")
    source = graph.n_vertices // 2
    ref = bfs_sequential(graph, source)
    widths = frontier_profile(graph, source)
    print(f"graph: {graph.n_vertices} vertices, {len(widths)} BFS levels, "
          f"mean level width {widths.mean():.0f}\n")

    threads = [1, 13, 31, 121]
    block = 8
    rows = []
    baseline = None
    for label, variant, relaxed in VARIANTS:
        cycles = {}
        for t in threads:
            run = simulate_bfs(graph, t, variant=variant, relaxed=relaxed,
                               block=block, config=KNF, cache_scale=0.1,
                               seed=1)
            assert np.array_equal(run.dist, ref), f"{label} mislabelled BFS!"
            cycles[t] = run.total_cycles
        if baseline is None or cycles[1] < baseline:
            baseline = cycles[1]
        rows.append((label, cycles))
    model_row = tuple(["Model (paper III-C)"] +
                      [bfs_model_speedup(widths, t, block) /
                       max(1e-9, bfs_model_speedup(widths, 1, block))
                       for t in threads])
    table = [model_row] + [
        tuple([label] + [baseline / c[t] for t in threads])
        for label, c in rows
    ]
    print(format_rows(["variant"] + [f"{t}t" for t in threads], table))
    print("\nall five variants produced the exact sequential labelling;")
    print("the relaxed block queue tracks the model, the bag does not "
          "(allocations + reducer merges).\n")

    # the pennant bag as a standalone data structure
    bag = Bag(grain=16)
    for v in range(1000):
        bag.insert(v)
    half = bag.split()
    print(f"pennant bag demo: inserted 1000, split into {len(bag)} + "
          f"{len(half)}; {bag.allocations} node allocations so far")
    bag.union(half)
    bag.check_invariants()
    print(f"after union: {len(bag)} elements, invariants hold")


if __name__ == "__main__":
    main()
