#!/usr/bin/env python3
"""Scaling study: how a graph kernel scales on the simulated Intel MIC.

Reproduces the paper's §V methodology on any graph you point it at —
sweep the thread count, compare natural vs. shuffled vertex ordering, and
report where SMT starts to pay (the paper's headline result is that
memory-bound kernels keep scaling all the way to 4 threads/core).

Run:  python examples/mic_scaling_study.py [vertices]
"""

import sys

from repro import KNF
from repro.experiments.report import format_rows
from repro.graph import apply_ordering, tube_mesh
from repro.kernels.coloring.parallel import parallel_coloring
from repro.models import saturation_threads
from repro.runtime import ProgrammingModel, RuntimeSpec, Schedule


def sweep(graph, threads, cache_scale):
    spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                       chunk=16)
    cycles = {t: parallel_coloring(graph, t, spec, KNF,
                                   cache_scale=cache_scale).total_cycles
              for t in threads}
    return [cycles[1] / cycles[t] for t in threads]


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24_000
    graph = tube_mesh(n, section=n // 160, clique=14, cliques_per_vertex=1.0,
                      coupling=5, seed=1, name="study")
    shuffled = apply_ordering(graph, "random", seed=1)
    cache_scale = 0.1
    threads = [1, 11, 31, 61, 91, 121]

    print(f"colouring scaling study on {graph.n_vertices} vertices / "
          f"{graph.n_edges} edges (KNF: {KNF.n_cores} cores x "
          f"{KNF.smt_per_core} SMT)\n")

    natural = sweep(graph, threads, cache_scale)
    random_ = sweep(shuffled, threads, cache_scale)

    rows = [(t, nat, rnd) for t, nat, rnd in zip(threads, natural, random_)]
    print(format_rows(["threads", "natural order", "shuffled"], rows))

    print("\nreading the table the paper's way:")
    print(f"  - both orderings scale past the {KNF.n_cores} cores: "
          "SMT is hiding memory latency;")
    ratio = random_[-1] / threads[-1]
    print(f"  - shuffled speedup at {threads[-1]} threads is "
          f"{ratio:.2f}x the thread count "
          f"({'super' if ratio > 1 else 'sub'}-linear): destroying "
          "locality makes the kernel memory-bound, which SMT + the chip's "
          "aggregate cache absorb;")
    # a rough analytic estimate of where the issue pipeline would saturate
    sat = saturation_threads(400.0, 550.0, KNF)
    print(f"  - the SMT roofline model puts issue saturation around "
          f"{sat:.0f} threads for a kernel with this compute/stall mix.")


if __name__ == "__main__":
    main()
