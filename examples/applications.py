#!/usr/bin/env python3
"""The applications the paper motivates, end to end.

§I and §III-B of the paper motivate the kernels by their applications:
task-graph scheduling (colouring), centrality (BFS), PageRank and heat
diffusion (the irregular kernel).  This example runs each one for real on
the same mesh, then prices the heavy ones on the simulated Knights Ferry.

Run:  python examples/applications.py
"""

import numpy as np

from repro.apps import (betweenness_centrality, heat_diffusion, pagerank,
                        phase_schedule, schedule_makespan, simulate_pagerank)
from repro.graph import tube_mesh
from repro.machine import KNF


def main():
    g = tube_mesh(4_000, section=80, clique=10, cliques_per_vertex=1.0,
                  coupling=4, hubs=4, hub_degree=40, seed=17, name="apps")
    print(f"mesh: {g.n_vertices} vertices, {g.n_edges} edges\n")

    # --- task scheduling via colouring (§I) ---------------------------------
    sched = phase_schedule(g)
    makespan = schedule_makespan(sched, n_workers=121, task_cost=1.0,
                                 barrier_cost=3.0)
    print(f"task scheduling: {sched.n_tasks} tasks -> {sched.n_phases} "
          f"conflict-free phases ({sched.n_synchronizations} barriers), "
          f"makespan {makespan:.0f} on 121 workers")

    # --- betweenness centrality via BFS (§I) --------------------------------
    scores = betweenness_centrality(g, sources=16, seed=1)
    top = np.argsort(scores)[-3:][::-1]
    print(f"betweenness (16 sampled sources): top vertices {list(top)} "
          f"with scores {[f'{scores[v]:.4f}' for v in top]}")

    # --- PageRank (§III-B archetype) ----------------------------------------
    pr = pagerank(g)
    print(f"pagerank: converged in {pr.iterations} iterations "
          f"(residual {pr.residual:.2e}); top vertex {int(np.argmax(pr.ranks))}")
    sim = simulate_pagerank(g, n_threads=121, iterations=pr.iterations,
                            config=KNF, cache_scale=0.1)
    base = simulate_pagerank(g, n_threads=1, iterations=pr.iterations,
                             config=KNF, cache_scale=0.1)
    print(f"  on simulated KNF: {pr.iterations} sweeps speed up "
          f"{base.total_cycles / sim.total_cycles:.1f}x on 121 threads")

    # --- heat diffusion (§III-B archetype) ----------------------------------
    heat = heat_diffusion(g, {0: 0.0, g.n_vertices - 1: 100.0}, tol=1e-6,
                          max_iterations=200_000)
    mid = heat.temperature[g.n_vertices // 2]
    print(f"heat diffusion: converged={heat.converged} in "
          f"{heat.iterations} iterations; midpoint temperature {mid:.1f} "
          "(between the 0/100 boundaries)")


if __name__ == "__main__":
    main()
