#!/usr/bin/env python3
"""Compare the three programming models on one kernel, the paper's way.

OpenMP, Cilk Plus and TBB run the same iterative parallel colouring; the
differences you see are pure runtime-system effects — scheduling policy,
work-stealing distribution, thread-local-storage access, loop-body
outlining — which is exactly the comparison of the paper's Figure 1.

Run:  python examples/programming_models.py
"""

from repro import KNF
from repro.experiments.report import format_rows
from repro.graph import tube_mesh
from repro.kernels.coloring.parallel import parallel_coloring
from repro.runtime import (Partitioner, ProgrammingModel, RuntimeSpec,
                           Schedule, TlsMode)

VARIANTS = {
    "OpenMP static": RuntimeSpec(ProgrammingModel.OPENMP,
                                 schedule=Schedule.STATIC, chunk=8),
    "OpenMP dynamic": RuntimeSpec(ProgrammingModel.OPENMP,
                                  schedule=Schedule.DYNAMIC, chunk=16),
    "OpenMP guided": RuntimeSpec(ProgrammingModel.OPENMP,
                                 schedule=Schedule.GUIDED, chunk=16),
    "Cilk Plus (holder)": RuntimeSpec(ProgrammingModel.CILK,
                                      tls_mode=TlsMode.HOLDER, chunk=16),
    "Cilk Plus (worker id)": RuntimeSpec(ProgrammingModel.CILK,
                                         tls_mode=TlsMode.WORKER_ID, chunk=16),
    "TBB simple": RuntimeSpec(ProgrammingModel.TBB,
                              partitioner=Partitioner.SIMPLE, chunk=8),
    "TBB auto": RuntimeSpec(ProgrammingModel.TBB,
                            partitioner=Partitioner.AUTO, chunk=8),
    "TBB affinity": RuntimeSpec(ProgrammingModel.TBB,
                                partitioner=Partitioner.AFFINITY, chunk=8),
}


def main():
    graph = tube_mesh(24_000, section=150, clique=14, cliques_per_vertex=1.0,
                      coupling=5, seed=2, name="models-demo")
    threads = [1, 31, 121]
    cache_scale = 0.1

    cycles = {}
    for name, spec in VARIANTS.items():
        for t in threads:
            run = parallel_coloring(graph, t, spec, KNF,
                                    cache_scale=cache_scale, seed=1)
            cycles[(name, t)] = run.total_cycles

    # the paper's baseline: the fastest 1-thread configuration
    baseline = min(cycles[(name, 1)] for name in VARIANTS)
    rows = []
    for name in VARIANTS:
        rows.append(tuple([name] + [baseline / cycles[(name, t)]
                                    for t in threads]))
    print(f"colouring speedups on simulated KNF "
          f"({graph.n_vertices} vertices, baseline = fastest 1-thread run)\n")
    print(format_rows(["variant"] + [f"{t}t" for t in threads], rows))
    print("\nwhat to look for (paper §V-B):")
    print("  - OpenMP leads: raw pointers into pre-allocated scratch,"
          " straight-line loop body;")
    print("  - TBB's simple partitioner beats auto/affinity at scale;")
    print("  - Cilk trails: per-access view lookups and the outlined loop"
          " body consume issue slots that SMT multiplies.")


if __name__ == "__main__":
    main()
