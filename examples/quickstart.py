#!/usr/bin/env python3
"""Quickstart: colour a graph and run BFS, sequentially and on the
simulated Knights Ferry.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (KNF, bfs_parallel, bfs_sequential, greedy_coloring,
                   parallel_coloring, verify_coloring)
from repro.graph import tube_mesh
from repro.runtime import ProgrammingModel, RuntimeSpec, Schedule


def main():
    # 1. Build a graph. tube_mesh mimics the paper's FEM matrices; any
    #    CSRGraph works (see repro.graph.generators and repro.graph.io).
    graph = tube_mesh(20_000, section=120, clique=12, cliques_per_vertex=1.0,
                      coupling=4, seed=42, name="demo")
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges, "
          f"max degree {graph.max_degree}")

    # 2. Sequential greedy colouring (the paper's Algorithm 1).
    n_colors, colors = greedy_coloring(graph)
    assert verify_coloring(graph, colors)
    print(f"sequential greedy colouring: {n_colors} colours")

    # 3. The same colouring, simulated on a 121-thread Knights Ferry with
    #    OpenMP dynamic scheduling (Algorithms 2-4).
    spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                       chunk=16)
    base = parallel_coloring(graph, 1, spec, KNF, cache_scale=0.1)
    run = parallel_coloring(graph, 121, spec, KNF, cache_scale=0.1)
    assert verify_coloring(graph, run.colors)
    print(f"parallel colouring on KNF/121t: {run.n_colors} colours in "
          f"{run.rounds} rounds (conflicts per round: "
          f"{run.conflicts_per_round}), "
          f"speedup {base.total_cycles / run.total_cycles:.1f}x")

    # 4. BFS: the sequential oracle and the simulated block-queue variant.
    source = graph.n_vertices // 2
    dist = bfs_sequential(graph, source)
    print(f"BFS from {source}: {dist.max() + 1} levels")
    dist_par = bfs_parallel(graph, source=source, n_threads=121, block=8,
                            cache_scale=0.1)
    assert np.array_equal(dist, dist_par)
    print("parallel layered BFS produced the exact same labelling")


if __name__ == "__main__":
    main()
