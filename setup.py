# legacy develop install (no wheel package available offline)
from setuptools import setup
setup()
