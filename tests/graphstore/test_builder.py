"""StreamingCSRBuilder: exact from_edges equivalence, bounded memory."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graphstore.builder import StreamingCSRBuilder


class TestEquivalence:
    def test_matches_from_edges_randomized(self):
        """Block-fed builds equal one-shot from_edges on random inputs."""
        rng = np.random.default_rng(7)
        for trial in range(15):
            n = int(rng.integers(1, 180))
            m = int(rng.integers(0, 1500))
            edges = rng.integers(0, n, size=(m, 2))
            reference = CSRGraph.from_edges(n, edges)
            builder = StreamingCSRBuilder(
                n, block_edges=int(rng.integers(2, 96)))
            i = 0
            while i < m:
                step = int(rng.integers(1, 64))
                builder.add_edges(edges[i:i + step, 0], edges[i:i + step, 1])
                i += step
            graph = builder.finalize()
            assert reference.structurally_equal(graph), f"trial {trial}"
            graph.validate()

    def test_self_loops_dropped(self):
        builder = StreamingCSRBuilder(4, block_edges=8)
        builder.add_edges([0, 1, 2], [0, 1, 3])
        graph = builder.finalize()
        assert graph.n_edges == 1 and graph.has_edge(2, 3)

    def test_duplicates_across_blocks_merge(self):
        """The same edge fed in different blocks appears once."""
        builder = StreamingCSRBuilder(5, block_edges=4)
        for _ in range(6):
            builder.add_edges([1], [3])
            builder.add_edges([3], [1])  # reversed listing too
        graph = builder.finalize()
        assert graph.n_edges == 1
        assert graph.neighbors(1).tolist() == [3]

    def test_empty_and_edgeless(self):
        assert StreamingCSRBuilder(0).finalize().n_vertices == 0
        graph = StreamingCSRBuilder(9).finalize()
        assert graph.n_vertices == 9 and graph.n_directed_entries == 0
        graph.validate()

    def test_endpoint_validation(self):
        builder = StreamingCSRBuilder(3)
        with pytest.raises(ValueError, match="out of range"):
            builder.add_edges([0], [3])
        with pytest.raises(ValueError, match="out of range"):
            builder.add_edges([-1], [2])

    def test_shape_mismatch(self):
        builder = StreamingCSRBuilder(3)
        with pytest.raises(ValueError, match="mismatch"):
            builder.add_edges([0, 1], [2])

    def test_single_use(self):
        builder = StreamingCSRBuilder(3)
        builder.finalize()
        with pytest.raises(RuntimeError):
            builder.finalize()
        with pytest.raises(RuntimeError):
            builder.add_edges([0], [1])

    def test_high_degree_row_exceeding_block(self):
        """One row larger than the block still compacts correctly."""
        n = 500
        builder = StreamingCSRBuilder(n, block_edges=64)
        hub_targets = np.arange(1, n, dtype=np.int64)
        builder.add_edges(np.zeros(n - 1, dtype=np.int64), hub_targets)
        graph = builder.finalize()
        assert graph.max_degree == n - 1
        assert np.array_equal(graph.neighbors(0), hub_targets)


class TestBoundedMemory:
    def test_result_is_mmap_backed(self):
        """finalize() keeps indices out of the Python heap (file-backed)."""
        import mmap
        builder = StreamingCSRBuilder(100, block_edges=32)
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 100, size=(400, 2))
        builder.add_edges(edges[:, 0], edges[:, 1])
        graph = builder.finalize()
        base = graph.indices
        while getattr(base, "base", None) is not None:
            base = base.base
        if isinstance(base, memoryview):
            base = base.obj
        assert isinstance(base, mmap.mmap)
        assert not graph.indices.flags.writeable
