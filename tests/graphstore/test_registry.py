"""Graph registry: naming, build-once semantics, quarantine, maintenance."""

import os

import numpy as np
import pytest

from repro.graph.suite import SUITE, suite_graph
from repro.graphstore.names import parse_graph_name
from repro.graphstore.registry import GraphRegistry, registry_from_env


@pytest.fixture
def registry(tmp_path):
    return GraphRegistry(str(tmp_path / "graphs"))


class TestNames:
    def test_suite_names(self):
        for name in SUITE:
            spec = parse_graph_name(f"suite:{name}")
            assert spec.kind == "tube_mesh"
            assert spec.params_dict()["n"] == SUITE[name].n

    def test_tube_sizes(self):
        assert parse_graph_name("tube:1m").params_dict()["n"] == 1_000_000
        assert parse_graph_name("tube:250k").params_dict()["n"] == 250_000
        assert parse_graph_name("tube:5000").params_dict()["n"] == 5000

    def test_rmat(self):
        spec = parse_graph_name("rmat:s12")
        assert spec.params_dict() == {"scale": 12, "edge_factor": 16,
                                      "seed": 1}
        assert parse_graph_name("rmat:s10e4").params_dict()["edge_factor"] == 4

    def test_fingerprint_depends_on_params(self):
        assert (parse_graph_name("tube:10k").fingerprint()
                != parse_graph_name("tube:20k").fingerprint())
        assert (parse_graph_name("tube:10k").fingerprint()
                == parse_graph_name("tube:10k").fingerprint())

    @pytest.mark.parametrize("bad", [
        "nope", "suite:unknown", "tube:", "tube:abc", "tube:0",
        "rmat:20", "rmat:s99", "mystery:1m",
    ])
    def test_bad_names_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            parse_graph_name(bad)


class TestRegistry:
    def test_build_once_then_mmap(self, registry):
        first = registry.get("tube:2k")
        assert registry.stats.misses == 1 and registry.stats.builds == 1
        # Fresh instance (no handle cache): must load, not rebuild.
        reloaded = GraphRegistry(registry.root)
        second = reloaded.get("tube:2k")
        assert reloaded.stats.builds == 0 and reloaded.stats.hits == 1
        assert first.structurally_equal(second)

    def test_handle_cache_counts_hits(self, registry):
        registry.get("tube:2k")
        registry.get("tube:2k")
        assert registry.stats.hits == 1 and registry.stats.misses == 1

    def test_suite_graph_matches_eager_build(self, registry):
        via_registry = registry.get("suite:pwtk")
        eager = suite_graph.__wrapped__("pwtk")
        assert eager.structurally_equal(via_registry)

    def test_build_idempotent(self, registry):
        path1, built1 = registry.build("tube:2k")
        path2, built2 = registry.build("tube:2k")
        assert built1 and not built2 and path1 == path2
        _, built3 = registry.build("tube:2k", force=True)
        assert built3

    def test_corrupt_file_quarantined_and_rebuilt(self, registry):
        registry.get("tube:2k")
        path = registry.path_for("tube:2k")
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 11)
        fresh = GraphRegistry(registry.root)
        graph = fresh.get("tube:2k")
        assert fresh.stats.corrupt == 1 and fresh.stats.quarantined == 1
        assert fresh.stats.builds == 1
        graph.validate()
        quarantine = os.path.join(registry.root, "quarantine")
        assert len(os.listdir(quarantine)) == 1
        assert os.path.exists(path)  # rebuilt under the same key

    def test_verify_repair(self, registry):
        registry.get("tube:2k")
        registry.get("tube:4k")
        path = registry.path_for("tube:4k")
        header_size = 64
        with open(path, "r+b") as fh:
            fh.seek(header_size + 200)
            fh.write(b"\xff\xff\xff")
        report = registry.verify()
        assert report.checked == 2 and report.ok == 1
        assert report.corrupt == [path] and not report.quarantined
        assert os.path.exists(path)  # verify without repair only reports
        report = registry.verify(repair=True)
        assert report.quarantined == [path]
        assert not os.path.exists(path)

    def test_entries_and_ls_do_not_generate(self, registry, monkeypatch):
        registry.get("tube:2k")
        import repro.graphstore.names as names_mod

        def boom(self):  # pragma: no cover - would mean ls generated
            raise AssertionError("ls must not build graphs")

        monkeypatch.setattr(names_mod.GraphSpec, "build", boom)
        entries = GraphRegistry(registry.root).entries()
        assert len(entries) == 1
        assert entries[0].name == "tube:2k"
        assert entries[0].current
        assert entries[0].n_vertices == 2000

    def test_gc_removes_stale_only(self, registry, monkeypatch):
        registry.get("tube:2k")
        import repro.graphstore.names as names_mod
        monkeypatch.setattr(names_mod, "GENERATOR_SCHEMA_VERSION", 999)
        fresh = GraphRegistry(registry.root)
        fresh.get("tube:2k")  # rebuilt under the new fingerprint
        assert len(fresh._object_paths()) == 2
        removed, kept = fresh.gc()
        assert (removed, kept) == (1, 1)

    def test_clear_keeps_quarantine(self, registry):
        registry.get("tube:2k")
        path = registry.path_for("tube:2k")
        with open(path, "r+b") as fh:
            fh.truncate(10)
        GraphRegistry(registry.root).get("tube:2k")  # quarantines + rebuilds
        cleared = registry.clear()
        assert cleared == 1
        quarantine = os.path.join(registry.root, "quarantine")
        assert len(os.listdir(quarantine)) == 1


class TestEnvActivation:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH_DIR", raising=False)
        assert registry_from_env() is None

    def test_singleton_per_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_DIR", str(tmp_path))
        assert registry_from_env() is registry_from_env()

    def test_suite_graph_resolves_through_registry(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_DIR", str(tmp_path))
        suite_graph.cache_clear()
        try:
            graph = suite_graph("pwtk")
            registry = registry_from_env()
            assert registry.stats.builds >= 1
            assert os.path.exists(registry.path_for("suite:pwtk"))
            eager = suite_graph.__wrapped__("pwtk")
            assert eager.structurally_equal(graph)
        finally:
            suite_graph.cache_clear()

    def test_obs_counters(self, tmp_path):
        from repro.obs import metrics
        registry = GraphRegistry(str(tmp_path))
        with metrics.collecting() as collected:
            registry.get("tube:2k")
            registry.get("tube:2k")
        snapshot = collected.snapshot()
        assert snapshot.get("graphstore.misses") == 1
        assert snapshot.get("graphstore.hits") == 1
