"""`.rgr` binary format: round trips, corruption detection, mmap safety."""

import os
import struct
import threading

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, tube_mesh
from repro.graphstore.format import (FORMAT_VERSION, HEADER_SIZE, MAGIC,
                                     RGRError, load_graph, read_header,
                                     save_graph, verify_file)


@pytest.fixture
def rgr_path(tmp_path):
    return str(tmp_path / "graph.rgr")


def _graphs():
    rng = np.random.default_rng(42)
    yield CSRGraph.from_edges(1, [], name="single")
    yield CSRGraph.from_edges(7, [(0, 1)], name="one-edge")
    yield erdos_renyi(97, 300, seed=3, name="er")
    yield tube_mesh(400, section=20, clique=6, coupling=2, hubs=2,
                    hub_degree=9, seed=1, name="tube")
    for trial in range(5):
        n = int(rng.integers(2, 150))
        m = int(rng.integers(0, 900))
        yield CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)),
                                  name=f"rand{trial}")


class TestRoundTrip:
    def test_property_round_trip(self, tmp_path):
        """save → load preserves structure, name, and all invariants."""
        for i, graph in enumerate(_graphs()):
            path = str(tmp_path / f"g{i}.rgr")
            save_graph(path, graph)
            loaded = load_graph(path)
            assert loaded.name == graph.name
            assert graph.structurally_equal(loaded)
            loaded.validate()  # full invariant pass on the mmap views
            verify_file(path)  # payload digest matches what was written

    def test_loaded_graph_kernels_match(self, rgr_path, mesh):
        """Kernel results are identical on generated vs mmap-loaded graphs."""
        from repro.kernels.bfs.sequential import bfs_sequential
        from repro.kernels.coloring.sequential import greedy_coloring
        save_graph(rgr_path, mesh)
        loaded = load_graph(rgr_path)
        assert np.array_equal(bfs_sequential(mesh, 0), bfs_sequential(loaded, 0))
        n_colors, colors = greedy_coloring(mesh)
        n_colors_loaded, colors_loaded = greedy_coloring(loaded)
        assert n_colors == n_colors_loaded
        assert np.array_equal(colors, colors_loaded)

    def test_save_is_atomic(self, rgr_path, mesh):
        save_graph(rgr_path, mesh)
        assert not any(fn.endswith(".tmp")
                       for fn in os.listdir(os.path.dirname(rgr_path)))

    def test_unlink_while_mapped(self, rgr_path, mesh):
        """POSIX: data stays readable after the path is unlinked."""
        save_graph(rgr_path, mesh)
        loaded = load_graph(rgr_path)
        os.unlink(rgr_path)
        assert mesh.structurally_equal(loaded)

    def test_header_metadata(self, rgr_path, mesh):
        save_graph(rgr_path, mesh)
        header = read_header(rgr_path)
        assert header.version == FORMAT_VERSION
        assert header.n_vertices == mesh.n_vertices
        assert header.n_indices == mesh.n_directed_entries
        assert header.name == mesh.name
        assert header.file_size == os.path.getsize(rgr_path)


class TestCorruption:
    def test_bad_magic(self, rgr_path, mesh):
        save_graph(rgr_path, mesh)
        with open(rgr_path, "r+b") as fh:
            fh.write(b"NOPE")
        with pytest.raises(RGRError, match="bad magic"):
            load_graph(rgr_path)

    def test_wrong_version(self, rgr_path, mesh):
        """A future-version file (valid header digest) fails cleanly."""
        import hashlib
        save_graph(rgr_path, mesh)
        with open(rgr_path, "r+b") as fh:
            raw = bytearray(fh.read(HEADER_SIZE))
            struct.pack_into("<I", raw, 4, FORMAT_VERSION + 1)
            digest = hashlib.sha256(bytes(raw[:HEADER_SIZE - 8])).digest()[:8]
            raw[HEADER_SIZE - 8:] = digest
            fh.seek(0)
            fh.write(bytes(raw))
        with pytest.raises(RGRError, match="unsupported format version"):
            load_graph(rgr_path)

    def test_truncated_file(self, rgr_path, mesh):
        save_graph(rgr_path, mesh)
        size = os.path.getsize(rgr_path)
        with open(rgr_path, "r+b") as fh:
            fh.truncate(size - 5)
        with pytest.raises(RGRError, match="file size"):
            load_graph(rgr_path)

    def test_truncated_header(self, rgr_path, mesh):
        save_graph(rgr_path, mesh)
        with open(rgr_path, "r+b") as fh:
            fh.truncate(HEADER_SIZE - 10)
        with pytest.raises(RGRError, match="truncated header"):
            load_graph(rgr_path)

    def test_header_bit_flip(self, rgr_path, mesh):
        """Any header bit-flip is caught by the header digest at load."""
        save_graph(rgr_path, mesh)
        with open(rgr_path, "r+b") as fh:
            fh.seek(16)  # n_vertices field
            byte = fh.read(1)
            fh.seek(16)
            fh.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(RGRError, match="header checksum"):
            load_graph(rgr_path)

    def test_payload_bit_flip_caught_by_verify(self, rgr_path, mesh):
        """Loads stay lazy; verify_file re-hashes and catches payload rot."""
        save_graph(rgr_path, mesh)
        header = read_header(rgr_path)
        with open(rgr_path, "r+b") as fh:
            fh.seek(header.indices_offset + 8)
            byte = fh.read(1)
            fh.seek(header.indices_offset + 8)
            fh.write(bytes([byte[0] ^ 0x40]))
        load_graph(rgr_path)  # zero-copy load does not touch the payload
        with pytest.raises(RGRError, match="payload checksum"):
            verify_file(rgr_path)

    def test_not_a_graph_file(self, rgr_path):
        with open(rgr_path, "wb") as fh:
            fh.write(b"just some text, definitely not CSR\n" * 10)
        with pytest.raises(RGRError, match="bad magic"):
            read_header(rgr_path)

    def test_missing_file(self, rgr_path):
        with pytest.raises(RGRError):
            read_header(rgr_path)


class TestConcurrentReaders:
    def test_many_threads_one_file(self, rgr_path, mesh):
        """Concurrent BFS over independent mmaps of one file all agree."""
        from repro.kernels.bfs.sequential import bfs_sequential
        save_graph(rgr_path, mesh)
        expected = bfs_sequential(mesh, 0)
        results = [None] * 8
        errors = []

        def reader(i):
            try:
                graph = load_graph(rgr_path)
                results[i] = bfs_sequential(graph, 0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for levels in results:
            assert np.array_equal(levels, expected)

    def test_shared_handle_across_threads(self, rgr_path, mesh):
        """One loaded graph used from many threads (read-only arrays)."""
        from repro.kernels.coloring.sequential import greedy_coloring
        save_graph(rgr_path, mesh)
        graph = load_graph(rgr_path)
        _, expected = greedy_coloring(mesh)
        outcomes = []

        def worker():
            outcomes.append(np.array_equal(greedy_coloring(graph)[1], expected))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == [True] * 6

    def test_magic_constant(self):
        assert MAGIC == b"RGR1" and HEADER_SIZE == 64
