"""Perf gate: drift vs noise band, trend rendering, file plumbing."""

import json

import pytest

from repro.bench.compare import (DEFAULT_TOLERANCE, bench_tolerance,
                                 compare_entries, compare_files, format_trend)
from repro.bench.suite import SCHEMA_VERSION, append_entry, env_fingerprint


def entry(results, env=None, stamp=0.0):
    return {"schema": SCHEMA_VERSION, "suite": "kernels",
            "generated_at": stamp, "env": env or env_fingerprint(),
            "results": results}


def stats(samples):
    samples = [float(s) for s in samples]
    ordered = sorted(samples)
    mid = len(ordered) // 2
    median = ordered[mid] if len(ordered) % 2 \
        else 0.5 * (ordered[mid - 1] + ordered[mid])
    return {"median_s": median, "mean_s": sum(samples) / len(samples),
            "min_s": min(samples), "max_s": max(samples),
            "spread": (max(samples) - min(samples)) / median,
            "repeat": len(samples), "warmup": 0, "samples_s": samples}


class TestCompareEntries:
    def test_identical_entries_pass(self):
        e = entry({"bfs": stats([1.0, 1.1, 0.9])})
        report = compare_entries(e, e, tolerance=0.25)
        assert report.ok
        assert not report.rows[0].regressed

    def test_seeded_2x_slowdown_fails(self):
        base = entry({"bfs": stats([1.0, 1.1, 0.9])})
        slow = entry({"bfs": stats([2.0, 2.2, 1.8])})
        report = compare_entries(base, slow, tolerance=0.25)
        assert not report.ok
        assert report.rows[0].regressed
        assert report.rows[0].drift == pytest.approx(1.0)
        assert "REGRESSION" in report.format()

    def test_noise_floor_absorbs_drift_inside_spread(self):
        # 40% spread, 30% drift: the band is tolerance + spread, so a
        # wobbly benchmark cannot fail on noise-sized movement.
        base = entry({"bfs": stats([1.0, 0.8, 1.2])})
        cur = entry({"bfs": stats([1.3, 1.1, 1.5])})
        report = compare_entries(base, cur, tolerance=0.25)
        assert report.ok

    def test_tight_spread_keeps_the_gate_tight(self):
        base = entry({"bfs": stats([1.0, 1.0, 1.0])})
        cur = entry({"bfs": stats([1.3, 1.3, 1.3])})
        assert not compare_entries(base, cur, tolerance=0.25).ok

    def test_improvement_is_not_a_regression(self):
        base = entry({"bfs": stats([2.0])})
        cur = entry({"bfs": stats([1.0])})
        report = compare_entries(base, cur, tolerance=0.25)
        assert report.ok
        assert report.rows[0].improved

    def test_missing_benchmark_fails_the_gate(self):
        base = entry({"bfs": stats([1.0]), "coloring": stats([1.0])})
        cur = entry({"bfs": stats([1.0])})
        report = compare_entries(base, cur, tolerance=0.25)
        assert report.missing == ["coloring"]
        assert not report.ok

    def test_added_benchmark_is_fine(self):
        base = entry({"bfs": stats([1.0])})
        cur = entry({"bfs": stats([1.0]), "new": stats([1.0])})
        report = compare_entries(base, cur, tolerance=0.25)
        assert report.added == ["new"]
        assert report.ok

    def test_env_drift_warns(self):
        other = dict(env_fingerprint())
        other["machine"] = "riscv128"
        base = entry({"bfs": stats([1.0])})
        cur = entry({"bfs": stats([1.0])}, env=other)
        report = compare_entries(base, cur, tolerance=0.25)
        assert report.warnings
        assert report.ok  # a warning, not a failure

    def test_nonpositive_baseline_rejected(self):
        zero = {"median_s": 0.0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                "spread": 0.0, "repeat": 1, "warmup": 0, "samples_s": [0.0]}
        base = entry({"bfs": zero})
        with pytest.raises(ValueError, match="non-positive"):
            compare_entries(base, base, tolerance=0.25)

    def test_negative_tolerance_rejected(self):
        e = entry({"bfs": stats([1.0])})
        with pytest.raises(ValueError, match="tolerance"):
            compare_entries(e, e, tolerance=-0.1)

    def test_env_tolerance(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TOLERANCE", raising=False)
        assert bench_tolerance() == DEFAULT_TOLERANCE
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.5")
        assert bench_tolerance() == 0.5


class TestCompareFiles:
    def test_latest_entries_compared(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        append_entry(path, entry({"bfs": stats([9.0])}, stamp=1.0))
        append_entry(path, entry({"bfs": stats([1.0])}, stamp=2.0))
        bare = tmp_path / "current.json"
        bare.write_text(json.dumps(entry({"bfs": stats([1.0])})))
        report = compare_files(path, bare, tolerance=0.25)
        assert report.ok  # compared against the latest (1.0), not 9.0

    def test_suite_mismatch_rejected(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        e = entry({"bfs": stats([1.0])})
        a.write_text(json.dumps(e))
        other = dict(e, suite="figs")
        b.write_text(json.dumps(other))
        with pytest.raises(ValueError, match="cannot compare suite"):
            compare_files(a, b)


class TestTrend:
    def test_renders_history_and_overall_delta(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        append_entry(path, entry({"bfs": stats([1.0])}, stamp=1.0))
        append_entry(path, entry({"bfs": stats([1.5])}, stamp=2.0))
        from repro.bench.suite import load_trajectory
        out = format_trend(load_trajectory(path))
        assert "2 entries" in out
        assert "1.0000 -> 1.5000" in out
        assert "+50.0%" in out
