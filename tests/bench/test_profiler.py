"""Wall profiler: bucket mapping, attribution and collapsed stacks."""

import pytest

from repro.bench.profiler import (OTHER_BUCKET, ProfileReport, WallProfiler,
                                  code_bucket)
from repro.obs.tracer import SPAN_BUCKETS, span_bucket


class TestCodeBucket:
    def test_engine_functions_align_with_span_buckets(self):
        assert code_bucket("src/repro/sim/engine.py", "barrier_release") \
            == SPAN_BUCKETS["barrier-wait"]
        assert code_bucket("src/repro/sim/engine.py", "cond_fire") \
            == SPAN_BUCKETS["cond-wait"]
        assert code_bucket("src/repro/sim/engine.py", "schedule") \
            == "engine:events"

    def test_runtime_functions(self):
        assert code_bucket("src/repro/runtime/base.py", "tls_slot") \
            == SPAN_BUCKETS["tls-init"]
        assert code_bucket("src/repro/runtime/work.py", "steal_half") \
            == SPAN_BUCKETS["steal"]
        assert code_bucket("src/repro/runtime/base.py", "execute_chunk") \
            == SPAN_BUCKETS["chunk"]
        assert code_bucket("src/repro/runtime/openmp.py", "body") \
            == "runtime:loop"

    def test_resources(self):
        assert code_bucket("src/repro/sim/resources.py", "service") \
            == SPAN_BUCKETS["xfer"]
        assert code_bucket("src/repro/sim/resources.py", "acquire") \
            == SPAN_BUCKETS["rmw"]

    def test_module_table(self):
        assert code_bucket("src/repro/kernels/coloring/parallel.py",
                           "color") == "kernels:coloring"
        assert code_bucket("src/repro/machine/cache.py", "access") \
            == "machine:cache-model"

    def test_foreign_code_inherits(self):
        assert code_bucket("/usr/lib/python3/heapq.py", "heappush") is None

    def test_span_bucket_loop_prefix_and_fallback(self):
        assert span_bucket("loop:omp") == "runtime:loop"
        assert span_bucket("barrier-wait") == "engine:barrier-wait"
        assert span_bucket("brand-new") == "other:brand-new"


class TestProfileReport:
    def report(self):
        rep = ProfileReport()
        rep.buckets = {"engine:events": 3.0, OTHER_BUCKET: 1.0}
        rep.functions = {("engine:events", "repro.sim.engine.run"): 3.0,
                         (OTHER_BUCKET, "main"): 1.0}
        rep.stacks = {("main", "repro.sim.engine.run"): 3.0,
                      ("main",): 1.0, ("zero",): 0.0}
        return rep

    def test_totals_and_coverage(self):
        rep = self.report()
        assert rep.total_seconds == 4.0
        assert rep.coverage() == pytest.approx(0.75)

    def test_empty_report_coverage_is_full(self):
        assert ProfileReport().coverage() == 1.0

    def test_top_buckets_ordered(self):
        rows = self.report().top_buckets(10)
        assert rows[0][0] == "engine:events"
        assert rows[0][2] == pytest.approx(0.75)

    def test_collapsed_lines(self):
        lines = self.report().collapsed_lines()
        assert "main;repro.sim.engine.run 3000000" in lines
        assert "main 1000000" in lines
        assert not any(line.startswith("zero") for line in lines)

    def test_write_collapsed(self, tmp_path):
        path = tmp_path / "stacks.collapsed"
        self.report().write_collapsed(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert all(line.rsplit(" ", 1)[1].isdigit()
                   for line in text.splitlines())

    def test_format_table_mentions_coverage(self):
        out = self.report().format_table(5)
        assert "coverage" in out
        assert "engine:events" in out


class TestWallProfiler:
    def test_profiles_a_simulation_with_high_coverage(self):
        from repro.experiments.fig1_coloring import coloring_cycles
        prof = WallProfiler()
        with prof:
            coloring_cycles("auto", "OpenMP-dynamic", 5)
        rep = prof.report
        assert rep.total_seconds > 0
        # The acceptance bar of the CI profile gate: at least 90% of
        # wall time lands in named subsystem buckets.
        assert rep.coverage() >= 0.90
        assert any(b.startswith("engine:") for b in rep.buckets)
        assert any(b.startswith("kernels:") for b in rep.buckets)
        assert rep.collapsed_lines()

    def test_profiling_does_not_change_simulated_cycles(self):
        from repro.experiments.fig1_coloring import coloring_cycles
        bare = coloring_cycles("auto", "OpenMP-dynamic", 5)
        prof = WallProfiler()
        with prof:
            profiled = coloring_cycles("auto", "OpenMP-dynamic", 5)
        assert profiled == bare

    def test_nested_install_rejected(self):
        prof = WallProfiler()
        with prof:
            with pytest.raises(RuntimeError, match="already installed"):
                prof.__enter__()

    def test_profile_returns_result_and_uninstalls(self):
        import sys
        prof = WallProfiler()
        assert prof.profile(lambda: 42) == 42
        assert sys.getprofile() is None
