"""Clock seam, repetition protocol and sample statistics."""

import pytest

from repro.bench.timer import (DEFAULT_REPEAT, DEFAULT_WARMUP, FakeClock,
                               Sample, bench_repeat, bench_warmup, measure)


class TestFakeClock:
    def test_advances_per_reading(self):
        clock = FakeClock(start=10.0, step=0.5)
        assert [clock(), clock(), clock()] == [10.0, 10.5, 11.0]

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            FakeClock(step=-1.0)


class TestSample:
    def test_statistics(self):
        s = Sample(seconds=[3.0, 1.0, 2.0])
        assert s.median == 2.0
        assert s.mean == 2.0
        assert s.best == 1.0
        assert s.worst == 3.0
        assert s.spread == pytest.approx(1.0)  # (3 - 1) / 2

    def test_even_count_median_interpolates(self):
        assert Sample(seconds=[1.0, 2.0, 3.0, 10.0]).median == 2.5

    def test_single_run_spread_is_zero(self):
        assert Sample(seconds=[4.2]).spread == 0.0

    def test_zero_median_spread_guard(self):
        assert Sample(seconds=[0.0, 0.0]).spread == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty sample"):
            Sample().median

    def test_dict_round_trip(self):
        s = Sample(seconds=[1.0, 3.0, 2.0], warmup=2)
        d = s.to_dict()
        assert d["median_s"] == 2.0
        assert d["repeat"] == 3
        back = Sample.from_dict(d)
        assert back.seconds == s.seconds
        assert back.warmup == 2

    def test_from_dict_requires_samples(self):
        with pytest.raises(ValueError, match="samples_s"):
            Sample.from_dict({"median_s": 1.0})


class TestMeasure:
    def test_fake_clock_samples_are_deterministic(self):
        calls = []
        sample = measure(lambda: calls.append(1), repeat=3, warmup=2,
                         clock=FakeClock(step=0.25))
        # Two readings bracket each timed run: every sample is one step.
        assert sample.seconds == [0.25, 0.25, 0.25]
        assert sample.warmup == 2
        assert len(calls) == 5  # warmup runs execute but are untimed

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            measure(lambda: None, repeat=0)

    def test_warmup_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=1, warmup=-1)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_REPEAT", raising=False)
        monkeypatch.delenv("REPRO_BENCH_WARMUP", raising=False)
        assert bench_repeat() == DEFAULT_REPEAT
        assert bench_warmup() == DEFAULT_WARMUP
        monkeypatch.setenv("REPRO_BENCH_REPEAT", "2")
        monkeypatch.setenv("REPRO_BENCH_WARMUP", "0")
        assert bench_repeat() == 2
        assert bench_warmup() == 0
        calls = []
        sample = measure(lambda: calls.append(1), clock=FakeClock())
        assert sample.repeat == 2
        assert len(calls) == 2  # no warmup runs
