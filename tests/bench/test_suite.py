"""Benchmark registry, pinned environments and trajectory files."""

import json
import os

import pytest

from repro.bench.suite import (BENCHMARKS, SCHEMA_VERSION, SUITES,
                               append_entry, env_fingerprint,
                               load_trajectory, run_suite, suite_benchmarks,
                               suite_names, trajectory_path, validate_entry)
from repro.bench.timer import FakeClock


def fake_entry(suite="campaign", median=1.0, stamp=0.0):
    """A synthetic schema-valid entry (no benchmark execution)."""
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "generated_at": stamp,
        "env": env_fingerprint(),
        "results": {"executor-dispatch": {
            "median_s": median, "mean_s": median, "min_s": median,
            "max_s": median, "spread": 0.0, "repeat": 1, "warmup": 0,
            "samples_s": [median]}},
    }


class TestRegistry:
    def test_expected_suites(self):
        assert suite_names() == ["campaign", "figs", "graphs", "kernels",
                                 "serve"]

    def test_serve_suite_covers_cold_and_warm_paths(self):
        assert SUITES["serve"] == ["serve-submit", "serve-warm-hits"]

    def test_graphs_suite_covers_cold_and_warm_paths(self):
        assert SUITES["graphs"] == ["graphs-cold-build", "graphs-warm-load"]

    def test_figs_suite_covers_all_four_figures(self):
        assert SUITES["figs"] == ["fig1", "fig2", "fig3", "fig4"]

    def test_kernels_suite_covers_all_three_kernels(self):
        assert set(SUITES["kernels"]) == {"coloring", "bfs", "irregular"}

    def test_every_benchmark_described(self):
        assert all(b.description for b in BENCHMARKS.values())

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            suite_benchmarks("nope")

    def test_filter_narrows(self):
        assert [b.name for b in suite_benchmarks("campaign", "store")] \
            == ["store-hits"]

    def test_filter_matching_nothing_rejected(self):
        with pytest.raises(ValueError, match="matches no benchmark"):
            suite_benchmarks("campaign", "zzz")

    def test_env_filter_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FILTER", "executor")
        assert [b.name for b in suite_benchmarks("campaign")] \
            == ["executor-dispatch"]


class TestRunSuite:
    def test_campaign_suite_entry_schema(self):
        entry = run_suite("campaign", repeat=2, warmup=0,
                          clock=FakeClock(), stamp=lambda: 123.0)
        validate_entry(entry)
        assert entry["suite"] == "campaign"
        assert entry["generated_at"] == 123.0
        assert set(entry["results"]) == {"executor-dispatch", "store-hits"}
        for stats in entry["results"].values():
            assert stats["median_s"] == 1.0  # FakeClock: one step per run
            assert stats["repeat"] == 2

    def test_progress_callback_fires_per_benchmark(self):
        lines = []
        run_suite("campaign", repeat=1, warmup=0, clock=FakeClock(),
                  stamp=lambda: 0.0, name_filter="executor",
                  progress=lines.append)
        assert len(lines) == 2  # announce + result
        assert "executor-dispatch" in lines[0]

    def test_benchmark_stdout_swallowed(self, capsys):
        run_suite("campaign", repeat=1, warmup=0, clock=FakeClock(),
                  stamp=lambda: 0.0, name_filter="executor")
        assert capsys.readouterr().out == ""

    def test_environment_restored_after_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "/tmp/somewhere")
        run_suite("campaign", repeat=1, warmup=0, clock=FakeClock(),
                  stamp=lambda: 0.0, name_filter="executor")
        assert os.environ["REPRO_STORE"] == "/tmp/somewhere"

    def test_env_fingerprint_fields(self):
        env = env_fingerprint()
        for key in ("python", "platform", "machine", "cpus",
                    "repro_version", "code_fingerprint"):
            assert env[key]


class TestValidateEntry:
    def test_accepts_synthetic(self):
        validate_entry(fake_entry())

    def test_missing_key_rejected(self):
        entry = fake_entry()
        del entry["env"]
        with pytest.raises(ValueError, match="env"):
            validate_entry(entry)

    def test_wrong_schema_rejected(self):
        entry = fake_entry()
        entry["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            validate_entry(entry)

    def test_empty_results_rejected(self):
        entry = fake_entry()
        entry["results"] = {}
        with pytest.raises(ValueError, match="no results"):
            validate_entry(entry)

    def test_missing_fingerprint_rejected(self):
        entry = fake_entry()
        del entry["env"]["code_fingerprint"]
        with pytest.raises(ValueError, match="code_fingerprint"):
            validate_entry(entry)


class TestTrajectory:
    def test_default_path(self):
        assert trajectory_path("figs", "/x") == os.path.join("/x",
                                                             "BENCH_figs.json")

    def test_append_creates_then_extends(self, tmp_path):
        path = tmp_path / "BENCH_campaign.json"
        append_entry(path, fake_entry(stamp=1.0))
        data = append_entry(path, fake_entry(stamp=2.0))
        assert len(data["entries"]) == 2
        loaded = load_trajectory(path)
        assert [e["generated_at"] for e in loaded["entries"]] == [1.0, 2.0]

    def test_append_refuses_suite_mismatch(self, tmp_path):
        path = tmp_path / "BENCH_campaign.json"
        append_entry(path, fake_entry(suite="campaign"))
        with pytest.raises(ValueError, match="refusing to append"):
            append_entry(path, fake_entry(suite="figs"))

    def test_bytes_stable_for_same_entries(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            append_entry(path, fake_entry(stamp=1.0))
            append_entry(path, fake_entry(stamp=2.0))
        assert a.read_bytes() == b.read_bytes()

    def test_bare_entry_loads_as_single_entry_trajectory(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(fake_entry()))
        data = load_trajectory(path)
        assert data["suite"] == "campaign"
        assert len(data["entries"]) == 1

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a repro bench"):
            load_trajectory(path)
