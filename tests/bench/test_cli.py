"""``repro bench`` CLI: run/profile/compare/trend, exit codes, dispatch."""

import json

import pytest

from repro.bench.cli import main


def read_entry(path):
    return json.load(open(path))


class TestRun:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("benchrun")
        traj = tmp / "BENCH_campaign.json"
        out = tmp / "entry.json"
        code = main(["run", "--suite", "campaign", "--repeat", "2",
                     "--warmup", "0", "--trajectory", str(traj),
                     "--output", str(out)])
        return code, traj, out

    def test_exit_code(self, run_dir):
        assert run_dir[0] == 0

    def test_trajectory_appended(self, run_dir):
        from repro.bench.suite import load_trajectory
        data = load_trajectory(run_dir[1])
        assert len(data["entries"]) == 1
        assert set(data["entries"][0]["results"]) \
            == {"executor-dispatch", "store-hits"}

    def test_entry_artifact_schema_valid(self, run_dir):
        from repro.bench.suite import validate_entry
        entry = validate_entry(read_entry(run_dir[2]))
        assert entry["env"]["code_fingerprint"]
        for stats in entry["results"].values():
            assert stats["repeat"] == 2

    def test_no_append_skips_trajectory(self, tmp_path):
        traj = tmp_path / "BENCH_campaign.json"
        assert main(["run", "--suite", "campaign", "--filter", "executor",
                     "--repeat", "1", "--warmup", "0", "--no-append",
                     "--trajectory", str(traj)]) == 0
        assert not traj.exists()

    def test_bad_filter_is_an_error(self, tmp_path):
        assert main(["run", "--suite", "campaign", "--filter", "zzz",
                     "--no-append"]) == 2


class TestProfile:
    def test_profile_writes_collapsed_and_gates_coverage(self, tmp_path,
                                                         capsys):
        collapsed = tmp_path / "stacks.collapsed"
        code = main(["profile", "--suite", "campaign", "--filter",
                     "executor", "--top", "5", "--collapsed",
                     str(collapsed), "--min-coverage", "0.9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "coverage" in out
        assert collapsed.read_text().strip()

    def test_impossible_coverage_fails(self):
        assert main(["profile", "--suite", "campaign", "--filter",
                     "executor", "--min-coverage", "1.1"]) == 1


class TestCompareAndTrend:
    @pytest.fixture(scope="class")
    def entries(self, tmp_path_factory):
        from repro.bench.suite import append_entry
        from tests.bench.test_compare import entry, stats
        tmp = tmp_path_factory.mktemp("gate")
        base = tmp / "base.json"
        slow = tmp / "slow.json"
        base.write_text(json.dumps(entry({"bfs": stats([1.0, 1.05, 0.95])})))
        slow.write_text(json.dumps(entry({"bfs": stats([2.0, 2.1, 1.9])})))
        traj = tmp / "BENCH_kernels.json"
        append_entry(traj, entry({"bfs": stats([1.0])}, stamp=1.0))
        append_entry(traj, entry({"bfs": stats([1.2])}, stamp=2.0))
        return base, slow, traj

    def test_self_compare_passes(self, entries, capsys):
        assert main(["compare", str(entries[0]), str(entries[0])]) == 0
        assert "OK" in capsys.readouterr().out

    def test_seeded_slowdown_fails(self, entries, capsys):
        assert main(["compare", str(entries[0]), str(entries[1])]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_generous_tolerance_passes(self, entries):
        assert main(["compare", str(entries[0]), str(entries[1]),
                     "--tolerance", "1.5"]) == 0

    def test_missing_file_is_an_error(self, entries):
        assert main(["compare", str(entries[0]), "/nonexistent.json"]) == 2

    def test_trend(self, entries, capsys):
        assert main(["trend", str(entries[2])]) == 0
        assert "1.0000 -> 1.2000" in capsys.readouterr().out


class TestDispatch:
    def test_repro_bench_prefix_dispatch(self, tmp_path, capsys):
        from repro.experiments.cli import main as repro_main
        traj = tmp_path / "BENCH_campaign.json"
        assert repro_main(["bench", "run", "--suite", "campaign",
                           "--filter", "executor", "--repeat", "1",
                           "--warmup", "0", "--trajectory",
                           str(traj)]) == 0
        assert traj.exists()
        capsys.readouterr()
