"""Priority work queue: ordering, quotas, drain batching."""

import asyncio

import pytest

from repro.serve.queue import PriorityWorkQueue, QuotaExceeded


def drain_now(queue, max_items=100):
    """Drain synchronously (the queue must already hold work)."""
    assert queue.depth > 0
    return asyncio.run(asyncio.wait_for(queue.drain(max_items), timeout=1))


class TestOrdering:
    def test_lower_priority_number_runs_first(self):
        queue = PriorityWorkQueue(quota=100)
        queue.push("low", 5)
        queue.push("urgent", -1)
        queue.push("normal", 0)
        assert drain_now(queue) == ["urgent", "normal", "low"]

    def test_equal_priority_is_fifo(self):
        queue = PriorityWorkQueue(quota=100)
        for cid in ("a", "b", "c"):
            queue.push(cid, 0)
        assert drain_now(queue) == ["a", "b", "c"]

    def test_drain_respects_batch_limit(self):
        queue = PriorityWorkQueue(quota=100)
        for i in range(5):
            queue.push(f"c{i}")
        assert drain_now(queue, max_items=2) == ["c0", "c1"]
        assert queue.depth == 3
        assert queue.popped == 2
        assert queue.pushed == 5

    def test_drain_waits_for_work(self):
        async def scenario():
            queue = PriorityWorkQueue(quota=100)
            waiter = asyncio.create_task(queue.drain(10))
            await asyncio.sleep(0)
            assert not waiter.done()
            queue.push("late")
            return await asyncio.wait_for(waiter, timeout=1)

        assert asyncio.run(scenario()) == ["late"]


class TestQuota:
    def test_reserve_is_all_or_nothing(self):
        queue = PriorityWorkQueue(quota=10)
        queue.reserve("alice", 8)
        with pytest.raises(QuotaExceeded) as err:
            queue.reserve("alice", 3)
        assert err.value.load == 8
        assert err.value.requested == 3
        assert err.value.quota == 10
        assert queue.load("alice") == 8  # nothing charged by the failure

    def test_quotas_are_per_client(self):
        queue = PriorityWorkQueue(quota=10)
        queue.reserve("alice", 10)
        queue.reserve("bob", 10)
        assert queue.loads() == {"alice": 10, "bob": 10}

    def test_release_frees_quota(self):
        queue = PriorityWorkQueue(quota=2)
        queue.reserve("alice", 2)
        queue.release("alice", 1)
        queue.reserve("alice", 1)
        assert queue.load("alice") == 2

    def test_release_floors_at_zero_and_forgets(self):
        queue = PriorityWorkQueue(quota=10)
        queue.reserve("alice", 1)
        queue.release("alice", 5)
        assert queue.load("alice") == 0
        assert queue.loads() == {}

    def test_charge_bypasses_the_cap(self):
        # Journal-replayed jobs were admitted once; a restart must not
        # drop them because their combined load now exceeds the quota.
        queue = PriorityWorkQueue(quota=2)
        queue.charge("alice", 50)
        assert queue.load("alice") == 50
        with pytest.raises(QuotaExceeded):
            queue.reserve("alice", 1)

    def test_quota_must_be_positive(self):
        with pytest.raises(ValueError):
            PriorityWorkQueue(quota=0)
