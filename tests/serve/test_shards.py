"""Sharded result store: routing, LRU cache, maintenance fan-out."""

import os

import pytest

from repro.campaign.store import ResultStore
from repro.serve.shards import ShardedResultStore


def spec_for(i: int) -> dict:
    return {"experiment": "coloring", "graph": "auto",
            "variant": "OpenMP-dynamic", "threads": i}


class TestRouting:
    def test_key_matches_flat_store(self, tmp_path):
        flat = ResultStore(tmp_path / "flat", fingerprint="ff")
        sharded = ShardedResultStore(tmp_path / "s", shards=4,
                                     cache_size=0, fingerprint="ff")
        assert sharded.key(spec_for(1)) == flat.key(spec_for(1))

    def test_shard_assignment_is_stable(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=8, cache_size=0,
                                   fingerprint="ff")
        key = store.key(spec_for(1))
        assert store.shard_for(key) is store.shard_for(key)
        assert store.shard_for(key) in store.shards

    def test_values_round_trip_across_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=4, cache_size=0,
                                   fingerprint="ff")
        for i in range(1, 33):
            store.put(spec_for(i), float(i))
        for i in range(1, 33):
            assert store.get(spec_for(i)) == float(i)
        assert len(store) == 32
        # With 32 keys over 4 shards the hash should spread them.
        populated = sum(1 for n in store.health()["objects_per_shard"] if n)
        assert populated >= 2

    def test_shard_layout_on_disk(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, cache_size=0,
                                   fingerprint="ff")
        key = store.put(spec_for(1), 1.0)
        owner = store.shard_for(key)
        index = store.shards.index(owner)
        assert owner.root == os.path.join(store.root, "shards",
                                          f"{index:02d}")
        assert os.path.isfile(os.path.join(
            owner.root, "objects", key[:2], f"{key[2:]}.json"))

    def test_invalid_config_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultStore(tmp_path, shards=0, cache_size=1)
        with pytest.raises(ValueError):
            ShardedResultStore(tmp_path, shards=1, cache_size=-1)


class TestCache:
    def test_warm_get_skips_disk(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, cache_size=8,
                                   fingerprint="ff")
        store.put(spec_for(1), 1.5)
        # Delete the underlying file: a cache hit must still serve it.
        (entry,) = store.entries()
        os.remove(entry.path)
        assert store.get(spec_for(1)) == 1.5
        assert store.cache.hits == 1

    def test_read_through_populates(self, tmp_path):
        writer = ShardedResultStore(tmp_path, shards=2, cache_size=8,
                                    fingerprint="ff")
        writer.put(spec_for(1), 2.5)
        reader = ShardedResultStore(tmp_path, shards=2, cache_size=8,
                                    fingerprint="ff")
        assert reader.get(spec_for(1)) == 2.5   # miss -> disk -> cached
        assert reader.cache.misses == 1
        assert reader.get(spec_for(1)) == 2.5   # now from the LRU
        assert reader.cache.hits == 1

    def test_eviction_is_lru_and_counted(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, cache_size=2,
                                   fingerprint="ff")
        for i in (1, 2):
            store.put(spec_for(i), float(i))
        store.get(spec_for(1))                  # 1 is now most-recent
        store.put(spec_for(3), 3.0)             # evicts 2
        assert store.cache.evictions == 1
        assert store.cache.size == 2
        (entry2,) = [e for e in store.entries()
                     if e.spec == spec_for(2)]
        os.remove(entry2.path)
        assert store.get(spec_for(2)) is None   # 2 was evicted, disk gone
        # 1 and 3 still cached
        hits_before = store.cache.hits
        assert store.get(spec_for(1)) == 1.0
        assert store.get(spec_for(3)) == 3.0
        assert store.cache.hits == hits_before + 2

    def test_capacity_zero_disables(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, cache_size=0,
                                   fingerprint="ff")
        store.put(spec_for(1), 1.0)
        assert store.cache.size == 0
        (entry,) = store.entries()
        os.remove(entry.path)
        assert store.get(spec_for(1)) is None

    def test_cache_hit_counts_as_store_hit(self, tmp_path):
        # The aggregated StoreStats ledger stays authoritative even when
        # the LRU short-circuits the disk read.
        store = ShardedResultStore(tmp_path, shards=2, cache_size=8,
                                   fingerprint="ff")
        store.put(spec_for(1), 1.0)
        store.get(spec_for(1))
        store.get(spec_for(1))
        assert store.stats.hits == 2


class TestMaintenance:
    def test_gc_fans_out_and_clears_cache(self, tmp_path):
        old = ShardedResultStore(tmp_path, shards=4, cache_size=8,
                                 fingerprint="aaaa")
        for i in range(1, 9):
            old.put(spec_for(i), float(i))
        new = ShardedResultStore(tmp_path, shards=4, cache_size=8,
                                 fingerprint="bbbb")
        new.put(spec_for(1), 10.0)
        removed, kept = new.gc()
        assert (removed, kept) == (8, 1)
        assert new.cache.size == 0
        assert new.get(spec_for(1)) == 10.0

    def test_gc_spares_quarantine_and_journals(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, cache_size=0,
                                   fingerprint="ff")
        store.put(spec_for(1), 1.0)
        journals = os.path.join(store.root, "journals", "serve")
        os.makedirs(journals)
        journal = os.path.join(journals, "journal.jsonl")
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write('{"type": "job"}\n')
        quarantine = os.path.join(store.root, "shards", "00", "quarantine")
        os.makedirs(quarantine)
        q_file = os.path.join(quarantine, "bad.json")
        with open(q_file, "w", encoding="utf-8") as fh:
            fh.write("evidence")
        store.gc(max_age_days=0.0)
        store.clear()
        assert os.path.isfile(journal)
        assert os.path.isfile(q_file)

    def test_clear_empties_every_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=4, cache_size=8,
                                   fingerprint="ff")
        for i in range(1, 9):
            store.put(spec_for(i), float(i))
        assert store.clear() == 8
        assert len(store) == 0
        assert store.cache.size == 0

    def test_verify_merges_shard_reports(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=2, cache_size=0,
                                   fingerprint="ff")
        for i in (1, 2, 3):
            store.put(spec_for(i), float(i))
        report = store.verify()
        assert report.checked == 3
        assert report.ok == 3
        assert not report.corrupt

    def test_health_document(self, tmp_path):
        store = ShardedResultStore(tmp_path, shards=4, cache_size=16,
                                   fingerprint="ff")
        store.put(spec_for(1), 1.0)
        health = store.health()
        assert health["shards"] == 4
        assert health["objects"] == 1
        assert sum(health["objects_per_shard"]) == 1
        assert health["cache"]["capacity"] == 16
        assert health["fingerprint"] == "ff"

    def test_object_counts_cached_until_mutation(self, tmp_path):
        # health() must not walk every shard per call: the counts are
        # cached and only refreshed after a mutation.
        store = ShardedResultStore(tmp_path, shards=4, cache_size=16,
                                   fingerprint="ff")
        store.put(spec_for(1), 1.0)
        assert store.health()["objects"] == 1
        walked = {"n": 0}
        original = type(store.shards[0]).count_objects

        def counting(shard):
            walked["n"] += 1
            return original(shard)

        for shard in store.shards:
            shard.count_objects = counting.__get__(shard)
        assert store.health()["objects"] == 1    # cache warm after put
        assert walked["n"] == 0
        store.put(spec_for(2), 2.0)              # mutation invalidates
        assert store.health()["objects"] == 2
        assert walked["n"] == 4
        assert store.health()["objects"] == 2    # cached again
        assert walked["n"] == 4
        store.clear()
        assert store.health()["objects"] == 0
        assert walked["n"] == 8
