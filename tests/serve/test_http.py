"""HTTP layer: routes, status codes, streaming, byte-identity."""

import json
import threading
import urllib.request

import pytest

from repro.serve import client
from repro.serve.http import BackgroundServer
from repro.serve.service import CampaignService
from repro.serve.shards import ShardedResultStore

from tests.serve.test_service import CountingRunner, make_spec


@pytest.fixture()
def server(tmp_path):
    """A live server over a stub runner; yields (url, harness)."""
    store = ShardedResultStore(tmp_path / "store", shards=4, cache_size=64,
                               fingerprint="ff")
    runner = CountingRunner()
    harness = BackgroundServer(
        lambda: CampaignService(store, jobs=1, retries=0, runner=runner))
    harness.runner = runner
    with harness as url:
        yield url, harness


class TestRoutes:
    def test_healthz(self, server):
        url, _ = server
        status, health = client.server_health(url)
        assert status == 200
        assert health["status"] == "ok"
        assert health["queue"]["depth"] == 0

    def test_submit_and_poll_roundtrip(self, server):
        url, _ = server
        status, accepted = client.submit_job(url, make_spec([1, 2]),
                                             client="alice")
        assert status == 202
        assert accepted["cells"]["total"] == 2
        final = client.wait_for_job(url, accepted["job"], timeout=30)
        assert final["cells"]["completed"] == 2
        assert final["eta_seconds"] == 0.0

    def test_bare_spec_and_client_header(self, server):
        url, harness = server
        raw = json.dumps(make_spec([1])).encode()
        req = urllib.request.Request(
            f"{url}/jobs", data=raw, method="POST",
            headers={"X-Repro-Client": "header-client"})
        with urllib.request.urlopen(req, timeout=10) as resp:
            accepted = json.load(resp)
            assert resp.status == 202
        assert accepted["client"] == "header-client"

    def test_jobs_listing(self, server):
        url, _ = server
        _, a = client.submit_job(url, make_spec([1]), client="alice")
        client.wait_for_job(url, a["job"], timeout=30)
        status, listing = client._json(f"{url}/jobs")
        assert status == 200
        assert [j["job"] for j in listing["jobs"]] == [a["job"]]


class TestErrors:
    def test_invalid_json_is_400(self, server):
        url, _ = server
        status, raw = client.request(f"{url}/jobs", method="POST",
                                     body=None, headers={})
        assert status == 400   # no body at all

    def test_invalid_spec_is_400(self, server):
        url, _ = server
        status, doc = client.submit_job(
            url, {"name": "x", "experiment": "nope", "graphs": ["auto"],
                  "variants": ["v"], "threads": [1]})
        assert status == 400
        assert "unknown experiment" in doc["error"]

    def test_bad_priority_is_400(self, server):
        url, _ = server
        status, doc = client._json(
            f"{url}/jobs", method="POST",
            body={"spec": make_spec([1]), "priority": "high"})
        assert status == 400
        assert "priority" in doc["error"]

    def test_unknown_job_is_404(self, server):
        url, _ = server
        assert client.job_status(url, "cafecafe-9")[0] == 404
        assert client.job_results(url, "cafecafe-9")[0] == 404

    def test_unknown_route_is_404(self, server):
        url, _ = server
        assert client._json(f"{url}/nope")[0] == 404
        assert client._json(f"{url}/jobs/x/y/z")[0] == 404

    def test_wrong_method_is_405(self, server):
        url, _ = server
        status, _doc = client._json(f"{url}/jobs", method="DELETE")
        assert status == 405

    def test_over_quota_is_429(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=2,
                                   cache_size=0, fingerprint="ff")
        gate = threading.Event()

        def stalled(cell):
            gate.wait(timeout=30)
            return 1.0

        harness = BackgroundServer(
            lambda: CampaignService(store, jobs=1, retries=0,
                                    runner=stalled, quota=2))
        try:
            with harness as url:
                status, _ = client.submit_job(url, make_spec([1, 2]),
                                              client="alice")
                assert status == 202
                status, doc = client.submit_job(
                    url, make_spec([3], name="b"), client="alice")
                assert status == 429
                assert "quota" in doc["error"]
        finally:
            gate.set()

    def test_results_before_done_is_409(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=2,
                                   cache_size=0, fingerprint="ff")
        gate = threading.Event()

        def stalled(cell):
            gate.wait(timeout=30)
            return 1.0

        harness = BackgroundServer(
            lambda: CampaignService(store, jobs=1, retries=0,
                                    runner=stalled))
        try:
            with harness as url:
                _, accepted = client.submit_job(url, make_spec([1]))
                status, doc = client.job_results(url, accepted["job"])
                assert status == 409
                assert b"pending" in doc
                gate.set()
                client.wait_for_job(url, accepted["job"], timeout=30)
                assert client.job_results(url, accepted["job"])[0] == 200
        finally:
            gate.set()

    def test_draining_is_503(self, tmp_path):
        # Drain with a cell still in flight: submissions in that window
        # get 503; once the cell finishes, the server exits on its own.
        store = ShardedResultStore(tmp_path / "store", shards=2,
                                   cache_size=0, fingerprint="ff")
        gate = threading.Event()

        def stalled(cell):
            gate.wait(timeout=30)
            return 1.0

        harness = BackgroundServer(
            lambda: CampaignService(store, jobs=1, retries=0,
                                    runner=stalled))
        try:
            with harness as url:
                _, accepted = client.submit_job(url, make_spec([1]))
                status, doc = client.drain_server(url)
                assert status == 202
                assert doc["active_jobs"] == 1
                status, doc = client.submit_job(url,
                                                make_spec([2], name="b"))
                assert status == 503
                assert "draining" in doc["error"]
                gate.set()
        finally:
            gate.set()


class TestStream:
    def test_ndjson_stream_ends_with_done(self, server):
        url, _ = server
        _, accepted = client.submit_job(url, make_spec([1, 2]))
        with urllib.request.urlopen(
                f"{url}/jobs/{accepted['job']}/stream", timeout=30) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in resp]
        assert lines[0]["job"] == accepted["job"]       # status snapshot
        cell_events = [e for e in lines if e.get("event") == "cell"]
        assert len(cell_events) <= 2                    # may race settle
        assert lines[-1]["event"] == "done"
        assert lines[-1]["total"] == 2

    def test_stream_unknown_job_is_404(self, server):
        url, _ = server
        status, _raw = client.request(f"{url}/jobs/cafecafe-9/stream")
        assert status == 404


class TestByteIdentity:
    def test_http_results_match_serial_cli_run(self, tmp_path, monkeypatch):
        # The acceptance contract: a sweep submitted over HTTP yields a
        # results document byte-identical to `repro campaign run
        # --output` of the same spec — real runner, real store.
        monkeypatch.setenv("REPRO_FAST", "1")
        from repro.campaign.cli import main as campaign_main

        spec = {"name": "ci-byte", "experiment": "coloring",
                "graphs": ["auto"], "variants": ["OpenMP-dynamic"],
                "threads": [1, 11], "machine": "KNF", "seeds": [0],
                "params": {"ordering": "natural"}}
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec))
        serial_out = tmp_path / "serial.json"
        rc = campaign_main(["run", str(spec_file), "--output",
                            str(serial_out), "--store",
                            str(tmp_path / "serial-store"), "--quiet"])
        assert rc == 0

        store = ShardedResultStore(tmp_path / "serve-store", shards=4,
                                   cache_size=64)
        with BackgroundServer(
                lambda: CampaignService(store, jobs=1)) as url:
            _, accepted = client.submit_job(url, spec, client="ci")
            client.wait_for_job(url, accepted["job"], timeout=120)
            status, raw = client.job_results(url, accepted["job"])
            assert status == 200
            # Warm resubmission: every cell must come from the store.
            _, again = client.submit_job(url, spec, client="warm")
            assert again["cells"]["hits"] == again["cells"]["total"]
            _, raw2 = client.job_results(url, again["job"])
        assert raw == serial_out.read_bytes()
        assert raw2 == raw
