"""``REPRO_SERVE_*`` knobs: defaults, env overrides, precedence."""

import pytest

from repro.serve.config import (DEFAULT_PORT, ServeConfig, serve_host,
                                serve_port, serve_quota, serve_shards,
                                serve_url)


class TestDefaults:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
                    "REPRO_SERVE_URL", "REPRO_SERVE_JOBS",
                    "REPRO_SERVE_QUOTA", "REPRO_SERVE_CACHE",
                    "REPRO_SERVE_SHARDS", "REPRO_SERVE_RETAIN"):
            monkeypatch.delenv(var, raising=False)
        config = ServeConfig.from_env()
        assert config.host == "127.0.0.1"
        assert config.port == DEFAULT_PORT
        assert config.jobs == 1
        assert config.quota == 1024
        assert config.cache_size == 4096
        assert config.shards == 16
        assert config.retain == 512
        assert serve_url() == f"http://127.0.0.1:{DEFAULT_PORT}"


class TestEnvOverrides:
    def test_env_values_apply(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVE_QUOTA", "7")
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "3")
        assert serve_host() == "0.0.0.0"
        assert serve_port() == 9999
        assert serve_quota() == 7
        assert serve_shards() == 3

    def test_url_env_wins_over_host_port(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_URL", "http://example:1234")
        monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
        assert serve_url() == "http://example:1234"

    def test_invalid_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "70000")
        with pytest.raises(ValueError):
            serve_port()
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "0")
        with pytest.raises(ValueError):
            serve_shards()

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVE_QUOTA", "7")
        config = ServeConfig.from_env(port=1234, quota=99)
        assert config.port == 1234
        assert config.quota == 99
