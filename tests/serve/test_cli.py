"""``repro serve`` CLI: submit/status/drain against a live server."""

import json

import pytest

from repro.serve.cli import main as serve_main
from repro.serve.http import BackgroundServer
from repro.serve.service import CampaignService
from repro.serve.shards import ShardedResultStore

from tests.serve.test_service import CountingRunner, make_spec


@pytest.fixture()
def server(tmp_path):
    store = ShardedResultStore(tmp_path / "store", shards=2, cache_size=16,
                               fingerprint="ff")
    runner = CountingRunner()
    harness = BackgroundServer(
        lambda: CampaignService(store, jobs=1, retries=0, runner=runner))
    with harness as url:
        yield url


def write_spec(tmp_path, spec):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestSubmit:
    def test_submit_wait_output(self, tmp_path, server, capsys):
        spec_file = write_spec(tmp_path, make_spec([1, 2]))
        out = tmp_path / "results.json"
        rc = serve_main(["submit", spec_file, "--url", server,
                         "--client", "cli", "--output", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "2 cell(s)" in printed
        assert "done" in printed
        document = json.loads(out.read_bytes())
        assert len(document["results"]) == 2

    def test_submit_fire_and_forget(self, tmp_path, server, capsys):
        spec_file = write_spec(tmp_path, make_spec([1]))
        rc = serve_main(["submit", spec_file, "--url", server])
        assert rc == 0
        assert "1 cell(s)" in capsys.readouterr().out

    def test_invalid_spec_fails(self, tmp_path, server, capsys):
        spec_file = write_spec(tmp_path, {"name": "x", "experiment": "nope",
                                          "graphs": ["auto"],
                                          "variants": ["v"], "threads": [1]})
        rc = serve_main(["submit", spec_file, "--url", server])
        assert rc == 1
        assert "rejected" in capsys.readouterr().err

    def test_url_from_env(self, tmp_path, server, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SERVE_URL", server)
        spec_file = write_spec(tmp_path, make_spec([1]))
        assert serve_main(["submit", spec_file]) == 0


class TestStatusAndDrain:
    def test_status_health(self, server, capsys):
        rc = serve_main(["status", "--url", server])
        assert rc == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"

    def test_status_one_job(self, tmp_path, server, capsys):
        spec_file = write_spec(tmp_path, make_spec([1]))
        serve_main(["submit", spec_file, "--url", server, "--wait"])
        capsys.readouterr()
        rc = serve_main(["status", "--url", server])
        assert rc == 0

    def test_status_unknown_job(self, server, capsys):
        rc = serve_main(["status", "cafecafe-9", "--url", server])
        assert rc == 1
        assert "unknown job" in capsys.readouterr().out

    def test_drain(self, server, capsys):
        rc = serve_main(["drain", "--url", server])
        assert rc == 0
        assert "draining" in capsys.readouterr().out

    def test_connection_error_is_reported(self, capsys):
        rc = serve_main(["status", "--url", "http://127.0.0.1:9"])
        assert rc == 2
        assert "repro serve:" in capsys.readouterr().err


class TestDispatch:
    def test_experiments_cli_delegates(self, server, capsys):
        from repro.experiments.cli import main as repro_main
        rc = repro_main(["serve", "status", "--url", server])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["status"] == "ok"
