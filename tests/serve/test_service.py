"""Service core: dedup, quotas, journal resume, drain, byte-identity.

These tests drive :class:`~repro.serve.service.CampaignService`
directly (no sockets) with injected stub runners, so they are fast and
deterministic; the HTTP layer has its own suite on top.
"""

import asyncio
import json
import os
import threading

import pytest

from repro.serve.queue import QuotaExceeded
from repro.serve.service import CampaignService, ServiceDraining, UnknownJob
from repro.serve.shards import ShardedResultStore


def make_spec(threads, name="sweep"):
    return {"name": name, "experiment": "coloring", "graphs": ["auto"],
            "variants": ["OpenMP-dynamic"], "threads": list(threads),
            "machine": "KNF", "seeds": [0], "params": {}}


class CountingRunner:
    """Deterministic stub runner that records per-cell call counts."""

    def __init__(self, fail_threads=()):
        self.calls = {}
        self.fail_threads = set(fail_threads)
        self._lock = threading.Lock()

    def __call__(self, cell) -> float:
        with self._lock:
            self.calls[cell.cell_id] = self.calls.get(cell.cell_id, 0) + 1
        if cell.threads in self.fail_threads:
            raise RuntimeError(f"injected failure at {cell.threads}t")
        return 1000.0 + cell.threads


def make_store(tmp_path, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("cache_size", 64)
    kwargs.setdefault("fingerprint", "ff")
    return ShardedResultStore(tmp_path / "store", **kwargs)


def run_service(tmp_path, scenario, *, store=None, dispatch=True,
                **service_kwargs):
    """Start a service, run *scenario(service)*, always stop.

    ``dispatch=False`` runs an accept-only server (jobs journaled, no
    cell ever computed) — the deterministic stand-in for a server
    killed right after acknowledging a submission.
    """
    service_kwargs.setdefault("jobs", 1)
    service_kwargs.setdefault("retries", 0)
    if store is None:
        store = make_store(tmp_path)

    async def main():
        service = CampaignService(store, **service_kwargs)
        await service.start(dispatch=dispatch)
        try:
            return await asyncio.wait_for(scenario(service), timeout=60)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestSubmit:
    def test_invalid_spec_rejected(self, tmp_path):
        async def scenario(service):
            with pytest.raises(ValueError, match="unknown experiment"):
                service.submit({"name": "x", "experiment": "nope",
                                "graphs": ["auto"], "variants": ["v"],
                                "threads": [1]})
            return service

        service = run_service(tmp_path, scenario,
                              runner=CountingRunner())
        assert not service.jobs_list()

    def test_job_completes_with_stub_runner(self, tmp_path):
        runner = CountingRunner()

        async def scenario(service):
            job = service.submit(make_spec([1, 2]), client="alice")
            await job.done.wait()
            return job

        job = run_service(tmp_path, scenario, runner=runner)
        assert job.computed == 2
        assert job.values[job.cells[0].cell_id] == 1001.0
        assert sorted(runner.calls.values()) == [1, 1]
        status = job.status_dict(now=job.finished, rate=1.0)
        assert status["done"] is True
        assert status["cells"]["total"] == 2

    def test_duplicate_axis_values_are_one_cell(self, tmp_path):
        # [1, 1] expands to the same cell twice: one unit of work, one
        # quota charge, one result.
        runner = CountingRunner()

        async def scenario(service):
            job = service.submit(make_spec([1, 1]), client="alice")
            await job.done.wait()
            assert service.queue.loads() == {}   # fully released
            return job

        job = run_service(tmp_path, scenario, runner=runner)
        assert job.computed == 1
        assert sum(runner.calls.values()) == 1

    def test_quota_rejection_leaves_no_footprint(self, tmp_path):
        async def scenario(service):
            with pytest.raises(QuotaExceeded):
                service.submit(make_spec([1, 2, 3]), client="alice")
            assert service.queue.depth == 0
            assert service.queue.loads() == {}
            assert not service.jobs_list()
            return service

        run_service(tmp_path, scenario, runner=CountingRunner(), quota=2)

    def test_unknown_job_raises(self, tmp_path):
        async def scenario(service):
            with pytest.raises(UnknownJob):
                service.job("cafecafe-9")
            return service

        run_service(tmp_path, scenario, runner=CountingRunner())


class TestDedup:
    def test_overlapping_submissions_compute_shared_cells_once(
            self, tmp_path):
        # Two clients submit overlapping sweeps in the same loop tick —
        # the shared cell attaches to the queued computation, runs
        # exactly once, and both jobs receive the identical result.
        runner = CountingRunner()

        async def scenario(service):
            job_a = service.submit(make_spec([1, 2]), client="alice")
            job_b = service.submit(make_spec([2, 3], name="other"),
                                   client="bob")
            assert job_b.attached == 1
            await asyncio.gather(job_a.done.wait(), job_b.done.wait())
            return job_a, job_b

        job_a, job_b = run_service(tmp_path, scenario, runner=runner)
        shared = [c for c in job_a.cells if c.threads == 2][0].cell_id
        assert runner.calls[shared] == 1
        assert sum(runner.calls.values()) == 3          # cells 1, 2, 3
        assert job_a.values[shared] == job_b.values[shared] == 1002.0
        # Both jobs' result documents carry the identical cell row.
        rows_a = json.loads(job_a.results_bytes())["results"]
        rows_b = json.loads(job_b.results_bytes())["results"]
        assert rows_a[shared] == rows_b[shared]

    def test_warm_resubmission_served_from_store(self, tmp_path):
        runner = CountingRunner()
        store = None

        async def scenario(service):
            first = service.submit(make_spec([1, 2]), client="alice")
            await first.done.wait()
            second = service.submit(make_spec([1, 2]), client="bob")
            assert second.done.is_set()      # no recompute, done at submit
            return first, second

        first, second = run_service(tmp_path, scenario, runner=runner,
                                    store=store)
        assert second.hits == 2
        assert second.computed == 0
        assert sum(runner.calls.values()) == 2
        assert second.results_bytes() == first.results_bytes()


class TestFailures:
    def test_failed_cell_is_nan_with_error(self, tmp_path):
        runner = CountingRunner(fail_threads={2})

        async def scenario(service):
            job = service.submit(make_spec([1, 2]), client="alice")
            await job.done.wait()
            return job

        job = run_service(tmp_path, scenario, runner=runner)
        assert job.failed == 1
        assert job.computed == 1
        (error,) = job.errors.values()
        assert "injected failure" in error
        rows = json.loads(job.results_bytes())["results"]
        failed_row = [r for r in rows.values() if r["threads"] == 2][0]
        assert failed_row["cycles"] is None     # NaN -> null in JSON
        assert "injected failure" in failed_row["error"]


class TestJournalResume:
    def test_killed_service_requeues_unfinished_jobs(self, tmp_path):
        runner = CountingRunner()
        store = make_store(tmp_path)

        async def accept_only(service):
            # Submit and "crash" (accept-only server, dispatch never
            # runs): the journal holds a job record with no job-end.
            job = service.submit(make_spec([1, 2]), client="alice")
            return job.job_id

        job_id = run_service(tmp_path, accept_only, runner=runner,
                             store=store, dispatch=False)
        assert sum(runner.calls.values()) == 0

        async def resumed(service):
            assert service.requeued_jobs == [job_id]
            job = service.job(job_id)            # original id survives
            await job.done.wait()
            return job

        job = run_service(tmp_path, resumed, runner=runner, store=store)
        assert job.computed == 2
        assert sum(runner.calls.values()) == 2

    def test_journaled_completions_survive_store_loss(self, tmp_path):
        runner = CountingRunner()
        store = make_store(tmp_path, cache_size=0)

        async def crash_after_one(service):
            job = service.submit(make_spec([1, 2]), client="alice")
            await job.done.wait()
            return job.job_id

        job_id = run_service(tmp_path, crash_after_one, runner=runner,
                             store=store)
        # Wipe the store and re-open the journal: the completed values
        # must come back from the WAL.  Strip the job-end record to
        # simulate a crash between the last cell and the job-end write.
        store.clear()
        journal = os.path.join(store.root, "journals", "serve",
                               "journal.jsonl")
        lines = [line for line in
                 open(journal, encoding="utf-8").read().splitlines()
                 if '"job-end"' not in line]
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

        async def resumed(service):
            job = service.job(job_id)
            await job.done.wait()
            return job

        job = run_service(tmp_path, resumed, runner=runner, store=store)
        assert job.resumed == 2
        assert sum(runner.calls.values()) == 2   # nothing recomputed

    def test_finished_jobs_rebuild_without_duplicate_job_end(
            self, tmp_path):
        runner = CountingRunner()
        store = make_store(tmp_path)

        async def complete(service):
            job = service.submit(make_spec([1]), client="alice")
            await job.done.wait()
            return job.job_id

        job_id = run_service(tmp_path, complete, runner=runner, store=store)
        journal = os.path.join(store.root, "journals", "serve",
                               "journal.jsonl")
        ends_before = open(journal, encoding="utf-8") \
            .read().count('"job-end"')
        assert ends_before == 1

        async def reopened(service):
            job = service.job(job_id)
            assert job.done.is_set()
            return job

        job = run_service(tmp_path, reopened, runner=runner, store=store)
        assert job.hits + job.resumed == 1
        ends_after = open(journal, encoding="utf-8") \
            .read().count('"job-end"')
        assert ends_after == 1                   # not re-journaled

    def test_torn_tail_then_append_survives_double_restart(self, tmp_path):
        # The kill -9 scenario end to end: a SIGKILL mid-append leaves a
        # partial final line; the restarted server must not append after
        # the partial bytes (that would merge them into one mid-file
        # corrupt line and silently lose every record of the second
        # session on the *third* start).
        runner = CountingRunner()
        store = make_store(tmp_path)

        async def accept_only(service):
            return service.submit(make_spec([1, 2]), client="alice").job_id

        job_id = run_service(tmp_path, accept_only, runner=runner,
                             store=store, dispatch=False)
        journal = os.path.join(store.root, "journals", "serve",
                               "journal.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"type": "job", "job": "torn-999", "ca')  # no \n

        async def resumed(service):
            assert service.requeued_jobs == [job_id]
            await service.job(job_id).done.wait()
            return service

        run_service(tmp_path, resumed, runner=runner, store=store)
        assert sum(runner.calls.values()) == 2

        async def third(service):
            job = service.job(job_id)       # second session's records
            assert job.done.is_set()        # survived the third replay
            return job

        job = run_service(tmp_path, third, runner=runner, store=store)
        assert job.hits + job.resumed == 2
        assert sum(runner.calls.values()) == 2   # nothing recomputed

    def test_stale_fingerprint_discards_journaled_values(self, tmp_path):
        # The serve journal outlives code changes.  Completions recorded
        # under an older fingerprint must not be served as resume hits —
        # the determinism contract is byte-identity with a fresh run of
        # the *current* code.  The jobs themselves still requeue.
        runner = CountingRunner()
        store = make_store(tmp_path, cache_size=0)      # fingerprint ff

        async def complete(service):
            job = service.submit(make_spec([1, 2]), client="alice")
            await job.done.wait()
            return job.job_id

        job_id = run_service(tmp_path, complete, runner=runner, store=store)
        store.clear()
        journal = os.path.join(store.root, "journals", "serve",
                               "journal.jsonl")
        lines = [line for line in
                 open(journal, encoding="utf-8").read().splitlines()
                 if '"job-end"' not in line]
        with open(journal, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

        changed = make_store(tmp_path, cache_size=0, fingerprint="gg")

        async def resumed(service):
            job = service.job(job_id)
            await job.done.wait()
            return job

        job = run_service(tmp_path, resumed, runner=runner, store=changed)
        assert job.resumed == 0                  # stale values not served
        assert job.computed == 2
        assert sum(runner.calls.values()) == 4   # recomputed, not replayed
        first = json.loads(open(journal, encoding="utf-8").readline())
        assert first["fingerprint"] == "gg"      # journal re-keyed

    def test_journal_compacts_and_stays_byte_stable(self, tmp_path):
        runner = CountingRunner()
        store = make_store(tmp_path)

        async def complete(service):
            job = service.submit(make_spec([1]), client="alice")
            await job.done.wait()
            return job.job_id

        run_service(tmp_path, complete, runner=runner, store=store)

        async def idle(service):
            return service

        journal = os.path.join(store.root, "journals", "serve",
                               "journal.jsonl")
        run_service(tmp_path, idle, runner=runner, store=store,
                    dispatch=False)
        once = open(journal, "rb").read()
        assert once.count(b'"begin"') == 1
        assert once.count(b'"job-end"') == 1
        run_service(tmp_path, idle, runner=runner, store=store,
                    dispatch=False)
        assert open(journal, "rb").read() == once   # compaction fixpoint


class TestDispatchFailure:
    def test_broken_batch_fails_jobs_instead_of_hanging(self, tmp_path):
        # If the batch itself blows up (store OSError, pool breakage),
        # the dispatcher must settle the cells as failed and keep
        # serving — not die silently with the jobs stuck pending.
        runner = CountingRunner()

        async def scenario(service):
            def boom(cells, loop):
                raise RuntimeError("pool on fire")

            service._run_batch = boom
            broken = service.submit(make_spec([1, 2]), client="alice")
            await asyncio.wait_for(broken.done.wait(), timeout=30)
            assert broken.failed == 2
            assert all("dispatch failed" in e
                       for e in broken.errors.values())
            assert service.queue.loads() == {}       # quota released
            del service._run_batch                   # dispatcher survived
            healthy = service.submit(make_spec([3], name="after"),
                                     client="alice")
            await asyncio.wait_for(healthy.done.wait(), timeout=30)
            return healthy

        healthy = run_service(tmp_path, scenario, runner=runner)
        assert healthy.computed == 1


class TestRetention:
    def test_oldest_done_jobs_evicted_at_cap(self, tmp_path):
        runner = CountingRunner()

        async def scenario(service):
            ids = []
            for threads in (1, 2, 3):
                job = service.submit(make_spec([threads], name=f"s{threads}"),
                                     client="alice")
                await job.done.wait()
                ids.append(job.job_id)
            return service, ids

        service, ids = run_service(tmp_path, scenario, runner=runner,
                                   retain_done=1)
        assert [j.job_id for j in service.jobs_list()] == [ids[-1]]
        with pytest.raises(UnknownJob):
            service.job(ids[0])

    def test_retention_survives_restart_via_compaction(self, tmp_path):
        runner = CountingRunner()
        store = make_store(tmp_path)

        async def two_jobs(service):
            ids = []
            for threads in (1, 2):
                job = service.submit(make_spec([threads], name=f"s{threads}"),
                                     client="alice")
                await job.done.wait()
                ids.append(job.job_id)
            return ids

        ids = run_service(tmp_path, two_jobs, runner=runner, store=store,
                          retain_done=2)

        async def reopened(service):
            return service

        service = run_service(tmp_path, reopened, runner=runner,
                              store=store, retain_done=1, dispatch=False)
        assert [j.job_id for j in service.jobs_list()] == [ids[-1]]
        journal = open(os.path.join(store.root, "journals", "serve",
                                    "journal.jsonl"), "rb").read()
        assert journal.count(b'"job-end"') == 1
        assert ids[0].encode() not in journal

    def test_resume_exceeding_quota_still_admits(self, tmp_path):
        runner = CountingRunner()
        store = make_store(tmp_path)

        async def accept_two(service):
            a = service.submit(make_spec([1, 2]), client="alice")
            b = service.submit(make_spec([3, 4], name="b"), client="alice")
            return [a.job_id, b.job_id]

        ids = run_service(tmp_path, accept_two, runner=runner, store=store,
                          quota=4, dispatch=False)

        async def resumed(service):
            assert sorted(service.requeued_jobs) == sorted(ids)
            for job_id in ids:
                await service.job(job_id).done.wait()
            return service

        # Restart with a *smaller* quota: replayed jobs must not be lost.
        run_service(tmp_path, resumed, runner=runner, store=store, quota=1)
        assert sum(runner.calls.values()) == 4


class TestDrain:
    def test_drain_rejects_new_and_finishes_old(self, tmp_path):
        runner = CountingRunner()

        async def scenario(service):
            job = service.submit(make_spec([1, 2]), client="alice")
            report = service.drain()
            assert report["draining"] is True
            with pytest.raises(ServiceDraining):
                service.submit(make_spec([3], name="late"), client="bob")
            await job.done.wait()
            await asyncio.wait_for(service.drained.wait(), timeout=30)
            return job

        job = run_service(tmp_path, scenario, runner=runner)
        assert job.computed == 2

    def test_health_document(self, tmp_path):
        async def scenario(service):
            job = service.submit(make_spec([1]), client="alice")
            await job.done.wait()
            return service.health()

        health = run_service(tmp_path, scenario, runner=CountingRunner())
        assert health["status"] == "ok"
        assert health["jobs"] == {"total": 1, "active": 0, "done": 1,
                                  "requeued_on_start": 0}
        assert health["queue"]["pushed"] == 1
        assert health["store"]["shards"] == 4
        assert health["journal"]["path"].endswith("journal.jsonl")
