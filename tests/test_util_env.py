"""Edge cases for the validated environment parsers in repro._util.

These parsers are the single choke point the ``env-raw-read`` lint rule
funnels every ``REPRO_*`` read through, so their unset/empty/garbage
behaviour is a contract: unset and empty mean "use the default", and
anything unparseable raises a ValueError that names the variable.
"""

import math

import pytest

from repro._util import env_bool, env_csv, env_float, env_int, env_str

VAR = "REPRO_UTIL_TEST_KNOB"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(VAR, raising=False)


# -------------------------------------------------------------------- env_int


def test_env_int_unset_returns_default():
    assert env_int(VAR) is None
    assert env_int(VAR, 7) == 7


def test_env_int_empty_string_means_unset(monkeypatch):
    monkeypatch.setenv(VAR, "")
    assert env_int(VAR, 7) == 7


def test_env_int_whitespace_only_means_unset(monkeypatch):
    monkeypatch.setenv(VAR, "   ")
    assert env_int(VAR, 7) == 7


def test_env_int_garbage_names_the_variable(monkeypatch):
    monkeypatch.setenv(VAR, "x")
    with pytest.raises(ValueError, match=VAR):
        env_int(VAR)


def test_env_int_negative_thread_count_rejected(monkeypatch):
    # The REPRO_JOBS contract: negatives rejected, zero allowed
    # (executor maps 0 to one job per CPU).
    monkeypatch.setenv(VAR, "-1")
    with pytest.raises(ValueError, match=VAR):
        env_int(VAR, lo=0)


def test_env_int_zero_thread_count_allowed(monkeypatch):
    monkeypatch.setenv(VAR, "0")
    assert env_int(VAR, lo=0) == 0


def test_env_int_float_literal_rejected(monkeypatch):
    monkeypatch.setenv(VAR, "3.5")
    with pytest.raises(ValueError, match=VAR):
        env_int(VAR)


def test_env_int_bounds_enforced(monkeypatch):
    monkeypatch.setenv(VAR, "500")
    with pytest.raises(ValueError, match=VAR):
        env_int(VAR, lo=0, hi=100)


# ------------------------------------------------------------------ env_float


def test_env_float_parses_and_bounds(monkeypatch):
    monkeypatch.setenv(VAR, "0.25")
    assert env_float(VAR, lo=0.0, hi=1.0) == 0.25


def test_env_float_overflow_to_inf_rejected(monkeypatch):
    # float("1e999") silently overflows to inf; a budget of infinity is
    # never a sane configuration, so the parser must refuse it.
    monkeypatch.setenv(VAR, "1e999")
    with pytest.raises(ValueError, match=VAR):
        env_float(VAR)


def test_env_float_nan_rejected(monkeypatch):
    monkeypatch.setenv(VAR, "nan")
    with pytest.raises(ValueError, match=VAR):
        env_float(VAR)


def test_env_float_unset_and_empty_mean_default(monkeypatch):
    assert env_float(VAR) is None
    monkeypatch.setenv(VAR, "")
    assert env_float(VAR, 0.5) == 0.5
    assert not math.isinf(env_float(VAR, 0.5))


# ------------------------------------------------------------------- env_bool


@pytest.mark.parametrize("raw,expected", [
    ("1", True), ("true", True), ("YES", True), ("On", True),
    ("0", False), ("false", False), ("NO", False), ("off", False),
])
def test_env_bool_tokens(monkeypatch, raw, expected):
    monkeypatch.setenv(VAR, raw)
    assert env_bool(VAR) is expected


def test_env_bool_garbage_rejected(monkeypatch):
    monkeypatch.setenv(VAR, "maybe")
    with pytest.raises(ValueError, match=VAR):
        env_bool(VAR)


def test_env_bool_unset_uses_default():
    assert env_bool(VAR) is False
    assert env_bool(VAR, True) is True


# -------------------------------------------------------------------- env_str


def test_env_str_empty_means_default(monkeypatch):
    monkeypatch.setenv(VAR, "")
    assert env_str(VAR) is None
    assert env_str(VAR, "fallback") == "fallback"


def test_env_str_passes_value_through(monkeypatch):
    monkeypatch.setenv(VAR, "/tmp/store")
    assert env_str(VAR) == "/tmp/store"


# -------------------------------------------------------------------- env_csv


def test_env_csv_unset_returns_none():
    assert env_csv(VAR) is None


def test_env_csv_whitespace_only_means_unset(monkeypatch):
    monkeypatch.setenv(VAR, "   ")
    assert env_csv(VAR) is None


def test_env_csv_bare_separators_are_explicit_empty_list(monkeypatch):
    # " , ," names a list with no tokens — callers like panel_threads
    # reject it ("no thread counts") rather than sweeping a default.
    monkeypatch.setenv(VAR, "  , ,  ")
    assert env_csv(VAR) == []


def test_env_csv_strips_and_drops_empty_fields(monkeypatch):
    monkeypatch.setenv(VAR, " a, ,b , c ")
    assert env_csv(VAR) == ["a", "b", "c"]
