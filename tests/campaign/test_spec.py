"""Campaign specs: grid expansion, stable cell IDs, validation."""

import pytest

from repro.campaign.spec import AXES, CampaignSpec, CellSpec


def make_spec(**over):
    data = {"name": "t", "experiment": "coloring",
            "graphs": ["auto", "pwtk"],
            "variants": ["OpenMP-dynamic", "TBB-simple"],
            "threads": [1, 11], "seeds": [0],
            "params": {"ordering": "natural"}}
    data.update(over)
    return CampaignSpec.from_dict(data)


class TestCellSpec:
    def test_dict_roundtrip(self):
        c = CellSpec(experiment="coloring", graph="auto",
                     variant="OpenMP-dynamic", threads=11,
                     params=(("ordering", "natural"),))
        assert CellSpec.from_dict(c.to_dict()) == c

    def test_cell_id_deterministic(self):
        kw = dict(experiment="bfs", graph="auto", variant="bag", threads=31)
        assert CellSpec(**kw).cell_id == CellSpec(**kw).cell_id
        assert len(CellSpec(**kw).cell_id) == 16

    def test_cell_id_sensitive_to_every_coordinate(self):
        base = CellSpec(experiment="bfs", graph="auto", variant="bag",
                        threads=31)
        ids = {base.cell_id,
               CellSpec(experiment="coloring", graph="auto", variant="bag",
                        threads=31).cell_id,
               CellSpec(experiment="bfs", graph="pwtk", variant="bag",
                        threads=31).cell_id,
               CellSpec(experiment="bfs", graph="auto", variant="bag",
                        threads=61).cell_id,
               CellSpec(experiment="bfs", graph="auto", variant="bag",
                        threads=31, seed=1).cell_id,
               CellSpec(experiment="bfs", graph="auto", variant="bag",
                        threads=31, machine="HOST_XEON").cell_id,
               CellSpec(experiment="bfs", graph="auto", variant="bag",
                        threads=31, params=(("block", 64),)).cell_id}
        assert len(ids) == 7

    def test_params_order_does_not_change_id(self):
        a = CellSpec.from_dict({"experiment": "bfs", "graph": "auto",
                                "variant": "bag", "threads": 1,
                                "params": {"a": 1, "b": 2}})
        b = CellSpec.from_dict({"experiment": "bfs", "graph": "auto",
                                "variant": "bag", "threads": 1,
                                "params": {"b": 2, "a": 1}})
        assert a.cell_id == b.cell_id

    def test_label(self):
        c = CellSpec(experiment="bfs", graph="auto", variant="bag",
                     threads=31)
        assert c.label() == "auto/bag@31t"
        f = CellSpec(experiment="bfs-faults", graph="auto", variant="OpenMP",
                     threads=40, axis="intensity")
        assert f.label().endswith("40%")


class TestExpansion:
    def test_count_and_order(self):
        spec = make_spec()
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 2  # graphs x variants x threads
        # graphs outer, then variants, then threads
        assert [(c.graph, c.variant, c.threads) for c in cells[:3]] == [
            ("auto", "OpenMP-dynamic", 1), ("auto", "OpenMP-dynamic", 11),
            ("auto", "TBB-simple", 1)]

    def test_expansion_is_deterministic(self):
        ids = [c.cell_id for c in make_spec().expand()]
        assert ids == [c.cell_id for c in make_spec().expand()]
        assert len(set(ids)) == len(ids)

    def test_seeds_multiply(self):
        spec = make_spec(seeds=[0, 1, 2])
        assert len(spec.expand()) == 8 * 3


class TestRoundTrip:
    def test_dict_roundtrip(self):
        spec = make_spec()
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == \
            spec.to_dict()

    def test_file_roundtrip(self, tmp_path):
        import json
        spec = make_spec()
        path = tmp_path / "c.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_file(path).to_dict() == spec.to_dict()

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            CampaignSpec.from_file(path)

    def test_ci_spec_parses(self):
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "benchmarks", "campaign_ci.json")
        spec = CampaignSpec.from_file(path)
        assert spec.name == "ci-tiny"
        assert len(spec.expand()) == 8


class TestValidation:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            make_spec(typo="x")

    def test_missing_name(self):
        with pytest.raises(ValueError, match="name"):
            CampaignSpec.from_dict({"experiment": "coloring"})

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            make_spec(experiment="nope")

    def test_unknown_graph(self):
        with pytest.raises(ValueError, match="unknown graphs"):
            make_spec(graphs=["auto", "nope"])

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variants"):
            make_spec(variants=["OpenMP-dynamic", "nope"])

    def test_bad_threads_matches_env_error(self):
        with pytest.raises(ValueError, match="is not an integer"):
            make_spec(threads=[1, "x"])
        with pytest.raises(ValueError, match="must be >= 1"):
            make_spec(threads=[0])
        with pytest.raises(ValueError, match="no thread counts"):
            make_spec(threads=[])

    def test_bad_axis(self):
        with pytest.raises(ValueError, match="axis"):
            make_spec(axis="widgets")
        assert AXES == ("threads", "intensity")

    def test_intensity_axis_bounds(self):
        spec = make_spec(experiment="coloring-faults",
                         variants=["OpenMP-dynamic"], axis="intensity",
                         threads=[0, 40, 100], params={})
        assert len(spec.expand()) == 2 * 1 * 3
        with pytest.raises(ValueError, match="0..100"):
            make_spec(experiment="coloring-faults",
                      variants=["OpenMP-dynamic"],
                      axis="intensity", threads=[150], params={})

    def test_bad_machine(self):
        with pytest.raises(ValueError, match="machine"):
            make_spec(machine="KNC")

    def test_bad_seeds(self):
        with pytest.raises(ValueError, match="seeds"):
            make_spec(seeds=[-1])
        with pytest.raises(ValueError, match="seeds"):
            make_spec(seeds=[])
