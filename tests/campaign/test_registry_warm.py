"""Warm campaign runs do zero graph generation when the registry is on.

Satellite contract for :mod:`repro.graphstore`: campaign adapters reach
their suite graphs through :func:`repro.graph.suite.suite_graph`, which
resolves through the graph registry whenever ``REPRO_GRAPH_DIR`` is set.
The first (cold) pass builds the ``.rgr`` file; a second pass — here a
fresh registry instance standing in for a new worker process — must
memory-map it without calling a generator, and must produce bit-identical
cell values.  The ``graphstore.hits``/``graphstore.misses`` counters are
the proof.
"""

import pytest

import repro.graphstore.registry as registry_module
from repro.campaign.runners import run_cell
from repro.campaign.spec import CellSpec
from repro.experiments.harness import ordered_suite_graph
from repro.graph.suite import suite_graph
from repro.graphstore.registry import registry_from_env
from repro.obs import metrics

CELL = CellSpec(experiment="coloring", graph="pwtk",
                variant="OpenMP-dynamic", threads=4,
                params=(("ordering", "natural"),))


def _fresh_pass():
    """Drop every in-process cache, as a newly forked worker would have.

    ``ordered_suite_graph`` keeps its own lru_cache above ``suite_graph``
    — a warm adapter call short-circuits there without consulting the
    registry, so both layers must be emptied to model a new process.
    """
    suite_graph.cache_clear()
    ordered_suite_graph.cache_clear()
    registry_module._ACTIVE.clear()


@pytest.fixture
def graph_env(tmp_path, monkeypatch):
    """Point the registry at a scratch dir; isolate all process caches."""
    monkeypatch.setenv("REPRO_GRAPH_DIR", str(tmp_path / "graphs"))
    _fresh_pass()
    yield
    _fresh_pass()


class TestWarmCampaign:
    def test_second_pass_is_all_mmap_hits(self, graph_env):
        with metrics.collecting() as collected:
            cold_value = run_cell(CELL)
        cold = collected.snapshot()
        assert cold.get("graphstore.misses") == 1
        assert "graphstore.hits" not in cold

        _fresh_pass()
        with metrics.collecting() as collected:
            warm_value = run_cell(CELL)
        warm = collected.snapshot()
        assert warm.get("graphstore.hits") == 1
        assert "graphstore.misses" not in warm

        registry = registry_from_env()
        assert registry.stats.builds == 0  # the warm registry never built
        assert warm_value == cold_value  # bit-identical simulated cycles

    def test_registry_off_means_no_counters(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH_DIR", raising=False)
        _fresh_pass()
        try:
            with metrics.collecting() as collected:
                value = run_cell(CELL)
            snapshot = collected.snapshot()
            assert not any(k.startswith("graphstore.") for k in snapshot)
            assert value > 0
        finally:
            _fresh_pass()

    def test_registry_value_matches_eager_value(self, graph_env):
        via_registry = run_cell(CELL)
        _fresh_pass()
        import os
        eager_env = os.environ.pop("REPRO_GRAPH_DIR")
        try:
            eager = run_cell(CELL)
        finally:
            os.environ["REPRO_GRAPH_DIR"] = eager_env
        assert via_registry == eager
