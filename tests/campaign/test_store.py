"""Content-addressed result store: keys, invalidation, maintenance."""

import os

import pytest

from repro.campaign.store import ResultStore, code_fingerprint


SPEC = {"experiment": "coloring", "graph": "auto",
        "variant": "OpenMP-dynamic", "threads": 11}


class TestPutGet:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(SPEC) is None
        store.put(SPEC, 123.5)
        assert store.get(SPEC) == 123.5
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_different_specs_do_not_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, 1.0)
        store.put({**SPEC, "threads": 31}, 2.0)
        assert store.get(SPEC) == 1.0
        assert store.get({**SPEC, "threads": 31}) == 2.0

    def test_key_is_stable_and_fanned_out(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 1.0)
        assert key == store.key(SPEC)
        assert os.path.exists(os.path.join(
            store.root, "objects", key[:2], f"{key[2:]}.json"))

    def test_contains_does_not_touch_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.contains(SPEC)
        store.put(SPEC, 1.0)
        assert store.contains(SPEC)
        assert store.stats.hits == 0 and store.stats.misses == 0

    def test_nan_is_never_stored(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put(SPEC, float("nan")) is None
        assert store.put(SPEC, float("inf")) is None
        assert store.get(SPEC) is None
        assert store.stats.skipped_nonfinite == 2
        assert len(store) == 0

    def test_no_tmp_files_left(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, 1.0)
        files = [f for _, _, fns in os.walk(store.root) for f in fns]
        assert all(f.endswith(".json") for f in files)

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 1.0)
        path = os.path.join(store.root, "objects", key[:2],
                            f"{key[2:]}.json")
        with open(path, "w") as fh:
            fh.write("{trunc")
        assert store.get(SPEC) is None
        assert store.stats.corrupt == 1


class TestFingerprint:
    def test_fingerprint_memoised_and_short(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_code_change_invalidates(self, tmp_path):
        old = ResultStore(tmp_path, fingerprint="aaaa")
        old.put(SPEC, 1.0)
        new = ResultStore(tmp_path, fingerprint="bbbb")
        assert new.get(SPEC) is None  # different key space
        assert new.key(SPEC) != old.key(SPEC)

    def test_gc_removes_stale_keeps_current(self, tmp_path):
        old = ResultStore(tmp_path, fingerprint="aaaa")
        old.put(SPEC, 1.0)
        new = ResultStore(tmp_path, fingerprint="bbbb")
        new.put(SPEC, 2.0)
        removed, kept = new.gc()
        assert (removed, kept) == (1, 1)
        assert new.get(SPEC) == 2.0


class TestMaintenance:
    def test_entries_surface(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, 7.0)
        (entry,) = store.entries()
        assert entry.spec == SPEC
        assert entry.value == 7.0
        assert entry.current
        assert entry.size_bytes > 0

    def test_gc_max_age(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 1.0)
        path = os.path.join(store.root, "objects", key[:2],
                            f"{key[2:]}.json")
        week_ago = os.stat(path).st_mtime - 7 * 86400
        os.utime(path, (week_ago, week_ago))
        assert store.gc(max_age_days=30) == (0, 1)
        assert store.gc(max_age_days=3) == (1, 0)

    def test_gc_stale_only_ignores_age(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 1.0)
        path = os.path.join(store.root, "objects", key[:2],
                            f"{key[2:]}.json")
        os.utime(path, (0, 0))
        assert store.gc(max_age_days=1, stale_only=True) == (0, 1)

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, 1.0)
        store.put({**SPEC, "threads": 31}, 2.0)
        assert store.clear() == 2
        assert len(store) == 0
        assert os.path.isdir(store.root)

    @staticmethod
    def _populate_side_trees(root):
        """Drop files into quarantine/ and journals/ like real runs do."""
        quarantine = os.path.join(root, "quarantine")
        journals = os.path.join(root, "journals", "serve")
        os.makedirs(quarantine, exist_ok=True)
        os.makedirs(journals, exist_ok=True)
        q_file = os.path.join(quarantine, "deadbeef.json")
        j_file = os.path.join(journals, "journal.jsonl")
        with open(q_file, "w", encoding="utf-8") as fh:
            fh.write("{corrupt but preserved}")
        with open(j_file, "w", encoding="utf-8") as fh:
            fh.write('{"type": "job", "job": "cafe0123-1"}\n')
        return q_file, j_file

    def test_gc_never_touches_quarantine_or_journals(self, tmp_path):
        # Regression guard: gc must only ever delete under objects/ —
        # quarantined evidence and crash-recovery journals survive even
        # the most aggressive gc settings.
        old = ResultStore(tmp_path, fingerprint="aaaa")
        old.put(SPEC, 1.0)
        store = ResultStore(tmp_path, fingerprint="bbbb")
        key = store.put(SPEC, 2.0)
        q_file, j_file = self._populate_side_trees(store.root)
        path = os.path.join(store.root, "objects", key[:2],
                            f"{key[2:]}.json")
        os.utime(path, (0, 0))
        removed, kept = store.gc(max_age_days=0.0)
        assert (removed, kept) == (2, 0)
        assert os.path.isfile(q_file)
        assert os.path.isfile(j_file)
        with open(j_file, encoding="utf-8") as fh:
            assert "cafe0123-1" in fh.read()

    def test_clear_never_touches_quarantine_or_journals(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, 1.0)
        q_file, j_file = self._populate_side_trees(store.root)
        assert store.clear() == 1
        assert os.path.isfile(q_file)
        assert os.path.isfile(j_file)

    def test_remove_object_refuses_paths_outside_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, 1.0)
        q_file, j_file = self._populate_side_trees(store.root)
        for outside in (q_file, j_file):
            with pytest.raises(ValueError, match="refusing to delete"):
                store._remove_object(outside)
            assert os.path.isfile(outside)


class TestRootResolution:
    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        store = ResultStore()
        assert store.root == str(tmp_path / "envstore")

    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        store = ResultStore(tmp_path / "explicit")
        assert store.root == str(tmp_path / "explicit")

    def test_tilde_expanded(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert "~" not in ResultStore().root


class TestIntegrity:
    def object_path(self, store, key):
        return os.path.join(store.root, "objects", key[:2],
                            f"{key[2:]}.json")

    def test_bit_flip_is_caught_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 123.5)
        path = self.object_path(store, key)
        with open(path) as fh:
            text = fh.read()
        # Valid JSON, wrong payload: only the checksum can catch this.
        with open(path, "w") as fh:
            fh.write(text.replace("123.5", "999.5"))
        assert store.get(SPEC) is None
        assert store.stats.corrupt == 1
        assert store.stats.quarantined == 1
        assert not os.path.exists(path)
        quarantine = os.path.join(store.root, "quarantine")
        assert len(os.listdir(quarantine)) == 1

    def test_recompute_after_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 1.0)
        with open(self.object_path(store, key), "a") as fh:
            fh.write("garbage")
        assert store.get(SPEC) is None     # quarantined, miss
        store.put(SPEC, 1.0)               # recomputed by the caller
        assert store.get(SPEC) == 1.0      # healthy again

    def test_verify_reports_without_touching(self, tmp_path):
        store = ResultStore(tmp_path)
        good = store.put(SPEC, 1.0)
        bad = store.put({**SPEC, "threads": 31}, 2.0)
        bad_path = self.object_path(store, bad)
        with open(bad_path, "w") as fh:
            fh.write("{trunc")
        report = store.verify()
        assert report.checked == 2 and report.ok == 1
        assert report.corrupt == [bad_path]
        assert not report.clean
        assert os.path.exists(bad_path)  # report-only: file untouched
        assert store.get(SPEC) == 1.0
        assert good != bad

    def test_verify_repair_quarantines_then_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(SPEC, 1.0)
        path = self.object_path(store, key)
        with open(path, "w") as fh:
            fh.write("{trunc")
        report = store.verify(repair=True)
        assert report.quarantined == [path]
        assert not os.path.exists(path)
        assert store.verify().clean


class TestFingerprintBytes:
    def test_non_utf8_source_does_not_crash(self, tmp_path, monkeypatch):
        """The fingerprint hashes raw bytes: a Latin-1 or binary-ish
        source file must not abort the whole store."""
        import repro
        from repro.campaign import store as store_module

        pkg = tmp_path / "fakepkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("x = 1\n")
        (pkg / "latin1.py").write_bytes(b"# caf\xe9 \xff\xfe\n")
        monkeypatch.setattr(store_module, "_FINGERPRINT", None)
        monkeypatch.setattr(repro, "__file__", str(pkg / "__init__.py"))
        fp = code_fingerprint()
        assert len(fp) == 16
        # And it is stable for the same bytes.
        monkeypatch.setattr(store_module, "_FINGERPRINT", None)
        assert code_fingerprint() == fp


@pytest.mark.parametrize("value", [0.5, 1e12])
def test_value_roundtrips_exactly(tmp_path, value):
    store = ResultStore(tmp_path)
    store.put(SPEC, value)
    assert store.get(SPEC) == value
