"""Chaos harness: env fault hooks, victim selection, the e2e protocol."""

import json

import numpy as np
import pytest

from repro.campaign.chaos import (ChaosInjectedError, _pick_victims,
                                  chaos_run_cell, main, run_chaos)
from repro.campaign.runners import run_cell
from repro.campaign.spec import CampaignSpec


SPEC = {"name": "chaos-test", "experiment": "coloring",
        "graphs": ["auto"], "variants": ["OpenMP-dynamic"],
        "threads": [1, 2, 11], "seeds": [0],
        "params": {"ordering": "natural"}}


@pytest.fixture
def spec(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    return CampaignSpec.from_dict(SPEC)


class TestFaultHooks:
    def test_fail_fires_exactly_once(self, tmp_path, monkeypatch, spec):
        cell = spec.expand()[0]
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_FAIL_CELLS", cell.cell_id)
        with pytest.raises(ChaosInjectedError):
            chaos_run_cell(cell)
        # The marker is claimed: the retry computes the clean value.
        assert chaos_run_cell(cell) == run_cell(cell)

    def test_no_chaos_dir_means_no_faults(self, monkeypatch, spec):
        cell = spec.expand()[0]
        monkeypatch.delenv("REPRO_CHAOS_DIR", raising=False)
        monkeypatch.setenv("REPRO_CHAOS_FAIL_CELLS", cell.cell_id)
        assert chaos_run_cell(cell) == run_cell(cell)

    def test_other_cells_untouched(self, tmp_path, monkeypatch, spec):
        victim, bystander = spec.expand()[:2]
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_FAIL_CELLS", victim.cell_id)
        assert chaos_run_cell(bystander) == run_cell(bystander)

    def test_accepts_cell_dicts(self, tmp_path, monkeypatch, spec):
        cell = spec.expand()[0]
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_FAIL_CELLS", cell.cell_id)
        with pytest.raises(ChaosInjectedError):
            chaos_run_cell(cell.to_dict())


class TestVictimSelection:
    def test_deterministic_and_disjoint(self, spec):
        cells = spec.expand()
        first = _pick_victims(cells, np.random.default_rng(7), 1, 1, 1)
        again = _pick_victims(cells, np.random.default_rng(7), 1, 1, 1)
        assert first == again
        kills, hangs, fails = first
        chosen = kills + hangs + fails
        assert len(set(chosen)) == len(chosen)  # no cell faulted twice
        ids = {c.cell_id for c in cells}
        assert all(v in ids for v in chosen)

    def test_clamped_to_available_cells(self, spec):
        cells = spec.expand()  # 3 cells
        kills, hangs, fails = _pick_victims(
            cells, np.random.default_rng(0), 5, 5, 5)
        assert len(kills) + len(hangs) + len(fails) == len(cells)


class TestEndToEnd:
    def test_protocol_via_cli(self, tmp_path, monkeypatch, capsys):
        """One full chaos run through ``repro chaos``: kill + hang +
        exception + truncation, byte-identity both phases."""
        monkeypatch.setenv("REPRO_FAST", "1")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC))
        report_path = tmp_path / "report.json"
        code = main([str(spec_path), "--workdir", str(tmp_path / "work"),
                     "--timeout", "5", "--seed", "3", "--quiet",
                     "--json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos verdict: OK" in out
        report = json.loads(report_path.read_text())
        assert report["ok"]
        assert report["chaos_identical"] and report["warm_identical"]
        assert report["kills"] and report["hangs"] and report["fails"]
        assert report["quarantined"] >= len(report["truncated"]) >= 1
        res = report["resilience"]
        assert res["worker_deaths"] >= 1
        assert res["timeouts"] >= 1

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        code = main([str(tmp_path / "missing.json")])
        assert code == 2
        assert "repro chaos" in capsys.readouterr().err


class TestReportVerdict:
    def test_ok_requires_identity_and_injection(self, spec):
        from repro.campaign.chaos import ChaosReport
        report = ChaosReport(cells=3, kills=["a"], chaos_identical=True,
                             warm_identical=True)
        assert report.ok
        assert not ChaosReport(cells=3, chaos_identical=True,
                               warm_identical=True).ok  # nothing injected
        assert not ChaosReport(cells=3, kills=["a"], chaos_identical=False,
                               warm_identical=True).ok
        broken = ChaosReport(cells=3, truncated=["p"], chaos_identical=True,
                             warm_identical=True, quarantined=0)
        assert not broken.ok  # corruption injected but never caught
