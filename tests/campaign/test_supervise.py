"""Worker supervision: deaths, timeouts, backoff, the circuit breaker."""

import math
import multiprocessing
import os
import signal
import time

import pytest

from repro._util import backoff_delay
from repro.campaign.supervise import (CircuitBreaker, Supervisor,
                                      breaker_threshold, cell_timeout)


CTX = multiprocessing.get_context("fork")

#: Fast retry schedule so the tests never sleep for real backoff.
FAST = {"backoff_base": 0.01, "backoff_cap": 0.05}


def runner(key):
    return 1000.0 / key


def collect(supervisor, work):
    """Drive the supervisor; returns ``(values, errors, interrupted)``."""
    values, errors = {}, {}

    def on_result(key, value, error):
        values[key] = value
        if error is not None:
            errors[key] = error

    interrupted = supervisor.run(work, on_result)
    return values, errors, interrupted


class TestHappyPath:
    def test_results_keyed_not_ordered(self):
        sup = Supervisor(runner, CTX, jobs=3, **FAST)
        values, errors, interrupted = collect(sup, [1, 2, 4, 5, 8])
        assert values == {k: runner(k) for k in [1, 2, 4, 5, 8]}
        assert errors == {} and not interrupted
        assert sup.stats.workers_spawned <= 3
        assert sup.stats.worker_deaths == 0

    def test_worker_exceptions_are_isolated(self):
        def flaky(key):
            if key == 2:
                raise RuntimeError("injected")
            return runner(key)

        sup = Supervisor(flaky, CTX, jobs=2, **FAST)
        values, errors, _ = collect(sup, [1, 2, 4])
        assert math.isnan(values[2])
        assert "injected" in errors[2]
        assert values[1] == runner(1)


class TestWorkerDeath:
    def test_sigkilled_worker_is_requeued_and_replaced(self, tmp_path):
        marker = str(tmp_path / "killed-once")

        def suicidal(key):
            if key == 5:
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL)
                except FileExistsError:
                    pass  # already died once: succeed this time
                else:
                    os.close(fd)
                    os.kill(os.getpid(), signal.SIGKILL)
            return runner(key)

        sup = Supervisor(suicidal, CTX, jobs=2, **FAST)
        values, errors, _ = collect(sup, [1, 5])
        assert errors == {}
        assert values == {1: runner(1), 5: runner(5)}
        assert sup.stats.worker_deaths == 1
        assert sup.stats.requeues == 1
        assert sup.stats.retries == 0  # a death never burns retry budget

    def test_repeat_killer_fails_after_requeue_limit(self):
        def always_dies(key):
            os.kill(os.getpid(), signal.SIGKILL)

        sup = Supervisor(always_dies, CTX, jobs=1, requeue_limit=1, **FAST)
        values, errors, _ = collect(sup, [3])
        assert math.isnan(values[3])
        assert "worker died 2 time(s)" in errors[3]
        assert sup.stats.worker_deaths == 2
        assert sup.stats.requeues == 1


class TestTimeout:
    def test_hung_cell_is_killed_and_retried(self, tmp_path):
        marker = str(tmp_path / "hung-once")

        def hangs_once(key):
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                return runner(key)
            os.close(fd)
            time.sleep(3600)

        sup = Supervisor(hangs_once, CTX, jobs=1, retries=1, timeout=0.5,
                         **FAST)
        values, errors, _ = collect(sup, [4])
        assert errors == {}
        assert values[4] == runner(4)
        assert sup.stats.timeouts == 1
        assert sup.stats.retries == 1  # a timeout does burn an attempt

    def test_timeout_without_retries_records_error(self):
        def hangs(key):
            time.sleep(3600)

        sup = Supervisor(hangs, CTX, jobs=1, retries=0, timeout=0.3, **FAST)
        values, errors, _ = collect(sup, [7])
        assert math.isnan(values[7])
        assert "REPRO_CELL_TIMEOUT" in errors[7]

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
        assert cell_timeout() is None
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "0")
        assert cell_timeout() is None
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        assert cell_timeout() == 2.5
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "nope")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT"):
            cell_timeout()


class TestBackoff:
    def test_pure_function_of_token_and_attempt(self):
        assert backoff_delay("cell-a", 1) == backoff_delay("cell-a", 1)
        assert backoff_delay("cell-a", 1) != backoff_delay("cell-b", 1)

    def test_exponential_and_capped(self):
        base, cap = 0.05, 2.0
        delays = [backoff_delay("x", a, base=base, cap=cap)
                  for a in range(1, 12)]
        assert all(base <= d <= cap for d in delays)
        assert delays[-1] == cap  # attempt 11 is far past the cap


class TestCircuitBreaker:
    def test_opens_on_kth_consecutive_failure(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # the K-th one opens it
        assert breaker.admit() != "run"

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # streak restarted
        assert breaker.admit() == "run"

    def test_probe_every_nth_candidate(self):
        breaker = CircuitBreaker(threshold=1, probe_every=3)
        breaker.record_failure()
        verdicts = [breaker.admit() for _ in range(6)]
        assert verdicts == ["short", "short", "probe",
                            "short", "short", "probe"]

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, probe_every=1)
        breaker.record_failure()
        assert breaker.admit() == "probe"
        assert breaker.record_success()  # True = this closed it
        assert breaker.admit() == "run"

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(50):
            breaker.record_failure()
        assert breaker.admit() == "run"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BREAKER_THRESHOLD", raising=False)
        assert breaker_threshold() == 25
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0")
        assert breaker_threshold() == 0


class TestBreakerIntegration:
    def test_sick_family_short_circuits_healthy_family_unaffected(self):
        def split(key):
            if key < 0:
                raise RuntimeError("sick family")
            return runner(key)

        work = [-1, -2, -3, -4, -5, -6, 1, 2]
        sup = Supervisor(split, CTX, jobs=1, threshold=3,
                         family_for=lambda k: "sick" if k < 0 else "ok",
                         **FAST)
        values, errors, _ = collect(sup, work)
        assert sup.stats.breaker_opens == 1
        assert sup.stats.short_circuited >= 1
        short = [e for e in errors.values() if "circuit breaker open" in e]
        assert len(short) == sup.stats.short_circuited
        # The healthy family never sees the sick family's breaker.
        assert values[1] == runner(1) and values[2] == runner(2)

    def test_probe_success_closes_and_recovers(self, tmp_path):
        sick = str(tmp_path / "sick")
        open(sick, "w").close()

        def recovering(key):
            if os.path.exists(sick) and key in (10, 20):
                raise RuntimeError("still sick")
            if key == 30:
                os.remove(sick)  # the service heals mid-campaign
            return runner(key)

        # threshold 2, probe_every 1: keys 10/20 fail and open the
        # breaker, 30 runs as a probe (healing the family), so 40 runs
        # normally after the close.
        sup = Supervisor(recovering, CTX, jobs=1, threshold=2,
                         probe_every=1, **FAST)
        values, errors, _ = collect(sup, [10, 20, 30, 40])
        assert sup.stats.breaker_opens == 1
        assert sup.stats.breaker_closes == 1
        assert values[30] == runner(30) and values[40] == runner(40)


class TestInterrupt:
    def test_first_interrupt_drains_and_reports(self):
        fired = {"n": 0}
        values = {}

        def on_result(key, value, error):
            values[key] = value
            fired["n"] += 1
            if fired["n"] == 1:
                raise KeyboardInterrupt

        def slow(key):
            time.sleep(0.05)
            return runner(key)

        sup = Supervisor(slow, CTX, jobs=2, **FAST)
        interrupted = sup.run([1, 2, 4, 5, 8, 13], on_result)
        assert interrupted
        # Partial: the first cell plus at most the drained in-flight ones.
        assert 1 <= len(values) < 6
        assert all(values[k] == runner(k) for k in values)

    def test_second_interrupt_aborts_hard(self):
        def on_result(key, value, error):
            raise KeyboardInterrupt

        def slow(key):
            time.sleep(0.05)
            return runner(key)

        sup = Supervisor(slow, CTX, jobs=2, **FAST)
        with pytest.raises(KeyboardInterrupt):
            sup.run([1, 2, 4, 5, 8, 13], on_result)
        assert sup.interrupted

    def test_workers_are_reaped_after_run(self):
        sup = Supervisor(runner, CTX, jobs=2, **FAST)
        collect(sup, [1, 2, 4])
        assert sup.pids() == []
