"""Parallel executor: parity, retries, store short-circuit, Ctrl-C API."""

import math

import pytest

from repro.campaign.executor import ExecutionReport, default_jobs, execute
from repro.campaign.store import ResultStore


def runner(key):
    """Deterministic synthetic cell: pure function of its key."""
    return 1000.0 / key + key * 0.25


KEYS = [1, 2, 3, 5, 8, 13]


class TestSerial:
    def test_all_cells_computed(self):
        report = execute(runner, KEYS, jobs=1)
        assert report.computed == len(KEYS)
        assert report.failed == 0 and report.hits == 0
        assert report.values == {k: runner(k) for k in KEYS}
        assert not report.interrupted

    def test_on_cell_fires_per_cell(self):
        seen = []
        execute(runner, KEYS, jobs=1, on_cell=lambda k, v: seen.append(k))
        assert seen == KEYS

    def test_empty_keys(self):
        report = execute(runner, [], jobs=1)
        assert report.total == 0
        assert report.hit_rate == 0.0


class TestParallelParity:
    def test_jobs2_bitwise_identical_to_serial(self):
        serial = execute(runner, KEYS, jobs=1)
        parallel = execute(runner, KEYS, jobs=2)
        assert parallel.values == serial.values  # exact float equality
        assert parallel.computed == serial.computed

    def test_jobs_zero_means_cpu_count(self):
        report = execute(runner, KEYS, jobs=0)
        assert report.values == {k: runner(k) for k in KEYS}

    def test_failures_survive_the_pool(self):
        def flaky(key):
            if key == 3:
                raise RuntimeError("injected")
            return runner(key)

        report = execute(flaky, KEYS, jobs=2)
        assert math.isnan(report.values[3])
        assert "injected" in report.errors[3]
        assert report.failed == 1
        assert report.computed == len(KEYS) - 1

    def test_pool_on_error_raise_reports_cell(self):
        def bad(key):
            raise ValueError("nope")

        with pytest.raises(RuntimeError, match="failed after"):
            execute(bad, KEYS, jobs=2, on_error="raise")


class TestRetries:
    def test_flaky_cell_recovers(self):
        attempts = {"n": 0}

        def flaky(key):
            if key == 2:
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise OSError("transient")
            return runner(key)

        report = execute(flaky, KEYS, jobs=1, retries=2)
        assert report.failed == 0
        assert attempts["n"] == 3

    def test_budget_spent_records_nan(self):
        calls = {"n": 0}

        def always(key):
            calls["n"] += 1
            raise RuntimeError("always")

        report = execute(always, [7], jobs=1, retries=2)
        assert calls["n"] == 3
        assert math.isnan(report.values[7])
        assert "always" in report.errors[7]

    def test_serial_raise_propagates_original_exception(self):
        def bad(key):
            raise KeyError("original")

        with pytest.raises(KeyError, match="original"):
            execute(bad, [1], jobs=1, on_error="raise")


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError, match="retries"):
            execute(runner, KEYS, retries=-1)
        with pytest.raises(ValueError, match="on_error"):
            execute(runner, KEYS, on_error="explode")
        with pytest.raises(ValueError, match="jobs"):
            execute(runner, KEYS, jobs=-2)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "x")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-1")
        with pytest.raises(ValueError, match=">= 0"):
            default_jobs()


class TestStoreIntegration:
    def spec_for(self, key):
        return {"panel": "test", "cell": key}

    def test_second_run_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        first = execute(runner, KEYS, jobs=1, store=store,
                        spec_for=self.spec_for)
        assert first.computed == len(KEYS)
        second = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=self.spec_for)
        assert second.hits == len(KEYS)
        assert second.computed == 0
        assert second.hit_rate == 1.0
        assert second.values == first.values

    def test_hits_skip_the_runner(self, tmp_path):
        store = ResultStore(tmp_path)
        execute(runner, KEYS, jobs=1, store=store, spec_for=self.spec_for)
        calls = []

        def spy(key):
            calls.append(key)
            return runner(key)

        execute(spy, KEYS, jobs=1, store=store, spec_for=self.spec_for)
        assert calls == []

    def test_failed_cells_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)

        def flaky(key):
            if key == 2:
                raise RuntimeError("boom")
            return runner(key)

        execute(flaky, KEYS, jobs=1, store=store, spec_for=self.spec_for)
        second = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=self.spec_for)
        assert second.hits == len(KEYS) - 1
        assert second.computed == 1  # the failed cell is retried
        assert not math.isnan(second.values[2])

    def test_parallel_run_hits_serial_store(self, tmp_path):
        store = ResultStore(tmp_path)
        serial = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=self.spec_for)
        warm = execute(runner, KEYS, jobs=2, store=store,
                       spec_for=self.spec_for)
        assert warm.hits == len(KEYS)
        assert warm.values == serial.values


class TestTelemetry:
    def test_cells_counted_by_status(self, tmp_path):
        from repro.obs.metrics import collecting
        store = ResultStore(tmp_path)
        spec_for = lambda k: {"cell": k}  # noqa: E731
        with collecting() as registry:
            def flaky(key):
                if key == 2:
                    raise RuntimeError("boom")
                return runner(key)
            execute(flaky, [1, 2], jobs=1, store=store, spec_for=spec_for,
                    labels_for=lambda k: {"graph": "g", "variant": "v",
                                          "threads": k})
            execute(runner, [1], jobs=1, store=store, spec_for=spec_for)
        snap = registry.snapshot()
        assert snap["campaign.cells{status=computed}"] == 1.0
        assert snap["campaign.cells{status=failed}"] == 1.0
        assert snap["campaign.cells{status=hit}"] == 1.0


class TestReportShape:
    def test_totals_and_hit_rate(self):
        r = ExecutionReport(hits=3, computed=6, failed=1)
        assert r.total == 10
        assert r.hit_rate == pytest.approx(0.3)

    def test_resumed_counts_toward_total(self):
        r = ExecutionReport(hits=1, resumed=2, computed=3)
        assert r.total == 6


class TestWallCounters:
    def test_derived_properties(self):
        r = ExecutionReport(computed=8, failed=2, elapsed=2.0, jobs=4,
                            busy_seconds=6.0, store_gets=10,
                            store_get_seconds=0.5)
        assert r.cells_per_second == pytest.approx(5.0)
        assert r.worker_utilization == pytest.approx(0.75)
        assert r.store_get_latency == pytest.approx(0.05)

    def test_zero_guards(self):
        r = ExecutionReport()
        assert r.cells_per_second == 0.0
        assert r.worker_utilization == 0.0
        assert r.store_get_latency == 0.0

    def test_wall_block_keys(self):
        wall = ExecutionReport(computed=1, elapsed=1.0).wall()
        assert set(wall) == {"elapsed_s", "jobs", "busy_s",
                             "cells_per_second", "worker_utilization",
                             "store_gets", "store_get_latency_s"}

    def test_serial_execute_accrues_wall_time(self):
        report = execute(runner, KEYS, jobs=1)
        assert report.jobs == 1
        assert report.elapsed > 0
        assert 0.0 < report.busy_seconds <= report.elapsed + 0.1
        assert report.cells_per_second > 0
        assert report.store_gets == 0  # no store attached

    def test_store_lookups_timed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec_for = lambda k: {"cell": k}  # noqa: E731
        execute(runner, KEYS, jobs=1, store=store, spec_for=spec_for)
        report = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=spec_for)
        assert report.hits == len(KEYS)
        assert report.store_gets == len(KEYS)
        assert report.store_get_seconds >= 0.0
        assert report.store_get_latency >= 0.0

    def test_pool_busy_seconds_from_supervisor(self):
        report = execute(runner, KEYS, jobs=2)
        assert report.jobs == 2
        assert report.busy_seconds > 0
        assert report.busy_seconds == \
            pytest.approx(report.resilience["busy_seconds"])
        assert 0.0 < report.worker_utilization <= 1.0


class TestInterrupt:
    def test_serial_first_sigint_returns_partial(self):
        def interrupting(key):
            if key == 3:
                raise KeyboardInterrupt
            return runner(key)

        report = execute(interrupting, KEYS, jobs=1)
        assert report.interrupted
        assert report.values == {1: runner(1), 2: runner(2)}
        assert report.elapsed >= 0.0  # the finally path still ran

    def test_pool_first_sigint_drains_and_persists_partial(self, tmp_path):
        import time

        store = ResultStore(tmp_path)
        fired = {"n": 0}

        def on_cell(key, value):
            fired["n"] += 1
            if fired["n"] == 1:
                raise KeyboardInterrupt

        def slow(key):
            time.sleep(0.05)
            return runner(key)

        report = execute(slow, KEYS, jobs=2, on_cell=on_cell, store=store,
                         spec_for=lambda k: {"cell": k})
        assert report.interrupted
        # Partial: at least the interrupting cell, not the whole sweep.
        assert 1 <= len(report.values) < len(KEYS)
        assert all(report.values[k] == runner(k) for k in report.values)
        # Every completed cell was persisted before the drain finished.
        assert all(store.contains({"cell": k}) for k in report.values)

    def test_pool_second_sigint_aborts_hard(self):
        import time

        def on_cell(key, value):
            raise KeyboardInterrupt

        def slow(key):
            time.sleep(0.05)
            return runner(key)

        with pytest.raises(KeyboardInterrupt):
            execute(slow, KEYS, jobs=2, on_cell=on_cell)


class TestResume:
    def test_resumed_cells_skip_the_runner(self):
        calls = []

        def spy(key):
            calls.append(key)
            return runner(key)

        resume = {str(k): runner(k) for k in KEYS[:4]}
        report = execute(spy, KEYS, jobs=1, resume=resume)
        assert calls == KEYS[4:]
        assert report.resumed == 4 and report.computed == 2
        assert report.values == {k: runner(k) for k in KEYS}

    def test_resume_takes_priority_over_store(self, tmp_path):
        store = ResultStore(tmp_path)
        spec_for = lambda k: {"cell": k}  # noqa: E731
        execute(runner, KEYS, jobs=1, store=store, spec_for=spec_for)
        resume = {str(KEYS[0]): -1.0}  # journal says something else
        report = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=spec_for, resume=resume)
        assert report.values[KEYS[0]] == -1.0
        assert report.resumed == 1 and report.hits == len(KEYS) - 1


class TestJournalIntegration:
    def test_journal_records_then_resume_recomputes_nothing(self, tmp_path):
        from repro.campaign.journal import Journal

        journal = Journal.create(tmp_path / "run", run_id="aaaaaaaa-1",
                                 campaign="t", spec={"s": 1},
                                 fingerprint="f")
        with journal:
            def flaky(key):
                if key == 2:
                    raise RuntimeError("boom")
                return runner(key)

            execute(flaky, KEYS, jobs=1, journal=journal)
        state = Journal.open(tmp_path / "run").replay()
        assert state.ended and not state.dropped_tail
        assert set(state.submitted) == {str(k) for k in KEYS}
        assert state.completed == {str(k): runner(k)
                                   for k in KEYS if k != 2}
        assert "boom" in state.failed["2"]

        calls = []

        def spy(key):
            calls.append(key)
            return runner(key)

        second = execute(spy, KEYS, jobs=1, resume=state.completed)
        assert calls == [2]  # only the journaled failure is recomputed
        assert second.resumed == len(KEYS) - 1


class TestProgressEta:
    def line(self, report, total=4):
        import io
        from repro.campaign.executor import _Progress

        meter = _Progress(total, "cells", enabled=True)
        meter.stream = io.StringIO()
        meter.tty = False
        meter.step = 1
        meter.t0 -= 1.0  # pretend a second has elapsed
        meter.update(report)
        return meter.stream.getvalue()

    def test_failed_cells_count_toward_rate(self):
        line = self.line(ExecutionReport(computed=1, failed=1))
        assert "eta -" not in line  # worked=2 over ~1s gives a real ETA

    def test_all_hits_so_far_reads_eta_zero(self):
        line = self.line(ExecutionReport(hits=2))
        assert "eta 0s" in line

    def test_nothing_done_yet_reads_dash(self):
        line = self.line(ExecutionReport(), total=4)
        assert line == "" or "eta -" in line
