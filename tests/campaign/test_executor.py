"""Parallel executor: parity, retries, store short-circuit, Ctrl-C API."""

import math

import pytest

from repro.campaign.executor import ExecutionReport, default_jobs, execute
from repro.campaign.store import ResultStore


def runner(key):
    """Deterministic synthetic cell: pure function of its key."""
    return 1000.0 / key + key * 0.25


KEYS = [1, 2, 3, 5, 8, 13]


class TestSerial:
    def test_all_cells_computed(self):
        report = execute(runner, KEYS, jobs=1)
        assert report.computed == len(KEYS)
        assert report.failed == 0 and report.hits == 0
        assert report.values == {k: runner(k) for k in KEYS}
        assert not report.interrupted

    def test_on_cell_fires_per_cell(self):
        seen = []
        execute(runner, KEYS, jobs=1, on_cell=lambda k, v: seen.append(k))
        assert seen == KEYS

    def test_empty_keys(self):
        report = execute(runner, [], jobs=1)
        assert report.total == 0
        assert report.hit_rate == 0.0


class TestParallelParity:
    def test_jobs2_bitwise_identical_to_serial(self):
        serial = execute(runner, KEYS, jobs=1)
        parallel = execute(runner, KEYS, jobs=2)
        assert parallel.values == serial.values  # exact float equality
        assert parallel.computed == serial.computed

    def test_jobs_zero_means_cpu_count(self):
        report = execute(runner, KEYS, jobs=0)
        assert report.values == {k: runner(k) for k in KEYS}

    def test_failures_survive_the_pool(self):
        def flaky(key):
            if key == 3:
                raise RuntimeError("injected")
            return runner(key)

        report = execute(flaky, KEYS, jobs=2)
        assert math.isnan(report.values[3])
        assert "injected" in report.errors[3]
        assert report.failed == 1
        assert report.computed == len(KEYS) - 1

    def test_pool_on_error_raise_reports_cell(self):
        def bad(key):
            raise ValueError("nope")

        with pytest.raises(RuntimeError, match="failed after"):
            execute(bad, KEYS, jobs=2, on_error="raise")


class TestRetries:
    def test_flaky_cell_recovers(self):
        attempts = {"n": 0}

        def flaky(key):
            if key == 2:
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise OSError("transient")
            return runner(key)

        report = execute(flaky, KEYS, jobs=1, retries=2)
        assert report.failed == 0
        assert attempts["n"] == 3

    def test_budget_spent_records_nan(self):
        calls = {"n": 0}

        def always(key):
            calls["n"] += 1
            raise RuntimeError("always")

        report = execute(always, [7], jobs=1, retries=2)
        assert calls["n"] == 3
        assert math.isnan(report.values[7])
        assert "always" in report.errors[7]

    def test_serial_raise_propagates_original_exception(self):
        def bad(key):
            raise KeyError("original")

        with pytest.raises(KeyError, match="original"):
            execute(bad, [1], jobs=1, on_error="raise")


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError, match="retries"):
            execute(runner, KEYS, retries=-1)
        with pytest.raises(ValueError, match="on_error"):
            execute(runner, KEYS, on_error="explode")
        with pytest.raises(ValueError, match="jobs"):
            execute(runner, KEYS, jobs=-2)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "x")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-1")
        with pytest.raises(ValueError, match=">= 0"):
            default_jobs()


class TestStoreIntegration:
    def spec_for(self, key):
        return {"panel": "test", "cell": key}

    def test_second_run_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        first = execute(runner, KEYS, jobs=1, store=store,
                        spec_for=self.spec_for)
        assert first.computed == len(KEYS)
        second = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=self.spec_for)
        assert second.hits == len(KEYS)
        assert second.computed == 0
        assert second.hit_rate == 1.0
        assert second.values == first.values

    def test_hits_skip_the_runner(self, tmp_path):
        store = ResultStore(tmp_path)
        execute(runner, KEYS, jobs=1, store=store, spec_for=self.spec_for)
        calls = []

        def spy(key):
            calls.append(key)
            return runner(key)

        execute(spy, KEYS, jobs=1, store=store, spec_for=self.spec_for)
        assert calls == []

    def test_failed_cells_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)

        def flaky(key):
            if key == 2:
                raise RuntimeError("boom")
            return runner(key)

        execute(flaky, KEYS, jobs=1, store=store, spec_for=self.spec_for)
        second = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=self.spec_for)
        assert second.hits == len(KEYS) - 1
        assert second.computed == 1  # the failed cell is retried
        assert not math.isnan(second.values[2])

    def test_parallel_run_hits_serial_store(self, tmp_path):
        store = ResultStore(tmp_path)
        serial = execute(runner, KEYS, jobs=1, store=store,
                         spec_for=self.spec_for)
        warm = execute(runner, KEYS, jobs=2, store=store,
                       spec_for=self.spec_for)
        assert warm.hits == len(KEYS)
        assert warm.values == serial.values


class TestTelemetry:
    def test_cells_counted_by_status(self, tmp_path):
        from repro.obs.metrics import collecting
        store = ResultStore(tmp_path)
        spec_for = lambda k: {"cell": k}  # noqa: E731
        with collecting() as registry:
            def flaky(key):
                if key == 2:
                    raise RuntimeError("boom")
                return runner(key)
            execute(flaky, [1, 2], jobs=1, store=store, spec_for=spec_for,
                    labels_for=lambda k: {"graph": "g", "variant": "v",
                                          "threads": k})
            execute(runner, [1], jobs=1, store=store, spec_for=spec_for)
        snap = registry.snapshot()
        assert snap["campaign.cells{status=computed}"] == 1.0
        assert snap["campaign.cells{status=failed}"] == 1.0
        assert snap["campaign.cells{status=hit}"] == 1.0


class TestReportShape:
    def test_totals_and_hit_rate(self):
        r = ExecutionReport(hits=3, computed=6, failed=1)
        assert r.total == 10
        assert r.hit_rate == pytest.approx(0.3)
