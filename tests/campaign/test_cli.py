"""``repro campaign`` CLI: run/status/cache, warm-store determinism."""

import json

import pytest

from repro.campaign.cli import main


SPEC = {"name": "cli-test", "experiment": "coloring",
        "graphs": ["auto"], "variants": ["OpenMP-dynamic"],
        "threads": [1, 11], "seeds": [0],
        "params": {"ordering": "natural"}}


@pytest.fixture
def spec_file(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


class TestRun:
    def test_cold_then_warm_is_all_hits_and_byte_identical(
            self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        args = ["run", str(spec_file), "--store", store, "--quiet",
                "--retries", "0"]
        out1, sum1 = tmp_path / "r1.json", tmp_path / "s1.json"
        out2, sum2 = tmp_path / "r2.json", tmp_path / "s2.json"

        assert main(args + ["--output", str(out1),
                            "--summary", str(sum1)]) == 0
        assert main(args + ["--output", str(out2),
                            "--summary", str(sum2)]) == 0

        s1, s2 = json.loads(sum1.read_text()), json.loads(sum2.read_text())
        assert s1["computed"] == 2 and s1["hits"] == 0
        assert s2["hits"] == s2["cells_total"] == 2
        assert s2["computed"] == 0
        assert s2["hit_rate"] == 1.0
        assert out1.read_bytes() == out2.read_bytes()

    def test_results_payload_shape(self, tmp_path, spec_file):
        out = tmp_path / "r.json"
        assert main(["run", str(spec_file), "--store",
                     str(tmp_path / "store"), "--quiet",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["campaign"] == "cli-test"
        assert payload["spec"]["experiment"] == "coloring"
        assert len(payload["results"]) == 2
        for entry in payload["results"].values():
            assert entry["cycles"] > 0
            assert "error" not in entry

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({**SPEC, "experiment": "nope"}))
        assert main(["run", str(bad), "--store",
                     str(tmp_path / "store")]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "none.json"), "--store",
                     str(tmp_path / "store")]) == 2


class TestStatus:
    def test_pending_then_cached(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        assert main(["status", str(spec_file), "--store", store]) == 0
        assert "2 cell(s), 0 cached, 2 pending" in capsys.readouterr().out
        main(["run", str(spec_file), "--store", store, "--quiet"])
        capsys.readouterr()
        assert main(["status", str(spec_file), "--store", store]) == 0
        assert "2 cached, 0 pending" in capsys.readouterr().out


class TestWallCounters:
    def test_summary_and_status_surface_wall_block(self, tmp_path,
                                                   spec_file, capsys):
        store = str(tmp_path / "store")
        summary = tmp_path / "s.json"
        assert main(["run", str(spec_file), "--store", store, "--quiet",
                     "--summary", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "cells/s" in out and "utilization" in out
        wall = json.loads(summary.read_text())["wall"]
        assert wall["cells_per_second"] > 0
        assert 0.0 < wall["worker_utilization"] <= 1.0
        assert wall["store_gets"] == 2
        # status reports the persisted counters of the last run
        assert main(["status", str(spec_file), "--store", store]) == 0
        status_out = capsys.readouterr().out
        assert "last run" in status_out and "cells/s" in status_out

    def test_status_without_runs_omits_wall_line(self, tmp_path, spec_file,
                                                 capsys):
        assert main(["status", str(spec_file), "--store",
                     str(tmp_path / "store")]) == 0
        assert "last run" not in capsys.readouterr().out


class TestResume:
    def test_run_then_resume_recomputes_nothing(self, tmp_path, spec_file,
                                                capsys):
        store = str(tmp_path / "store")
        sum1, sum2 = tmp_path / "s1.json", tmp_path / "s2.json"
        out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
        assert main(["run", str(spec_file), "--store", store, "--quiet",
                     "--summary", str(sum1), "--output", str(out1)]) == 0
        run_id = json.loads(sum1.read_text())["run_id"]
        assert "resume with: repro campaign resume" in \
            capsys.readouterr().out

        assert main(["resume", run_id, "--store", store, "--quiet",
                     "--summary", str(sum2), "--output", str(out2)]) == 0
        s2 = json.loads(sum2.read_text())
        assert s2["resumed"] == 2
        assert s2["computed"] == 0 and s2["hits"] == 0
        assert s2["run_id"] == run_id
        # The resumed run regenerates the exact same results artifact.
        assert out1.read_bytes() == out2.read_bytes()

    def test_unknown_run_id_exits_2(self, tmp_path, capsys):
        assert main(["resume", "deadbeef-1", "--store",
                     str(tmp_path / "store")]) == 2
        assert "no journal for run" in capsys.readouterr().err

    def test_stale_fingerprint_refused(self, tmp_path, spec_file, capsys):
        from repro.campaign.journal import Journal, journal_dir
        from repro.campaign.spec import CampaignSpec

        store = str(tmp_path / "store")
        spec = CampaignSpec.from_file(str(spec_file))
        run_id = "12345678-1"
        Journal.create(journal_dir(store, run_id), run_id=run_id,
                       campaign=spec.name, spec=spec.to_dict(),
                       fingerprint="0" * 16).close()
        assert main(["resume", run_id, "--store", store]) == 2
        assert "stale" in capsys.readouterr().err


class TestCacheVerify:
    def corrupt_one(self, store_dir):
        import os
        objects = os.path.join(store_dir, "objects")
        prefix = sorted(os.listdir(objects))[0]
        subdir = os.path.join(objects, prefix)
        path = os.path.join(subdir, sorted(os.listdir(subdir))[0])
        with open(path, "a") as fh:
            fh.write("garbage")
        return path

    def test_verify_flags_corruption_then_repairs(self, tmp_path,
                                                  spec_file, capsys):
        store = str(tmp_path / "store")
        main(["run", str(spec_file), "--store", store, "--quiet"])
        capsys.readouterr()

        assert main(["cache", "verify", "--store", store]) == 0
        assert "2 ok, 0 corrupt" in capsys.readouterr().out

        self.corrupt_one(store)
        assert main(["cache", "verify", "--store", store]) == 1
        out = capsys.readouterr().out
        assert "1 ok, 1 corrupt" in out and "--repair" in out

        assert main(["cache", "verify", "--repair", "--store", store]) == 0
        assert "1 quarantined" in capsys.readouterr().out
        assert main(["cache", "verify", "--store", store]) == 0


class TestCache:
    def test_stats_ls_gc_clear(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        main(["run", str(spec_file), "--store", store, "--quiet"])
        capsys.readouterr()

        assert main(["cache", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 object(s)" in out and "2 current" in out

        assert main(["cache", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "coloring/auto/OpenMP-dynamic@1" in out

        assert main(["cache", "gc", "--store", store]) == 0
        assert "removed 0 object(s), kept 2" in capsys.readouterr().out

        assert main(["cache", "clear", "--store", store]) == 0
        assert "removed 2 object(s)" in capsys.readouterr().out
