"""Crash-safe journal: WAL roundtrip, corruption handling, run IDs."""

import os

import pytest

from repro.campaign.journal import (JOURNAL_FILENAME, Journal, JournalError,
                                    journal_dir, list_runs, new_run_id)


SPEC = {"name": "j-test", "experiment": "coloring", "graphs": ["auto"],
        "variants": ["OpenMP-dynamic"], "threads": [1], "seeds": [0]}


def make(tmp_path, run_id="abcd1234-1"):
    return Journal.create(tmp_path / run_id, run_id=run_id,
                          campaign="j-test", spec=SPEC, fingerprint="f" * 16)


class TestRoundtrip:
    def test_full_lifecycle_replays(self, tmp_path):
        with make(tmp_path) as journal:
            journal.submitted("cell-a")
            journal.submitted("cell-b")
            journal.completed("cell-a", 123.5)
            journal.failed("cell-b", "RuntimeError: boom")
            journal.end(interrupted=False)
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.run_id == "abcd1234-1"
        assert state.campaign == "j-test"
        assert state.spec == SPEC
        assert state.fingerprint == "f" * 16
        assert state.completed == {"cell-a": 123.5}
        assert state.failed == {"cell-b": "RuntimeError: boom"}
        assert state.submitted == ["cell-a", "cell-b"]
        assert state.ended
        assert not state.dropped_tail and state.corrupt_at is None

    def test_completed_overrides_earlier_failure(self, tmp_path):
        with make(tmp_path) as journal:
            journal.failed("cell-a", "transient")
            journal.completed("cell-a", 7.0)
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.completed == {"cell-a": 7.0}
        assert state.failed == {}

    def test_values_roundtrip_exactly(self, tmp_path):
        value = 1234.5678901234567  # full float64 precision
        with make(tmp_path) as journal:
            journal.completed("cell-a", value)
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.completed["cell-a"] == value


class TestCorruption:
    def path(self, tmp_path):
        return tmp_path / "abcd1234-1" / JOURNAL_FILENAME

    def test_truncated_final_line_is_dropped(self, tmp_path):
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
            journal.completed("cell-b", 2.0)
        # Simulate a kill -9 mid-append: a partial line with no newline.
        with open(self.path(tmp_path), "a", encoding="utf-8") as fh:
            fh.write('{"type": "completed", "cell": "cell-c", "va')
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.dropped_tail
        assert state.corrupt_at is None
        assert state.completed == {"cell-a": 1.0, "cell-b": 2.0}

    def test_midfile_corruption_stops_replay(self, tmp_path):
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
            journal.completed("cell-b", 2.0)
            journal.end()
        lines = self.path(tmp_path).read_text().splitlines()
        lines[2] = lines[2].replace('"cell-b"', '"cell-X"')  # breaks crc
        self.path(tmp_path).write_text("\n".join(lines) + "\n")
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.corrupt_at == 3
        # Everything after the bad record is conservatively dropped.
        assert state.completed == {"cell-a": 1.0}
        assert not state.ended

    def test_checksum_catches_value_tamper(self, tmp_path):
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
            journal.end()
        text = self.path(tmp_path).read_text()
        assert "1.0" in text
        self.path(tmp_path).write_text(text.replace("1.0", "9.0"))
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.corrupt_at == 2
        assert state.completed == {}

    def test_no_begin_record_raises(self, tmp_path):
        os.makedirs(tmp_path / "abcd1234-1")
        self.path(tmp_path).write_text("garbage\n")
        with pytest.raises(JournalError, match="begin"):
            Journal.open(tmp_path / "abcd1234-1").replay()

    def test_unterminated_final_line_is_a_torn_tail(self, tmp_path):
        # Even when the bytes verify, a line without its newline is an
        # append that was never known to finish — trusting it would let
        # the next append land mid-line.
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
            journal.completed("cell-b", 2.0)
        raw = self.path(tmp_path).read_bytes()
        assert raw.endswith(b"\n")
        self.path(tmp_path).write_bytes(raw[:-1])
        state = Journal.open(tmp_path / "abcd1234-1").replay()
        assert state.dropped_tail
        assert state.completed == {"cell-a": 1.0}


class TestRepair:
    def path(self, tmp_path):
        return tmp_path / "abcd1234-1" / JOURNAL_FILENAME

    def test_repair_is_noop_on_clean_journal(self, tmp_path):
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
        journal = Journal.open(tmp_path / "abcd1234-1")
        state = journal.replay()
        assert state.valid_bytes == os.path.getsize(self.path(tmp_path))
        assert journal.repair(state) is False

    def test_append_after_torn_tail_survives_next_replay(self, tmp_path):
        # The kill -9 double-restart scenario: a torn tail, then an
        # append, then another replay.  Without repair the append merges
        # with the partial bytes into one mid-file corrupt line and
        # every later record is discarded.
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
        with open(self.path(tmp_path), "a", encoding="utf-8") as fh:
            fh.write('{"type": "completed", "cell": "cell-b", "va')
        journal = Journal.open(tmp_path / "abcd1234-1")
        state = journal.replay()
        assert state.dropped_tail
        assert journal.repair(state) is True
        with journal:
            journal.completed("cell-c", 3.0)
            journal.end()
        fresh = Journal.open(tmp_path / "abcd1234-1").replay()
        assert fresh.completed == {"cell-a": 1.0, "cell-c": 3.0}
        assert fresh.ended
        assert not fresh.dropped_tail and fresh.corrupt_at is None

    def test_repair_truncates_past_midfile_corruption(self, tmp_path):
        # Records behind a mid-file corruption are already ignored by
        # replay; repair makes the file agree so appends are replayable.
        with make(tmp_path) as journal:
            journal.completed("cell-a", 1.0)
            journal.completed("cell-b", 2.0)
        lines = self.path(tmp_path).read_text().splitlines()
        lines[1] = lines[1].replace('"cell-a"', '"cell-X"')  # breaks crc
        self.path(tmp_path).write_text("\n".join(lines) + "\n")
        journal = Journal.open(tmp_path / "abcd1234-1")
        state = journal.replay()
        assert state.corrupt_at == 2
        assert journal.repair(state) is True
        with journal:
            journal.completed("cell-d", 4.0)
        fresh = Journal.open(tmp_path / "abcd1234-1").replay()
        assert fresh.completed == {"cell-d": 4.0}
        assert fresh.corrupt_at is None

    def test_repair_refuses_after_append(self, tmp_path):
        journal = make(tmp_path)
        with journal:
            journal.completed("cell-a", 1.0)
            with pytest.raises(JournalError, match="before the first"):
                journal.repair()


class TestConstruction:
    def test_create_refuses_existing(self, tmp_path):
        make(tmp_path).close()
        with pytest.raises(JournalError, match="already exists"):
            make(tmp_path)

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            Journal.open(tmp_path / "nope-1")


class TestRunIds:
    def test_deterministic_prefix_and_sequence(self, tmp_path):
        root = str(tmp_path)
        first = new_run_id(root, SPEC)
        prefix, seq = first.split("-")
        assert len(prefix) == 8 and seq == "1"
        assert new_run_id(root, SPEC) == first  # nothing allocated yet
        Journal.create(journal_dir(root, first), run_id=first,
                       campaign="j-test", spec=SPEC,
                       fingerprint="f" * 16).close()
        assert new_run_id(root, SPEC) == f"{prefix}-2"

    def test_sequence_is_global_across_specs(self, tmp_path):
        root = str(tmp_path)
        first = new_run_id(root, SPEC)
        Journal.create(journal_dir(root, first), run_id=first,
                       campaign="j-test", spec=SPEC,
                       fingerprint="f" * 16).close()
        other = new_run_id(root, {**SPEC, "name": "other"})
        assert other.split("-") != first.split("-")
        assert other.endswith("-2")

    def test_list_runs_only_sees_real_journals(self, tmp_path):
        root = str(tmp_path)
        assert list_runs(root) == []
        run = new_run_id(root, SPEC)
        Journal.create(journal_dir(root, run), run_id=run,
                       campaign="j-test", spec=SPEC,
                       fingerprint="f" * 16).close()
        os.makedirs(journal_dir(root, "99999999-9"))  # dir, no journal
        os.makedirs(os.path.join(journal_dir(root), "not-a-run-id"))
        assert list_runs(root) == [run]
