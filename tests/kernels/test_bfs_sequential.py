"""Sequential BFS (Algorithm 6) and the frontier profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, grid2d, star
from repro.kernels.bfs.sequential import (bfs_fifo, bfs_sequential,
                                          frontier_profile)


class TestBfs:
    def test_chain_distances(self):
        d = bfs_sequential(chain(6), 0)
        assert list(d) == [0, 1, 2, 3, 4, 5]

    def test_star_distances(self):
        d = bfs_sequential(star(6), 0)
        assert d[0] == 0
        assert np.all(d[1:] == 1)

    def test_unreachable_minus_one(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3)])
        d = bfs_sequential(g, 0)
        assert list(d) == [0, 1, -1, -1, -1]

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_sequential(chain(4), 4)
        with pytest.raises(ValueError):
            bfs_fifo(chain(4), -1)

    def test_grid_manhattan_distance(self):
        d = bfs_sequential(grid2d(5, 5), 0)
        assert d[4] == 4      # (4, 0)
        assert d[24] == 8     # (4, 4)

    def test_matches_fifo_oracle(self):
        g = erdos_renyi(120, 500, seed=7)
        assert np.array_equal(bfs_sequential(g, 13), bfs_fifo(g, 13))

    def test_triangle_inequality_over_edges(self):
        g = erdos_renyi(100, 350, seed=8)
        d = bfs_sequential(g, 0)
        for u, v in g.edge_array():
            if d[u] >= 0 and d[v] >= 0:
                assert abs(d[u] - d[v]) <= 1


class TestFrontierProfile:
    def test_chain(self):
        widths = frontier_profile(chain(7), 0)
        assert list(widths) == [1] * 7

    def test_total_equals_reachable(self):
        g = erdos_renyi(150, 500, seed=9)
        widths = frontier_profile(g, 10)
        d = bfs_sequential(g, 10)
        assert widths.sum() == (d >= 0).sum()

    def test_complete(self):
        widths = frontier_profile(complete(9), 0)
        assert list(widths) == [1, 8]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(1, [])
        assert list(frontier_profile(g, 0)) == [1]


@given(st.integers(2, 40), st.integers(0, 120), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_property_vectorised_matches_fifo(n, m, seed):
    rng = np.random.default_rng(seed)
    g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
    src = int(rng.integers(n))
    assert np.array_equal(bfs_sequential(g, src), bfs_fifo(g, src))
