"""Validators on adversarial inputs: degenerate graphs, corrupted arrays.

The BFS/colouring validators are the last line of defence for every
kernel and checker test — if they accept garbage, nothing downstream can
be trusted.  This exercises them on the degenerate shapes (empty graph,
isolated vertices, stars) and the corruption patterns (off-by-one
levels, skipped parents, truncated arrays) that a buggy parallel run
would actually produce.
"""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, star
from repro.kernels.bfs.validate import BfsValidationError, validate_bfs
from repro.kernels.coloring.verify import count_conflicts, verify_coloring


def _empty(n=0):
    return CSRGraph.from_edges(n, np.empty((0, 2), dtype=np.int64),
                               name=f"empty{n}")


# --- coloring: degenerate graphs -----------------------------------------

def test_empty_graph_vacuously_colored():
    g = _empty(0)
    assert verify_coloring(g, np.array([], dtype=np.int64))
    assert count_conflicts(g, np.array([], dtype=np.int64)) == 0


def test_single_vertex_one_color():
    g = _empty(1)
    assert verify_coloring(g, np.array([1]))
    assert not verify_coloring(g, np.array([0]))  # uncoloured


def test_isolated_vertices_need_colors_but_never_conflict():
    g = _empty(5)
    assert verify_coloring(g, np.ones(5, dtype=np.int64))
    # Any assignment is conflict-free, but 0 means "uncoloured".
    assert not verify_coloring(g, np.array([1, 1, 0, 1, 1]))
    assert verify_coloring(g, np.array([1, 1, 0, 1, 1]),
                           require_complete=False)


def test_star_two_colors_suffice():
    g = star(8)  # hub 0, leaves 1..7
    colors = np.full(8, 2, dtype=np.int64)
    colors[0] = 1
    assert verify_coloring(g, colors)
    # Hub sharing any leaf's colour breaks every incident edge at once.
    colors[0] = 2
    assert not verify_coloring(g, colors)
    assert count_conflicts(g, colors) == 7


def test_corrupted_single_entry_detected():
    g = complete(6)
    colors = np.arange(1, 7, dtype=np.int64)
    assert verify_coloring(g, colors)
    colors[3] = colors[0]
    assert not verify_coloring(g, colors)
    assert count_conflicts(g, colors) == 1


def test_wrong_length_rejected():
    g = chain(4)
    assert not verify_coloring(g, np.array([1, 2, 1]))
    with pytest.raises(ValueError, match="length"):
        count_conflicts(g, np.array([1, 2, 1]))


# --- BFS: degenerate graphs ----------------------------------------------

def test_bfs_single_vertex():
    g = _empty(1)
    assert validate_bfs(g, 0, np.array([0]))
    with pytest.raises(BfsValidationError):
        validate_bfs(g, 0, np.array([1]))


def test_bfs_isolated_source_leaves_rest_unreached():
    g = _empty(4)
    dist = np.array([-1, 0, -1, -1])
    assert validate_bfs(g, 1, dist)
    # Labelling an unreachable vertex must fail (it has no parent).
    bad = dist.copy()
    bad[3] = 1
    assert not validate_bfs(g, 1, bad, raise_on_error=False)


def test_bfs_star_from_hub_and_leaf():
    g = star(6)
    hub = np.array([0, 1, 1, 1, 1, 1])
    assert validate_bfs(g, 0, hub)
    leaf = np.array([1, 0, 2, 2, 2, 2])
    assert validate_bfs(g, 1, leaf)


def test_bfs_source_out_of_range():
    with pytest.raises(BfsValidationError, match="out of range"):
        validate_bfs(chain(3), 7, np.zeros(3, dtype=np.int64))


# --- BFS: corrupted labellings -------------------------------------------

def test_bfs_wrong_source_distance():
    g = chain(3)
    with pytest.raises(BfsValidationError, match="source"):
        validate_bfs(g, 0, np.array([1, 1, 2]))


def test_bfs_two_roots_rejected():
    g = _empty(2)
    with pytest.raises(BfsValidationError, match="distance 0"):
        validate_bfs(g, 0, np.array([0, 0]))


def test_bfs_level_skip_rejected():
    g = chain(4)
    with pytest.raises(BfsValidationError, match="spans more than one"):
        validate_bfs(g, 0, np.array([0, 1, 3, 4]))


def test_bfs_orphan_level_rejected():
    # Every edge spans <= 1 level, yet vertex 2 (distance 1) has no
    # neighbour one level closer: only the missing-parent rule sees it.
    g = chain(3)
    with pytest.raises(BfsValidationError, match="parent"):
        validate_bfs(g, 0, np.array([0, 1, 1]))


def test_bfs_unreached_neighbour_of_labelled_rejected():
    g = chain(3)
    with pytest.raises(BfsValidationError, match="unlabelled"):
        validate_bfs(g, 0, np.array([0, 1, -1]))


def test_bfs_negative_garbage_rejected():
    g = chain(3)
    with pytest.raises(BfsValidationError, match="below -1"):
        validate_bfs(g, 0, np.array([0, -3, 1]))


def test_bfs_truncated_array_rejected():
    g = chain(4)
    with pytest.raises(BfsValidationError, match="length"):
        validate_bfs(g, 0, np.array([0, 1, 2]))


def test_bfs_raise_on_error_false_returns_false():
    g = chain(3)
    assert validate_bfs(g, 0, np.array([0, 2, 1]),
                        raise_on_error=False) is False
