"""Distance-2 colouring extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, grid2d, star
from repro.kernels.coloring.distance2 import (greedy_distance2_coloring,
                                              verify_distance2_coloring)
from repro.kernels.coloring.sequential import greedy_coloring


class TestDistance2:
    def test_star_needs_n_colors(self):
        """Every pair of leaves is at distance 2 through the hub."""
        n, colors = greedy_distance2_coloring(star(8))
        assert n == 8
        assert verify_distance2_coloring(star(8), colors)

    def test_chain_three_colors(self):
        n, colors = greedy_distance2_coloring(chain(9))
        assert n == 3
        assert verify_distance2_coloring(chain(9), colors)

    def test_complete(self):
        g = complete(6)
        n, colors = greedy_distance2_coloring(g)
        assert n == 6

    def test_grid(self):
        g = grid2d(6, 6)
        n, colors = greedy_distance2_coloring(g)
        assert verify_distance2_coloring(g, colors)
        assert 4 <= n <= g.max_degree ** 2 + 1

    def test_at_least_distance1(self):
        g = grid2d(5, 5)
        n2, _ = greedy_distance2_coloring(g)
        n1, _ = greedy_coloring(g)
        assert n2 >= n1

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(3, [])
        n, colors = greedy_distance2_coloring(g)
        assert n == 1
        assert verify_distance2_coloring(g, colors)

    def test_verifier_rejects_distance2_clash(self):
        g = chain(3)  # 0-1-2: 0 and 2 are distance 2
        bad = np.array([1, 2, 1])
        assert not verify_distance2_coloring(g, bad)
        good = np.array([1, 2, 3])
        assert verify_distance2_coloring(g, good)

    def test_verifier_rejects_incomplete(self):
        assert not verify_distance2_coloring(chain(3), np.array([1, 0, 2]))
        assert not verify_distance2_coloring(chain(3), np.array([1, 2]))

    @given(st.integers(2, 25), st.integers(0, 60), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_always_valid(self, n, m, seed):
        rng = np.random.default_rng(seed)
        g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
        n_colors, colors = greedy_distance2_coloring(g)
        assert verify_distance2_coloring(g, colors)
        assert n_colors <= g.max_degree ** 2 + 1
