"""Jones-Plassmann colouring baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, tube_mesh
from repro.kernels.coloring.jones_plassmann import (jones_plassmann_coloring,
                                                    simulate_jones_plassmann)
from repro.kernels.coloring.verify import verify_coloring


class TestJonesPlassmann:
    def test_valid_coloring(self):
        g = erdos_renyi(120, 500, seed=1)
        n, colors, rounds = jones_plassmann_coloring(g, seed=2)
        assert verify_coloring(g, colors)
        assert n <= g.max_degree + 1
        assert rounds >= 1

    def test_complete_graph_serialises(self):
        g = complete(7)
        n, colors, rounds = jones_plassmann_coloring(g)
        assert n == 7
        assert rounds == 7  # one winner per round

    def test_chain_few_rounds(self):
        n, colors, rounds = jones_plassmann_coloring(chain(100), seed=3)
        assert verify_coloring(chain(100), colors)
        assert n <= 3
        assert rounds < 30  # O(log n)-ish, certainly << n

    def test_deterministic_per_seed(self):
        g = erdos_renyi(60, 200, seed=5)
        a = jones_plassmann_coloring(g, seed=7)
        b = jones_plassmann_coloring(g, seed=7)
        assert np.array_equal(a[1], b[1])

    def test_empty(self):
        n, colors, rounds = jones_plassmann_coloring(CSRGraph.from_edges(0, []))
        assert n == 0 and rounds == 0

    @given(st.integers(2, 40), st.integers(0, 120), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_always_valid(self, n, m, seed):
        rng = np.random.default_rng(seed)
        g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
        n_colors, colors, _ = jones_plassmann_coloring(g, seed=seed)
        assert verify_coloring(g, colors)


class TestSimulatedJonesPlassmann:
    def test_matches_direct_algorithm(self, tiny_machine):
        g = tube_mesh(600, 30, 8, 1.0, 3, seed=4)
        run = simulate_jones_plassmann(g, 4, config=tiny_machine,
                                       cache_scale=0.05, seed=9)
        n, colors, rounds = jones_plassmann_coloring(g, seed=9)
        assert np.array_equal(run.colors, colors)
        assert run.rounds == rounds
        assert run.total_cycles > 0

    def test_more_rounds_than_speculative(self, tiny_machine):
        """JP needs many more rounds than the paper's speculative scheme
        (its advantage is zero conflicts, not fewer rounds)."""
        from repro.kernels.coloring.parallel import parallel_coloring

        g = tube_mesh(900, 45, 10, 1.0, 3, seed=5)
        jp = simulate_jones_plassmann(g, 8, config=tiny_machine,
                                      cache_scale=0.05, seed=1)
        spec_run = parallel_coloring(g, 8, config=tiny_machine,
                                     cache_scale=0.05, seed=1)
        assert jp.rounds > 2 * spec_run.rounds
        assert verify_coloring(g, jp.colors)
