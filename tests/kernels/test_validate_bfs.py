"""Graph500-style BFS validation."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, erdos_renyi, grid2d
from repro.kernels.bfs.sequential import bfs_sequential
from repro.kernels.bfs.validate import BfsValidationError, validate_bfs


class TestValidateBfs:
    def test_accepts_correct_bfs(self):
        for g, src in [(chain(20), 3), (grid2d(5, 5), 12),
                       (erdos_renyi(80, 300, seed=1), 0)]:
            assert validate_bfs(g, src, bfs_sequential(g, src))

    def test_rejects_wrong_source_distance(self):
        g = chain(5)
        d = bfs_sequential(g, 0)
        d[0] = 1
        assert not validate_bfs(g, 0, d, raise_on_error=False)

    def test_rejects_edge_spanning_two_levels(self):
        g = chain(5)
        d = np.array([0, 1, 3, 4, 5])  # edge 1-2 spans levels 1->3
        with pytest.raises(BfsValidationError, match="spans"):
            validate_bfs(g, 0, d)

    def test_rejects_orphan_level(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        d = np.array([0, 1, 2, 2])  # vertex 3 at level 2 but parent at 2
        with pytest.raises(BfsValidationError):
            validate_bfs(g, 0, d)

    def test_rejects_unreached_reachable_vertex(self):
        g = chain(4)
        d = np.array([0, 1, 2, -1])  # 3 is reachable but unlabelled
        with pytest.raises(BfsValidationError, match="unlabelled"):
            validate_bfs(g, 0, d)

    def test_rejects_two_roots(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        d = np.array([0, 1, 0, 1])  # second component wrongly labelled
        with pytest.raises(BfsValidationError, match="distance 0"):
            validate_bfs(g, 0, d)

    def test_rejects_bad_lengths_and_sources(self):
        g = chain(4)
        assert not validate_bfs(g, 0, np.zeros(3), raise_on_error=False)
        assert not validate_bfs(g, 9, np.zeros(4), raise_on_error=False)

    def test_accepts_parallel_variants(self, tiny_machine):
        from repro.kernels.bfs.layered import simulate_bfs
        g = erdos_renyi(150, 600, seed=2)
        for variant in ("openmp-block", "cilk-bag"):
            run = simulate_bfs(g, 4, variant=variant, source=5, block=8,
                               config=tiny_machine, seed=3)
            assert validate_bfs(g, 5, run.dist)
