"""Shared kernel helpers: flat gather and wave partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi
from repro.kernels.base import flat_gather, gather_neighbors, wave_partition
from repro.sim.stats import ChunkExec


class TestFlatGather:
    def test_matches_python_loop(self):
        g = erdos_renyi(50, 200, seed=1)
        verts = np.array([3, 17, 42, 3])
        nbrs, seg = gather_neighbors(g.indptr, g.indices, verts)
        expected = []
        expected_seg = []
        for i, v in enumerate(verts):
            for w in g.neighbors(v):
                expected.append(w)
                expected_seg.append(i)
        assert list(nbrs) == expected
        assert list(seg) == expected_seg

    def test_empty_selection(self):
        g = erdos_renyi(10, 20, seed=2)
        nbrs, seg = gather_neighbors(g.indptr, g.indices,
                                     np.zeros(0, dtype=np.int64))
        assert len(nbrs) == 0 and len(seg) == 0

    def test_isolated_vertices(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(5, [(0, 1)])
        nbrs, seg = gather_neighbors(g.indptr, g.indices, np.array([2, 0, 3]))
        assert list(nbrs) == [1]
        assert list(seg) == [1]

    @given(st.integers(1, 30), st.integers(0, 100), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_segment_lengths(self, n, m, seed):
        rng = np.random.default_rng(seed)
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
        verts = rng.integers(0, n, size=7)
        nbrs, seg = gather_neighbors(g.indptr, g.indices, verts)
        assert len(nbrs) == g.degrees[verts].sum()
        if len(seg):
            counts = np.bincount(seg, minlength=7)
            assert np.array_equal(counts, g.degrees[verts])


class TestWavePartition:
    @staticmethod
    def chunk(lo, start, thread=0):
        return ChunkExec(lo=lo, hi=lo + 1, thread=thread, start=start,
                         end=start + 1.0)

    def test_sorted_by_start(self):
        chunks = [self.chunk(0, 5.0), self.chunk(1, 1.0), self.chunk(2, 3.0)]
        waves = wave_partition(chunks, 2)
        starts = [c.start for w in waves for c in w]
        assert starts == sorted(starts)

    def test_wave_sizes(self):
        chunks = [self.chunk(i, float(i)) for i in range(7)]
        waves = wave_partition(chunks, 3)
        assert [len(w) for w in waves] == [3, 3, 1]

    def test_empty(self):
        assert wave_partition([], 4) == []

    def test_tie_broken_by_thread(self):
        chunks = [self.chunk(0, 1.0, thread=2), self.chunk(1, 1.0, thread=0)]
        waves = wave_partition(chunks, 1)
        assert waves[0][0].thread == 0
