"""Simulated layered parallel BFS (Algorithm 7 + §IV-C variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, erdos_renyi, tube_mesh
from repro.kernels.bfs.layered import BFS_VARIANTS, bfs_parallel, simulate_bfs
from repro.kernels.bfs.sequential import bfs_sequential


@pytest.fixture(scope="module")
def mesh():
    return tube_mesh(1200, 40, 10, 1.0, 3, seed=8)


@pytest.mark.parametrize("variant", BFS_VARIANTS)
@pytest.mark.parametrize("relaxed", [True, False])
@pytest.mark.parametrize("n_threads", [1, 4, 8])
def test_distances_always_exact(mesh, variant, relaxed, n_threads,
                                tiny_machine):
    """The races are benign: every variant labels distances exactly."""
    run = simulate_bfs(mesh, n_threads, variant=variant, relaxed=relaxed,
                       block=8, config=tiny_machine, cache_scale=0.05, seed=1)
    assert np.array_equal(run.dist, bfs_sequential(mesh, mesh.n_vertices // 2))


class TestBehaviour:
    def test_level_count_recorded(self, mesh, tiny_machine):
        run = simulate_bfs(mesh, 4, config=tiny_machine, block=8)
        ref = bfs_sequential(mesh, mesh.n_vertices // 2)
        assert run.n_levels == ref.max() + 1 - 1 + 1  # levels incl. source
        assert len(run.level_spans) == run.n_levels

    def test_single_thread_no_duplicates(self, mesh, tiny_machine):
        run = simulate_bfs(mesh, 1, config=tiny_machine, block=8)
        assert run.duplicates == 0

    def test_locked_never_duplicates(self, mesh, tiny_machine):
        run = simulate_bfs(mesh, 8, relaxed=False, config=tiny_machine,
                           block=8, seed=2)
        assert run.duplicates == 0

    def test_relaxed_faster_than_locked(self, mesh, tiny_machine):
        """§V-D: relaxed queues consistently beat lock-based ones."""
        relaxed = simulate_bfs(mesh, 8, relaxed=True, config=tiny_machine,
                               block=8, seed=2)
        locked = simulate_bfs(mesh, 8, relaxed=False, config=tiny_machine,
                              block=8, seed=2)
        assert relaxed.total_cycles < locked.total_cycles

    def test_sentinels_only_in_block_variants(self, mesh, tiny_machine):
        block = simulate_bfs(mesh, 4, variant="openmp-block",
                             config=tiny_machine, block=8)
        tls = simulate_bfs(mesh, 4, variant="openmp-tls",
                           config=tiny_machine, block=8)
        bag = simulate_bfs(mesh, 4, variant="cilk-bag",
                           config=tiny_machine, block=8)
        assert block.sentinels > 0
        assert tls.sentinels == 0
        assert bag.sentinels == 0

    def test_bag_slower_than_block(self, mesh, tiny_machine):
        """Fig 4(c): the pennant bag scales poorly vs. the block queue."""
        block = simulate_bfs(mesh, 8, variant="openmp-block",
                             config=tiny_machine, block=8, seed=1)
        bag = simulate_bfs(mesh, 8, variant="cilk-bag",
                           config=tiny_machine, block=8, seed=1)
        assert bag.total_cycles > block.total_cycles

    def test_speedup_with_threads(self, mesh, tiny_machine):
        t1 = simulate_bfs(mesh, 1, config=tiny_machine, block=8,
                          cache_scale=0.05).total_cycles
        t8 = simulate_bfs(mesh, 8, config=tiny_machine, block=8,
                          cache_scale=0.05, seed=1).total_cycles
        assert t1 / t8 > 1.5

    def test_deterministic(self, mesh, tiny_machine):
        a = simulate_bfs(mesh, 8, config=tiny_machine, block=8, seed=5)
        b = simulate_bfs(mesh, 8, config=tiny_machine, block=8, seed=5)
        assert a.total_cycles == b.total_cycles
        assert a.duplicates == b.duplicates

    def test_chain_has_no_parallelism(self, tiny_machine):
        """The paper's §III-C extreme case: a chain exposes none."""
        g = chain(300)
        t1 = simulate_bfs(g, 1, source=0, config=tiny_machine,
                          block=8).total_cycles
        t8 = simulate_bfs(g, 8, source=0, config=tiny_machine,
                          block=8, seed=1).total_cycles
        assert t1 / t8 < 1.2

    def test_explicit_source(self, mesh, tiny_machine):
        run = simulate_bfs(mesh, 2, source=0, config=tiny_machine, block=8)
        assert run.dist[0] == 0
        assert np.array_equal(run.dist, bfs_sequential(mesh, 0))

    def test_empty_graph(self, tiny_machine):
        run = simulate_bfs(CSRGraph.from_edges(0, []), 2, config=tiny_machine)
        assert run.n_levels == 0

    def test_invalid_args(self, mesh, tiny_machine):
        with pytest.raises(ValueError, match="variant"):
            simulate_bfs(mesh, 2, variant="magic", config=tiny_machine)
        with pytest.raises(ValueError, match="block"):
            simulate_bfs(mesh, 2, block=0, config=tiny_machine)
        with pytest.raises(ValueError, match="source"):
            simulate_bfs(mesh, 2, source=10**9, config=tiny_machine)

    def test_bfs_parallel_convenience(self, mesh, tiny_machine):
        d = bfs_parallel(mesh, source=3, n_threads=4, config=tiny_machine)
        assert np.array_equal(d, bfs_sequential(mesh, 3))


@given(st.integers(2, 40), st.integers(0, 120), st.integers(0, 10**6),
       st.sampled_from(["openmp-block", "tbb-block", "openmp-tls", "cilk-bag"]),
       st.booleans())
@settings(max_examples=25, deadline=None)
def test_property_exact_on_random_graphs(n, m, seed, variant, relaxed):
    rng = np.random.default_rng(seed)
    g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
    from repro.machine.config import KNF
    machine = KNF.with_(name="t", n_cores=4, smt_per_core=2)
    src = int(rng.integers(n))
    run = simulate_bfs(g, 1 + seed % 8, variant=variant, relaxed=relaxed,
                       source=src, block=4, config=machine, seed=seed)
    assert np.array_equal(run.dist, bfs_sequential(g, src))
