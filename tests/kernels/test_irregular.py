"""Irregular-computation microbenchmark (Algorithm 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, star, tube_mesh
from repro.kernels.irregular import (IrregularRun, irregular_kernel,
                                     simulate_irregular)
from repro.runtime.base import ProgrammingModel, RuntimeSpec


@pytest.fixture(scope="module")
def mesh():
    return tube_mesh(800, 40, 10, 1.0, 3, seed=4)


class TestKernelSemantics:
    def test_uniform_state_fixed_point(self):
        """All-equal states are a fixed point of neighbour averaging."""
        g = complete(6)
        out = irregular_kernel(g, np.full(6, 3.5), iterations=4)
        assert np.allclose(out, 3.5)

    def test_single_average_step(self):
        g = star(4)  # vertex 0 adjacent to 1,2,3
        state = np.array([0.0, 4.0, 4.0, 4.0])
        out = irregular_kernel(g, state, iterations=1)
        assert out[0] == pytest.approx((0 + 12) / 4)  # sum / (deg+1)
        # spokes computed from the ORIGINAL state of vertex 0 (Jacobi)
        assert out[1] == pytest.approx((4 + 0) / 2)

    def test_input_not_modified(self):
        g = chain(5)
        state = np.ones(5)
        irregular_kernel(g, state, iterations=3)
        assert np.all(state == 1.0)

    def test_isolated_vertex_stays(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        out = irregular_kernel(g, np.array([2.0, 2.0, 7.0]), iterations=5)
        assert out[2] == pytest.approx(7.0)

    def test_mean_preserved_on_regular_graph(self):
        """On a d-regular graph averaging preserves the total mean."""
        g = complete(8)  # 7-regular
        rng = np.random.default_rng(0)
        state = rng.random(8)
        out = irregular_kernel(g, state, iterations=3)
        assert out.mean() == pytest.approx(state.mean())

    def test_invalid_args(self):
        g = chain(4)
        with pytest.raises(ValueError):
            irregular_kernel(g, iterations=0)
        with pytest.raises(ValueError):
            irregular_kernel(g, np.ones(3), iterations=1)

    @given(st.integers(2, 30), st.integers(0, 80), st.integers(0, 10**6),
           st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_property_contraction(self, n, m, seed, iters):
        """Averaging never expands the state range."""
        rng = np.random.default_rng(seed)
        g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
        state = rng.uniform(-10, 10, n)
        out = irregular_kernel(g, state, iterations=iters)
        assert out.max() <= state.max() + 1e-9
        assert out.min() >= state.min() - 1e-9


class TestSimulation:
    def test_returns_timing(self, mesh, tiny_machine):
        run = simulate_irregular(mesh, 4, iterations=2, config=tiny_machine)
        assert isinstance(run, IrregularRun)
        assert run.total_cycles > 0
        assert run.iterations == 2

    def test_more_iterations_cost_more(self, mesh, tiny_machine):
        t1 = simulate_irregular(mesh, 4, 1, config=tiny_machine).total_cycles
        t5 = simulate_irregular(mesh, 4, 5, config=tiny_machine).total_cycles
        assert t5 > 3 * t1

    def test_compute_state_flag(self, mesh, tiny_machine):
        run = simulate_irregular(mesh, 2, 2, config=tiny_machine,
                                 compute_state=True)
        assert run.state is not None
        assert np.allclose(run.state,
                           irregular_kernel(mesh, iterations=2))

    def test_speedup_saturates_when_compute_bound(self, mesh, tiny_machine):
        """Fig 3 mechanism: with SMT oversubscription a memory-bound run
        (iter=1 on a shuffled graph) scales past the core count, while a
        compute-bound one (iter=10) caps near it."""
        from repro.graph.reorder import apply_ordering

        smt4 = tiny_machine.with_(smt_per_core=4)
        shuffled = apply_ordering(mesh, "random", seed=2)
        spec = RuntimeSpec(ProgrammingModel.OPENMP, chunk=5)

        def speedup(iters):
            t1 = simulate_irregular(shuffled, 1, iters, spec=spec,
                                    config=smt4,
                                    cache_scale=0.012).total_cycles
            t16 = simulate_irregular(shuffled, 16, iters, spec=spec,
                                     config=smt4,
                                     cache_scale=0.012, seed=1).total_cycles
            return t1 / t16

        assert speedup(1) > 1.3 * speedup(10)
        assert speedup(10) < 3.0 * smt4.n_cores
        assert speedup(1) > smt4.n_cores  # SMT hides the latency

    def test_default_spec(self, mesh, tiny_machine):
        run = simulate_irregular(mesh, 2, 1, spec=None, config=tiny_machine)
        assert run.total_cycles > 0

    def test_empty_graph(self, tiny_machine):
        run = simulate_irregular(CSRGraph.from_edges(0, []), 2, 1,
                                 config=tiny_machine)
        assert run.total_cycles == 0.0
