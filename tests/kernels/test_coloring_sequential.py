"""Sequential greedy colouring (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, grid2d, star
from repro.kernels.coloring.sequential import (greedy_coloring,
                                               greedy_coloring_stamp)
from repro.kernels.coloring.verify import verify_coloring


class TestGreedy:
    def test_chain_two_colors(self):
        n, colors = greedy_coloring(chain(10))
        assert n == 2
        assert verify_coloring(chain(10), colors)

    def test_complete_needs_n(self):
        g = complete(8)
        n, colors = greedy_coloring(g)
        assert n == 8
        assert verify_coloring(g, colors)

    def test_star_two_colors(self):
        n, _ = greedy_coloring(star(20))
        assert n == 2

    def test_bipartite_grid(self):
        g = grid2d(7, 7)
        n, colors = greedy_coloring(g)
        assert n == 2

    def test_at_most_delta_plus_one(self):
        """First Fit never exceeds Δ+1 colours (§III-A)."""
        g = erdos_renyi(150, 900, seed=3)
        n, colors = greedy_coloring(g)
        assert n <= g.max_degree + 1
        assert verify_coloring(g, colors)

    def test_empty_and_isolated(self):
        g = CSRGraph.from_edges(4, [])
        n, colors = greedy_coloring(g)
        assert n == 1
        assert np.all(colors == 1)
        n0, c0 = greedy_coloring(CSRGraph.from_edges(0, []))
        assert n0 == 0 and len(c0) == 0

    def test_order_affects_result(self):
        """For some orderings First Fit is optimal (§III-A property 2):
        a crown graph coloured in natural vs. alternating order."""
        # crown: bipartite K_{3,3} minus perfect matching
        edges = [(i, 3 + j) for i in range(3) for j in range(3) if i != j]
        g = CSRGraph.from_edges(6, edges)
        n_alt, _ = greedy_coloring(g, order=np.array([0, 3, 1, 4, 2, 5]))
        n_nat, _ = greedy_coloring(g, order=np.arange(6))
        assert n_nat == 2  # natural order happens to be optimal here
        assert n_alt >= n_nat

    def test_continuation_with_existing_colors(self):
        g = grid2d(5, 5)
        _, colors = greedy_coloring(g)
        # recolour a few vertices from an existing colouring
        colors[[3, 7, 11]] = 0
        n, colors = greedy_coloring(g, order=np.array([3, 7, 11]),
                                    colors=colors)
        assert verify_coloring(g, colors)

    def test_colors_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            greedy_coloring(chain(5), colors=np.zeros(4, dtype=np.int64))

    def test_many_colors_fallback_path(self):
        """Complete graph larger than the 63-colour bitset limit."""
        g = complete(80)
        n, colors = greedy_coloring(g)
        assert n == 80
        assert verify_coloring(g, colors)


class TestStampVariant:
    @pytest.mark.parametrize("maker,args", [
        (chain, (15,)), (complete, (9,)), (grid2d, (5, 4)),
        (erdos_renyi, (60, 240)), (star, (12,)),
    ])
    def test_matches_bitset_implementation(self, maker, args):
        g = maker(*args)
        n1, c1 = greedy_coloring(g)
        n2, c2 = greedy_coloring_stamp(g)
        assert n1 == n2
        assert np.array_equal(c1, c2)


@given(st.integers(2, 40), st.integers(0, 150), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_greedy_always_valid(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    g = CSRGraph.from_edges(n, edges)
    n_colors, colors = greedy_coloring(g)
    assert verify_coloring(g, colors)
    assert n_colors <= g.max_degree + 1
    assert colors.min() >= 1
