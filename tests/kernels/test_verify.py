"""Colouring validation helpers."""

import numpy as np
import pytest

from repro.graph.generators import chain, complete
from repro.kernels.coloring.verify import count_conflicts, verify_coloring


class TestCountConflicts:
    def test_no_conflicts(self):
        g = chain(4)
        assert count_conflicts(g, np.array([1, 2, 1, 2])) == 0

    def test_counts_each_edge_once(self):
        g = complete(3)
        assert count_conflicts(g, np.array([1, 1, 1])) == 3

    def test_uncolored_never_conflict(self):
        g = chain(3)
        assert count_conflicts(g, np.array([0, 0, 1])) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            count_conflicts(chain(3), np.array([1, 2]))


class TestVerify:
    def test_valid(self):
        assert verify_coloring(chain(5), np.array([1, 2, 1, 2, 1]))

    def test_invalid_adjacent_same(self):
        assert not verify_coloring(chain(3), np.array([1, 1, 2]))

    def test_incomplete_rejected_by_default(self):
        assert not verify_coloring(chain(3), np.array([1, 0, 1]))

    def test_incomplete_allowed_when_partial(self):
        assert verify_coloring(chain(3), np.array([1, 0, 1]),
                               require_complete=False)

    def test_wrong_length(self):
        assert not verify_coloring(chain(3), np.array([1, 2]))
