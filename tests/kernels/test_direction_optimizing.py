"""Direction-optimising BFS extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, erdos_renyi, rmat, star, tube_mesh
from repro.kernels.bfs.direction_optimizing import bfs_direction_optimizing
from repro.kernels.bfs.sequential import bfs_sequential


class TestDirectionOptimizing:
    @pytest.mark.parametrize("maker,args,src", [
        (chain, (50,), 0), (star, (20,), 3), (erdos_renyi, (150, 600), 7),
        (tube_mesh, (800, 40, 8, 1.0, 3), 400), (rmat, (9, 8), 1),
    ])
    def test_exact_distances(self, maker, args, src):
        g = maker(*args)
        r = bfs_direction_optimizing(g, src)
        assert np.array_equal(r.dist, bfs_sequential(g, src))

    def test_chain_stays_top_down(self):
        """Narrow frontiers never trigger the bottom-up switch."""
        r = bfs_direction_optimizing(chain(200), 0)
        assert set(r.directions) == {"top-down"}

    def test_dense_graph_switches(self):
        """A small-diameter dense graph hits the bottom-up regime."""
        g = erdos_renyi(400, 8000, seed=2)
        r = bfs_direction_optimizing(g, 0, alpha=8.0)
        assert "bottom-up" in r.directions

    def test_saves_edge_examinations_when_switching(self):
        g = erdos_renyi(500, 12000, seed=3)
        r = bfs_direction_optimizing(g, 0, alpha=8.0)
        if "bottom-up" in r.directions:
            assert r.edges_examined < r.edges_examined_topdown_only

    def test_disconnected(self):
        g = CSRGraph.from_edges(6, [(0, 1), (3, 4)])
        r = bfs_direction_optimizing(g, 0)
        assert list(r.dist) == [0, 1, -1, -1, -1, -1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bfs_direction_optimizing(chain(4), 9)
        with pytest.raises(ValueError):
            bfs_direction_optimizing(chain(4), 0, alpha=0)
        with pytest.raises(ValueError):
            bfs_direction_optimizing(chain(4), 0, beta=-1)

    @given(st.integers(2, 40), st.integers(0, 150), st.integers(0, 10**6),
           st.floats(0.5, 16.0), st.floats(2.0, 64.0))
    @settings(max_examples=40, deadline=None)
    def test_property_exact_for_any_switching(self, n, m, seed, alpha, beta):
        """Distances are exact regardless of the α/β heuristic."""
        rng = np.random.default_rng(seed)
        g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
        src = int(rng.integers(n))
        r = bfs_direction_optimizing(g, src, alpha=alpha, beta=beta)
        assert np.array_equal(r.dist, bfs_sequential(g, src))
