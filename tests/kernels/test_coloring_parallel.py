"""Iterative parallel speculative colouring (Algorithms 2-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, tube_mesh
from repro.kernels.coloring.parallel import parallel_coloring
from repro.kernels.coloring.sequential import greedy_coloring
from repro.kernels.coloring.verify import verify_coloring
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule, TlsMode)

SPECS = [
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC, chunk=7),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC, chunk=7),
    RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.HOLDER, chunk=7),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE, chunk=7),
]


@pytest.fixture(scope="module")
def mesh():
    return tube_mesh(900, 45, 10, 1.0, 3, seed=6)


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label)
@pytest.mark.parametrize("n_threads", [1, 3, 8])
def test_always_produces_valid_coloring(mesh, spec, n_threads, tiny_machine):
    run = parallel_coloring(mesh, n_threads, spec, tiny_machine,
                            cache_scale=0.05, seed=2)
    assert verify_coloring(mesh, run.colors)
    assert run.n_colors == run.colors.max()
    assert run.conflicts_per_round[-1] == 0


class TestSemantics:
    def test_single_thread_matches_sequential(self, mesh, tiny_machine):
        run = parallel_coloring(mesh, 1, SPECS[0], tiny_machine)
        n_seq, c_seq = greedy_coloring(mesh)
        assert run.n_colors == n_seq
        assert np.array_equal(run.colors, c_seq)
        assert run.rounds == 1
        assert run.conflicts_per_round == [0]

    def test_quality_within_paper_bound(self, mesh, tiny_machine):
        """§V-B: parallel colour counts within ~5% of sequential."""
        n_seq, _ = greedy_coloring(mesh)
        run = parallel_coloring(mesh, 8, SPECS[0], tiny_machine,
                                cache_scale=0.05, seed=1)
        assert run.n_colors <= int(np.ceil(1.25 * n_seq))

    def test_conflicts_grow_with_threads(self, tiny_machine):
        g = tube_mesh(1500, 50, 12, 1.0, 4, seed=9)
        r1 = parallel_coloring(g, 1, SPECS[0], tiny_machine, cache_scale=0.05)
        r8 = parallel_coloring(g, 8, SPECS[0], tiny_machine, cache_scale=0.05,
                               seed=3)
        assert sum(r1.conflicts_per_round) == 0
        assert sum(r8.conflicts_per_round) >= 0
        assert r8.rounds >= r1.rounds

    def test_total_cycles_positive_and_accumulated(self, mesh, tiny_machine):
        run = parallel_coloring(mesh, 4, SPECS[0], tiny_machine, seed=1)
        assert run.total_cycles == pytest.approx(
            sum(s.span for s in run.loop_stats))
        assert len(run.loop_stats) == 2 * run.rounds

    def test_deterministic(self, mesh, tiny_machine):
        a = parallel_coloring(mesh, 8, SPECS[0], tiny_machine, seed=4)
        b = parallel_coloring(mesh, 8, SPECS[0], tiny_machine, seed=4)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.colors, b.colors)

    def test_default_spec_is_openmp(self, mesh, tiny_machine):
        run = parallel_coloring(mesh, 2, None, tiny_machine)
        assert verify_coloring(mesh, run.colors)

    def test_empty_graph(self, tiny_machine):
        run = parallel_coloring(CSRGraph.from_edges(0, []), 2, SPECS[0],
                                tiny_machine)
        assert run.n_colors == 0
        assert run.total_cycles == 0.0

    def test_speedup_with_threads(self, mesh, tiny_machine):
        t1 = parallel_coloring(mesh, 1, SPECS[0], tiny_machine,
                               cache_scale=0.05).total_cycles
        t8 = parallel_coloring(mesh, 8, SPECS[0], tiny_machine,
                               cache_scale=0.05, seed=1).total_cycles
        assert t1 / t8 > 3.0


@given(st.integers(10, 60), st.integers(0, 250), st.integers(0, 10**6),
       st.sampled_from([1, 2, 5, 8]))
@settings(max_examples=25, deadline=None)
def test_property_valid_on_random_graphs(n, m, seed, threads):
    rng = np.random.default_rng(seed)
    g = CSRGraph.from_edges(n, rng.integers(0, n, size=(m, 2)))
    from repro.machine.config import KNF
    machine = KNF.with_(name="t", n_cores=4, smt_per_core=2)
    run = parallel_coloring(g, threads, SPECS[seed % len(SPECS)], machine,
                            cache_scale=0.05, seed=seed)
    assert verify_coloring(g, run.colors)
