"""Pennant bag data structure (Leiserson-Schardl)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.bfs.bag import Bag, Pennant, PennantNode


class TestPennant:
    def test_union_doubles_rank(self):
        a = Pennant(PennantNode([1]), 0)
        b = Pennant(PennantNode([2]), 0)
        c = a.union(b)
        assert c.k == 1
        assert c.n_nodes == 2
        assert sorted(c) == [1, 2]

    def test_union_rank_mismatch(self):
        a = Pennant(PennantNode([1]), 0)
        b = Pennant(PennantNode([2]), 0)
        a.union(b)
        with pytest.raises(ValueError):
            a.union(Pennant(PennantNode([3]), 0))

    def test_split_inverts_union(self):
        a = Pennant(PennantNode([1]), 0)
        b = Pennant(PennantNode([2]), 0)
        c = a.union(b)
        d = c.split()
        assert c.k == 0 and d.k == 0
        assert sorted(list(c) + list(d)) == [1, 2]

    def test_split_rank_zero_rejected(self):
        with pytest.raises(ValueError):
            Pennant(PennantNode([1]), 0).split()

    def test_structure_at_rank_3(self):
        ps = [Pennant(PennantNode([i]), 0) for i in range(8)]
        p = ps[0]
        for k in (1, 2, 4):  # union pairs up to rank 3
            pass
        a = ps[0].union(ps[1])
        b = ps[2].union(ps[3])
        c = ps[4].union(ps[5])
        d = ps[6].union(ps[7])
        ab = a.union(b)
        cd = c.union(d)
        full = ab.union(cd)
        assert full.k == 3
        assert sorted(full) == list(range(8))


class TestBag:
    def test_insert_and_iterate(self):
        bag = Bag(grain=4)
        for i in range(37):
            bag.insert(i)
        assert len(bag) == 37
        assert sorted(bag) == list(range(37))
        bag.check_invariants()

    def test_grain_one_pure_pennants(self):
        bag = Bag(grain=1)
        for i in range(11):
            bag.insert(i)
        bag.check_invariants()
        # 11 = 0b1011: pennants at ranks 0, 1, 3
        ranks = [k for k, p in enumerate(bag.spine) if p is not None]
        assert ranks == [0, 1, 3]

    def test_union_merges_all_elements(self):
        a, b = Bag(grain=3), Bag(grain=3)
        for i in range(10):
            a.insert(i)
        for i in range(10, 25):
            b.insert(i)
        a.union(b)
        assert sorted(a) == list(range(25))
        assert len(b) == 0
        a.check_invariants()

    def test_union_grain_mismatch(self):
        with pytest.raises(ValueError):
            Bag(grain=2).union(Bag(grain=3))

    def test_split_halves(self):
        bag = Bag(grain=1)
        for i in range(64):
            bag.insert(i)
        other = bag.split()
        assert len(bag) + len(other) == 64
        assert abs(len(bag) - len(other)) <= 1
        assert sorted(list(bag) + list(other)) == list(range(64))
        bag.check_invariants()
        other.check_invariants()

    def test_split_empty(self):
        bag = Bag(grain=2)
        other = bag.split()
        assert len(other) == 0

    def test_split_keeps_hopper(self):
        bag = Bag(grain=10)
        for i in range(5):  # all in hopper
            bag.insert(i)
        other = bag.split()
        assert len(other) == 0
        assert len(bag) == 5

    def test_allocation_counting(self):
        bag = Bag(grain=8)
        for i in range(64):
            bag.insert(i)
        assert bag.allocations == 8  # one node per 8 inserts

    def test_invalid_grain(self):
        with pytest.raises(ValueError):
            Bag(grain=0)

    @given(st.lists(st.integers(0, 10**6), max_size=300),
           st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_property_insert_split_union_conserve(self, items, grain):
        bag = Bag(grain=grain)
        for x in items:
            bag.insert(x)
        bag.check_invariants()
        other = bag.split()
        bag.check_invariants()
        other.check_invariants()
        assert len(bag) + len(other) == len(items)
        bag.union(other)
        bag.check_invariants()
        assert sorted(bag) == sorted(items)

    @given(st.lists(st.integers(), max_size=120),
           st.lists(st.integers(), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_union_is_multiset_sum(self, xs, ys):
        a, b = Bag(grain=4), Bag(grain=4)
        for x in xs:
            a.insert(x)
        for y in ys:
            b.insert(y)
        a.union(b)
        assert sorted(a) == sorted(xs + ys)
        a.check_invariants()
