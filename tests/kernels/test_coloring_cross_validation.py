"""Cross-validation of colouring algorithms against each other and
against networkx's greedy colouring."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, grid2d, tube_mesh
from repro.kernels.coloring.jones_plassmann import jones_plassmann_coloring
from repro.kernels.coloring.parallel import parallel_coloring
from repro.kernels.coloring.sequential import greedy_coloring
from repro.kernels.coloring.verify import verify_coloring


class TestCrossAlgorithms:
    @pytest.mark.parametrize("maker,args", [
        (grid2d, (7, 7)), (erdos_renyi, (120, 500)),
        (tube_mesh, (600, 30, 8, 1.0, 3)),
    ])
    def test_all_algorithms_valid_and_comparable(self, maker, args,
                                                 tiny_machine):
        g = maker(*args)
        n_greedy, c_greedy = greedy_coloring(g)
        n_jp, c_jp, _ = jones_plassmann_coloring(g, seed=1)
        run = parallel_coloring(g, 8, config=tiny_machine, cache_scale=0.05)
        for colors in (c_greedy, c_jp, run.colors):
            assert verify_coloring(g, colors)
        # all three land within a 2x colour band of each other
        counts = [n_greedy, n_jp, run.n_colors]
        assert max(counts) <= 2 * min(counts)

    def test_matches_networkx_greedy_count(self):
        """Same strategy (largest-first off? No — natural order) yields
        comparable counts to networkx's greedy with identical order."""
        nx = pytest.importorskip("networkx")
        g = erdos_renyi(80, 320, seed=9)
        ours, colors = greedy_coloring(g)
        ng = nx.Graph(list(map(tuple, g.edge_array())))
        ng.add_nodes_from(range(g.n_vertices))
        theirs = nx.coloring.greedy_color(ng, strategy=lambda G, c: range(80))
        n_theirs = max(theirs.values()) + 1
        assert ours == n_theirs
        # and the assignments agree exactly (same visit order, first fit)
        for v in range(g.n_vertices):
            assert colors[v] - 1 == theirs[v]
