"""Tests for graph property reports (Table I ingredients)."""

import pytest

from repro.graph.generators import chain, complete, grid2d, star
from repro.graph.csr import CSRGraph
from repro.graph.properties import (bfs_levels, connected_components,
                                    graph_properties)


class TestBfsLevels:
    def test_chain_from_middle(self):
        # source 50: levels 0..50 (both arms, longest = 50) -> 51 levels
        assert bfs_levels(chain(101)) == 51

    def test_star(self):
        assert bfs_levels(star(10), source=0) == 2
        assert bfs_levels(star(10), source=3) == 3

    def test_complete(self):
        assert bfs_levels(complete(6)) == 2

    def test_single_vertex(self):
        assert bfs_levels(chain(1)) == 1

    def test_unreachable_not_counted(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        assert bfs_levels(g, source=0) == 2


class TestComponents:
    def test_connected(self):
        assert connected_components(grid2d(4, 4)) == 1

    def test_disconnected(self):
        g = CSRGraph.from_edges(6, [(0, 1), (2, 3)])
        assert connected_components(g) == 4  # {0,1}, {2,3}, {4}, {5}

    def test_empty(self):
        assert connected_components(CSRGraph.from_edges(0, [])) == 0


class TestGraphProperties:
    def test_row_fields(self):
        g = grid2d(5, 5, name="g55")
        p = graph_properties(g)
        assert p.name == "g55"
        assert p.n_vertices == 25
        assert p.n_edges == 40
        assert p.max_degree == 4
        assert p.n_colors == 2  # grid is bipartite; greedy finds 2
        assert p.n_components == 1
        assert p.as_row() == ("g55", 25, 40, 4, 2, p.n_bfs_levels)

    def test_complete_colors(self):
        p = graph_properties(complete(7))
        assert p.n_colors == 7
