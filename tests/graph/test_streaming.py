"""Streaming generation: bit-identical output, bounded peak memory.

The generators were rewritten from "materialize the full (u, v) edge
array, hand it to from_edges" to block-wise emission through
:class:`repro.graphstore.builder.StreamingCSRBuilder`.  Two contracts
guard that rewrite:

* **Parity** — chunked numpy ``Generator`` draws along the first axis
  are bit-identical to one whole-array draw, so every generated graph
  (including the seven committed-baseline suite graphs) must be
  byte-for-byte unchanged, at any block size.
* **Bounded memory** — peak *tracked* allocation no longer scales with
  |E|: the old path held ~56 bytes per directed entry in temporaries;
  the streaming path holds O(n) counters plus O(block) scratch, with
  the bulk data in (untracked, file-backed) temporary files.
"""

import tracemalloc

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, fem_mesh, rmat, tube_mesh

TUBE_PARAMS = dict(section=30, clique=8, cliques_per_vertex=1.0,
                   coupling=3, hubs=4, hub_degree=12, seed=3)


def _hash(graph: CSRGraph) -> bytes:
    import hashlib
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(graph.indptr))
    digest.update(np.ascontiguousarray(graph.indices))
    return digest.digest()


class TestBlockSizeParity:
    """Output must not depend on the block size the builder happens to use."""

    @pytest.mark.parametrize("block", [1024, 4096, 1 << 20])
    def test_tube_mesh(self, block, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(block))
        chunked = tube_mesh(600, **TUBE_PARAMS)
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(1 << 24))
        one_shot = tube_mesh(600, **TUBE_PARAMS)
        assert _hash(chunked) == _hash(one_shot)

    @pytest.mark.parametrize("block", [1024, 1 << 20])
    def test_erdos_renyi(self, block, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(block))
        chunked = erdos_renyi(1500, 6000, seed=5)
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(1 << 24))
        one_shot = erdos_renyi(1500, 6000, seed=5)
        assert _hash(chunked) == _hash(one_shot)

    @pytest.mark.parametrize("block", [1024, 1 << 20])
    def test_fem_mesh(self, block, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(block))
        chunked = fem_mesh(800, elem_size=6, elems_per_vertex=1.5,
                           window=40, hubs=3, hub_degree=20, seed=2)
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(1 << 24))
        one_shot = fem_mesh(800, elem_size=6, elems_per_vertex=1.5,
                            window=40, hubs=3, hub_degree=20, seed=2)
        assert _hash(chunked) == _hash(one_shot)

    @pytest.mark.parametrize("block", [2048, 1 << 20])
    def test_rmat(self, block, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(block))
        chunked = rmat(9, 8, seed=1)
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(1 << 24))
        one_shot = rmat(9, 8, seed=1)
        assert _hash(chunked) == _hash(one_shot)


class TestSuiteGraphsUnchanged:
    """Pinned structural facts the committed baselines depend on.

    These duplicate a slice of tests/graph/test_suite.py on purpose: if
    a builder change ever altered suite-graph structure, this is the
    test whose name says what went wrong.
    """

    def test_pwtk_shape(self):
        from repro.graph.suite import suite_graph
        graph = suite_graph.__wrapped__("pwtk")
        assert graph.n_vertices == 27_125
        from repro.kernels.bfs.sequential import bfs_sequential
        levels = bfs_sequential(graph, 0)
        assert int(levels.max()) + 1 == 526  # pinned: the depth outlier


class TestPeakMemory:
    def test_tracemalloc_regression(self, monkeypatch):
        """Peak tracked allocation stays far below the old edge-array cost.

        The pre-streaming implementation materialised >= 16 bytes x
        directed entries in the (u, v) arrays alone (int64 u and v),
        plus ~40 more in from_edges temporaries.  With a small block,
        the streaming path must stay under that single-array floor.
        """
        n = 40_000
        block = 32_768
        monkeypatch.setenv("REPRO_GRAPH_BLOCK", str(block))
        tracemalloc.start()
        try:
            graph = tube_mesh(n, section=200, clique=8,
                              cliques_per_vertex=1.0, coupling=3,
                              hubs=4, hub_degree=12, seed=3)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        entries = graph.n_directed_entries
        assert entries > 500_000  # big enough that the bound means something
        old_floor = 16 * entries  # just the eager int64 (u, v) endpoints
        assert peak < old_floor, (
            f"peak tracked {peak} bytes >= old edge-array floor "
            f"{old_floor}; streaming regressed to O(|E|) RSS")
        # And the absolute bound: O(n) counters + O(block) scratch.
        budget = 64 * n + 200 * block
        assert peak < budget, f"peak {peak} exceeds O(n + block) budget {budget}"
