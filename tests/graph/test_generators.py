"""Tests for the synthetic graph generators."""

import numpy as np
import pytest
from scipy.sparse.csgraph import connected_components

from repro.graph.generators import (chain, complete, erdos_renyi, fem_mesh,
                                    grid2d, grid3d, random_regular_ish, rmat,
                                    star, tube_mesh)


def n_components(g):
    return connected_components(g.to_scipy(), directed=False)[0]


class TestBasicGenerators:
    def test_chain(self):
        g = chain(7)
        assert g.n_edges == 6
        assert g.max_degree == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(3)) == [2, 4]

    def test_chain_single_vertex(self):
        g = chain(1)
        assert g.n_vertices == 1
        assert g.n_edges == 0

    def test_star(self):
        g = star(9)
        assert g.n_edges == 8
        assert g.degrees[0] == 8
        assert np.all(g.degrees[1:] == 1)

    def test_complete(self):
        g = complete(6)
        assert g.n_edges == 15
        assert np.all(g.degrees == 5)

    def test_grid2d_counts(self):
        g = grid2d(4, 5)
        assert g.n_vertices == 20
        assert g.n_edges == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_grid2d_diagonal(self):
        g = grid2d(3, 3, diagonal=True)
        assert g.has_edge(0, 4)  # (0,0)-(1,1)
        assert g.has_edge(1, 3)  # anti-diagonal

    def test_grid3d_counts(self):
        g = grid3d(3, 3, 3)
        assert g.n_vertices == 27
        assert g.n_edges == 3 * (2 * 3 * 3)

    def test_grid_connected(self):
        assert n_components(grid2d(5, 7)) == 1
        assert n_components(grid3d(3, 4, 2)) == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            chain(0)
        with pytest.raises(ValueError):
            grid2d(0, 3)
        with pytest.raises(ValueError):
            star(-1)


class TestRandomGenerators:
    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(50, 200, seed=4)
        b = erdos_renyi(50, 200, seed=4)
        assert a.structurally_equal(b)

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(50, 200, seed=4)
        b = erdos_renyi(50, 200, seed=5)
        assert not a.structurally_equal(b)

    def test_erdos_renyi_edge_count_near_target(self):
        g = erdos_renyi(1000, 3000, seed=0)
        assert 2500 <= g.n_edges <= 3000

    def test_rmat_size(self):
        g = rmat(8, edge_factor=8, seed=1)
        assert g.n_vertices == 256
        assert g.n_edges > 500

    def test_rmat_skew(self):
        """R-MAT with Graph500 parameters is heavy-tailed."""
        g = rmat(10, edge_factor=8, seed=2)
        assert g.max_degree > 5 * g.average_degree

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            rmat(4, a=0.6, b=0.3, c=0.3)

    def test_random_regular_ish(self):
        g = random_regular_ish(100, 6, seed=3)
        assert abs(g.average_degree - 6) < 1.2


class TestFemMesh:
    def test_deterministic(self):
        a = fem_mesh(500, 8, 2.0, 40, seed=9)
        b = fem_mesh(500, 8, 2.0, 40, seed=9)
        assert a.structurally_equal(b)

    def test_connected_via_spine(self):
        g = fem_mesh(400, 6, 1.5, 30, seed=2)
        assert n_components(g) == 1

    def test_hubs_raise_max_degree(self):
        base = fem_mesh(400, 6, 1.5, 30, seed=2)
        hubbed = fem_mesh(400, 6, 1.5, 30, hubs=2, hub_degree=60, seed=2)
        assert hubbed.max_degree > base.max_degree + 20

    def test_elem_size_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            fem_mesh(4, 10, 1.0, 5)


class TestTubeMesh:
    def test_deterministic(self):
        a = tube_mesh(600, 30, 8, 1.0, 3, seed=7)
        b = tube_mesh(600, 30, 8, 1.0, 3, seed=7)
        assert a.structurally_equal(b)

    def test_connected(self):
        g = tube_mesh(600, 30, 8, 1.0, 3, seed=7)
        assert n_components(g) == 1

    def test_section_controls_bfs_depth(self):
        """Narrower sections -> deeper BFS (the pwtk mechanism)."""
        from repro.kernels.bfs.sequential import bfs_sequential
        deep = tube_mesh(2000, 20, 6, 1.0, 3, seed=1)
        shallow = tube_mesh(2000, 100, 6, 1.0, 3, seed=1)
        d_deep = bfs_sequential(deep, 1000).max()
        d_shallow = bfs_sequential(shallow, 1000).max()
        assert d_deep > 2 * d_shallow

    def test_clique_controls_colors(self):
        from repro.kernels.coloring.sequential import greedy_coloring
        small_c, _ = greedy_coloring(tube_mesh(1000, 50, 5, 1.0, 2, seed=1))
        big_c, _ = greedy_coloring(tube_mesh(1000, 50, 20, 1.0, 2, seed=1))
        assert big_c >= small_c + 8

    def test_coupling_controls_degree(self):
        lo = tube_mesh(1000, 50, 8, 1.0, 2, seed=1)
        hi = tube_mesh(1000, 50, 8, 1.0, 10, seed=1)
        assert hi.average_degree > lo.average_degree + 6

    def test_partial_trailing_section(self):
        """n not divisible by section must not leave a spine-only tail."""
        g = tube_mesh(1015, 100, 10, 1.0, 3, seed=2)
        assert g.n_vertices == 1015
        assert n_components(g) == 1
        # tail vertices must have more than just spine edges
        assert g.degrees[-50:].mean() > 2.5

    def test_clique_exceeding_section_rejected(self):
        with pytest.raises(ValueError):
            tube_mesh(100, 10, 11, 1.0, 2)

    def test_section_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            tube_mesh(50, 100, 5, 1.0, 2)
