"""Tests for vertex reordering."""

import numpy as np
import pytest

from repro.graph.generators import tube_mesh
from repro.graph.reorder import (ORDERINGS, apply_ordering, degree_order,
                                 natural_order, random_order, rcm_order)


@pytest.fixture(scope="module")
def banded():
    return tube_mesh(800, 40, 10, 1.0, 3, seed=5)


def bandwidth(g):
    src = np.repeat(np.arange(g.n_vertices), g.degrees)
    return int(np.abs(src - g.indices).max()) if len(g.indices) else 0


def mean_distance(g):
    src = np.repeat(np.arange(g.n_vertices), g.degrees)
    return float(np.abs(src - g.indices).mean()) if len(g.indices) else 0.0


class TestOrderings:
    def test_natural_is_identity(self, banded):
        assert np.array_equal(natural_order(banded), np.arange(800))
        assert apply_ordering(banded, "natural") is banded

    def test_all_return_permutations(self, banded):
        for name, fn in ORDERINGS.items():
            perm = fn(banded, seed=1)
            assert sorted(perm) == list(range(banded.n_vertices)), name

    def test_random_destroys_locality(self, banded):
        """The paper's §V-B shuffle: breaks the natural band structure."""
        shuffled = apply_ordering(banded, "random", seed=1)
        assert mean_distance(shuffled) > 4 * mean_distance(banded)

    def test_random_deterministic_per_seed(self, banded):
        a = random_order(banded, seed=2)
        b = random_order(banded, seed=2)
        c = random_order(banded, seed=3)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_rcm_reduces_random_bandwidth(self):
        g = tube_mesh(400, 20, 6, 1.0, 2, seed=8)
        shuffled = apply_ordering(g, "random", seed=0)
        rcm = apply_ordering(shuffled, "rcm")
        assert bandwidth(rcm) < bandwidth(shuffled) / 2

    def test_degree_order_puts_hubs_first(self):
        g = tube_mesh(400, 20, 6, 1.0, 2, hubs=2, hub_degree=50, seed=8)
        ordered = apply_ordering(g, "degree")
        assert ordered.degrees[0] == g.max_degree
        assert np.all(np.diff(ordered.degrees) <= 0) or \
            ordered.degrees[0] >= ordered.degrees[-1]

    def test_apply_preserves_structure(self, banded):
        for name in ORDERINGS:
            g2 = apply_ordering(banded, name, seed=4)
            assert g2.n_edges == banded.n_edges
            assert sorted(g2.degrees) == sorted(banded.degrees)

    def test_unknown_ordering_rejected(self, banded):
        with pytest.raises(ValueError, match="unknown ordering"):
            apply_ordering(banded, "zigzag")
