"""Extended property metrics: bandwidth, envelope, locality."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, grid2d, tube_mesh
from repro.graph.properties import (bandwidth, degree_histogram,
                                    envelope_profile, locality_summary)
from repro.graph.reorder import apply_ordering


class TestBandwidth:
    def test_chain(self):
        assert bandwidth(chain(10)) == 1

    def test_complete(self):
        assert bandwidth(complete(6)) == 5

    def test_empty(self):
        assert bandwidth(CSRGraph.from_edges(4, [])) == 0

    def test_shuffle_increases_bandwidth(self):
        g = tube_mesh(500, 25, 6, 1.0, 2, seed=1)
        shuffled = apply_ordering(g, "random", seed=1)
        assert bandwidth(shuffled) > 2 * bandwidth(g)

    def test_rcm_restores_bandwidth(self):
        g = tube_mesh(500, 25, 6, 1.0, 2, seed=1)
        shuffled = apply_ordering(g, "random", seed=1)
        rcm = apply_ordering(shuffled, "rcm")
        assert bandwidth(rcm) < bandwidth(shuffled) / 2


class TestEnvelope:
    def test_chain(self):
        # vertex v's first neighbour is v-1 (except vertex 0): sum = n-1
        assert envelope_profile(chain(10)) == 9

    def test_empty(self):
        assert envelope_profile(CSRGraph.from_edges(3, [])) == 0

    def test_grid_positive(self):
        assert envelope_profile(grid2d(5, 5)) > 0

    def test_ordering_sensitivity(self):
        g = tube_mesh(400, 20, 6, 1.0, 2, seed=2)
        shuffled = apply_ordering(g, "random", seed=3)
        assert envelope_profile(shuffled) > envelope_profile(g)


class TestDegreeHistogram:
    def test_counts(self):
        hist = degree_histogram(complete(5))
        assert hist[4] == 5
        assert hist.sum() == 5

    def test_chain(self):
        hist = degree_histogram(chain(6))
        assert hist[1] == 2 and hist[2] == 4

    def test_empty_graph(self):
        assert len(degree_histogram(CSRGraph.from_edges(0, []))) == 0


class TestLocalitySummary:
    def test_chain_distances(self):
        s = locality_summary(chain(8))
        assert s["mean_distance"] == 1.0
        assert s["bandwidth"] == 1

    def test_edgeless(self):
        s = locality_summary(CSRGraph.from_edges(5, []))
        assert s["mean_distance"] == 0.0

    def test_shuffle_visible(self):
        g = tube_mesh(600, 30, 8, 1.0, 3, seed=4)
        shuffled = apply_ordering(g, "random", seed=4)
        assert locality_summary(shuffled)["mean_distance"] > \
            3 * locality_summary(g)["mean_distance"]
