"""The scaled suite must keep the paper's Table I shape (DESIGN.md §1)."""

import pytest

from repro.graph.properties import graph_properties
from repro.graph.suite import (PAPER_TABLE1, SUITE, suite_graph, suite_graphs,
                               suite_scale)

# Computing properties for the big graphs is ~1s each; cache per session.
_PROPS = {}


def props(name):
    if name not in _PROPS:
        _PROPS[name] = graph_properties(suite_graph(name))
    return _PROPS[name]


@pytest.mark.parametrize("name", list(SUITE))
class TestSuiteShape:
    def test_connected(self, name):
        assert props(name).n_components == 1

    def test_average_degree_matches_paper(self, name):
        pv, pe, _, _, _ = PAPER_TABLE1[name]
        paper_avg = 2 * pe / pv
        assert props(name).average_degree == pytest.approx(paper_avg, rel=0.15)

    def test_bfs_levels_match_paper(self, name):
        levels = props(name).n_bfs_levels
        paper_levels = PAPER_TABLE1[name][4]
        assert levels == pytest.approx(paper_levels, rel=0.08)

    def test_greedy_colors_match_paper(self, name):
        colors = props(name).n_colors
        paper_colors = PAPER_TABLE1[name][3]
        assert colors == pytest.approx(paper_colors, rel=0.15)

    def test_hub_degree_character(self, name):
        """Max degree well above average, as in all the paper's matrices."""
        p = props(name)
        assert p.max_degree > 2 * p.average_degree

    def test_scale_factor(self, name):
        assert 0.05 < suite_scale(name) < 0.2


class TestSuiteApi:
    def test_memoised(self):
        assert suite_graph("pwtk") is suite_graph("pwtk")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown suite graph"):
            suite_graph("nope")

    def test_suite_graphs_complete(self):
        gs = suite_graphs()
        assert set(gs) == set(SUITE)
        assert set(gs) == set(PAPER_TABLE1)

    def test_pwtk_is_the_depth_outlier(self):
        """pwtk has by far the most BFS levels (paper Table I: 267)."""
        levels = {name: props(name).n_bfs_levels for name in SUITE}
        top = max(levels, key=levels.get)
        assert top == "pwtk"
        second = sorted(levels.values())[-2]
        assert levels["pwtk"] > 1.3 * second

    def test_relative_level_widths_preserved(self):
        """inline_1 has wider levels than pwtk (sets Fig 4 peak ordering)."""
        w_inline = SUITE["inline_1"].n / props("inline_1").n_bfs_levels
        w_pwtk = SUITE["pwtk"].n / props("pwtk").n_bfs_levels
        assert w_inline > 2 * w_pwtk
