"""Unit and property tests for the CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph


def edges_strategy(max_n=30, max_m=120):
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                     max_size=max_m)))


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, [])
        assert g.n_vertices == 0
        assert g.n_edges == 0
        assert g.max_degree == 0
        assert g.average_degree == 0.0

    def test_no_edges(self):
        g = CSRGraph.from_edges(5, [])
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert list(g.degrees) == [0] * 5

    def test_single_edge(self):
        g = CSRGraph.from_edges(3, [(0, 2)])
        assert g.n_edges == 1
        assert list(g.neighbors(0)) == [2]
        assert list(g.neighbors(2)) == [0]
        assert list(g.neighbors(1)) == []

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (1, 1), (0, 1)])
        assert g.n_edges == 1

    def test_duplicate_edges_merged(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1

    def test_symmetrisation(self):
        g = CSRGraph.from_edges(4, [(2, 0)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges(3, [(0, 3)])
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges(3, [(-1, 0)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            CSRGraph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(-1, [])

    def test_from_scipy_roundtrip(self, grid):
        g2 = CSRGraph.from_scipy(grid.to_scipy())
        assert grid.structurally_equal(g2)

    def test_from_scipy_rejects_nonsquare(self):
        import scipy.sparse as sp
        with pytest.raises(ValueError, match="square"):
            CSRGraph.from_scipy(sp.coo_matrix(np.ones((2, 3))))


class TestValidation:
    def test_validate_rejects_asymmetric(self):
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int32)
        with pytest.raises(ValueError, match="symmetric"):
            CSRGraph(indptr=indptr, indices=indices)

    def test_validate_rejects_self_loop(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int32)
        with pytest.raises(ValueError, match="self-loop"):
            CSRGraph(indptr=indptr, indices=indices)

    def test_validate_rejects_unsorted_adjacency(self):
        indptr = np.array([0, 2, 3, 4], dtype=np.int64)
        indices = np.array([2, 1, 0, 0], dtype=np.int32)
        with pytest.raises(ValueError, match="increasing"):
            CSRGraph(indptr=indptr, indices=indices)

    def test_validate_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2], dtype=np.int64),
                     indices=np.array([0], dtype=np.int32))

    def test_validate_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(indptr=np.array([0, 2, 1, 3], dtype=np.int64),
                     indices=np.array([1, 2, 0], dtype=np.int32))


class TestAccessors:
    def test_neighbors_sorted(self, random_graph):
        for v in range(0, random_graph.n_vertices, 17):
            nbrs = random_graph.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_degrees_match_indptr(self, mesh):
        assert np.array_equal(mesh.degrees, np.diff(mesh.indptr))

    def test_max_and_average_degree(self, k5):
        assert k5.max_degree == 4
        assert k5.average_degree == 4.0

    def test_has_edge(self, path10):
        assert path10.has_edge(3, 4)
        assert not path10.has_edge(3, 5)

    def test_edge_array_each_edge_once(self, grid):
        edges = grid.edge_array()
        assert len(edges) == grid.n_edges
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_n_directed_entries(self, grid):
        assert grid.n_directed_entries == 2 * grid.n_edges

    def test_identity_hash_semantics(self, grid):
        g2 = CSRGraph(indptr=grid.indptr.copy(), indices=grid.indices.copy())
        assert grid.structurally_equal(g2)
        assert grid != g2  # identity equality
        assert len({grid, g2}) == 2


class TestPermute:
    def test_permute_identity(self, mesh):
        perm = np.arange(mesh.n_vertices)
        assert mesh.permute(perm).structurally_equal(mesh)

    def test_permute_preserves_structure(self, mesh):
        rng = np.random.default_rng(0)
        perm = rng.permutation(mesh.n_vertices)
        g2 = mesh.permute(perm)
        assert g2.n_edges == mesh.n_edges
        assert sorted(g2.degrees) == sorted(mesh.degrees)
        # spot-check: edges map through the permutation
        for v in range(0, mesh.n_vertices, 61):
            assert set(perm[mesh.neighbors(v)]) == set(g2.neighbors(perm[v]))

    def test_permute_involution(self, grid):
        rng = np.random.default_rng(1)
        perm = rng.permutation(grid.n_vertices)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(len(perm))
        assert grid.permute(perm).permute(inverse).structurally_equal(grid)

    def test_permute_rejects_non_permutation(self, path10):
        with pytest.raises(ValueError, match="permutation"):
            path10.permute(np.zeros(10, dtype=np.int64))

    def test_permute_rejects_wrong_length(self, path10):
        with pytest.raises(ValueError, match="length"):
            path10.permute(np.arange(5))


class TestProperties:
    @given(edges_strategy())
    @settings(max_examples=60, deadline=None)
    def test_from_edges_invariants(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        g.validate()  # raises on violation
        assert g.n_vertices == n
        # degree sum equals directed entry count
        assert g.degrees.sum() == g.n_directed_entries

    @given(edges_strategy())
    @settings(max_examples=40, deadline=None)
    def test_edge_array_roundtrip(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        g2 = CSRGraph.from_edges(n, g.edge_array())
        assert g.structurally_equal(g2)

    @given(edges_strategy(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_permute_preserves_degrees(self, ne, seed):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        if g.n_vertices == 0:
            return
        perm = np.random.default_rng(seed).permutation(g.n_vertices)
        g2 = g.permute(perm)
        assert np.array_equal(np.sort(g.degrees), np.sort(g2.degrees))
        g2.validate()
