"""Tests for MatrixMarket / edge-list I/O."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, grid2d
from repro.graph.io import (load_graph, read_edge_list, read_matrix_market,
                            write_edge_list, write_matrix_market)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(40, 120, seed=1)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = read_matrix_market(path)
        assert g.structurally_equal(g2)

    def test_header_written(self, tmp_path):
        g = grid2d(3, 3)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("%%MatrixMarket matrix coordinate pattern symmetric")

    def test_reads_general_with_values(self, tmp_path):
        """Value-carrying coordinate files parse (values ignored)."""
        path = tmp_path / "v.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n"
                        "% comment line\n"
                        "3 3 4\n1 2 0.5\n2 1 0.5\n2 3 -1\n3 2 -1\n")
        g = read_matrix_market(path)
        assert g.n_vertices == 3
        assert g.n_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("3 3 1\n1 2\n")
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(path)

    def test_rejects_nonsquare(self, tmp_path):
        path = tmp_path / "ns.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                        "2 3 1\n1 2\n")
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)

    def test_name_defaults_to_stem(self, tmp_path):
        g = grid2d(2, 2)
        path = tmp_path / "mygraph.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path).name == "mygraph"


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(30, 70, seed=2)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g.structurally_equal(g2)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.edges"
        path.write_text("# header\n\n0 1\n1 2  # trailing\n")
        g = read_edge_list(path)
        assert g.n_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)


class TestLoadGraph:
    def test_dispatch_by_extension(self, tmp_path):
        g = grid2d(3, 4)
        write_matrix_market(g, tmp_path / "a.mtx")
        write_edge_list(g, tmp_path / "a.edges")
        assert load_graph(tmp_path / "a.mtx").structurally_equal(g)
        assert load_graph(tmp_path / "a.edges").structurally_equal(g)
