"""Tests for MatrixMarket / edge-list I/O."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, grid2d
from repro.graph.io import (load_graph, read_edge_list, read_matrix_market,
                            write_edge_list, write_matrix_market)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(40, 120, seed=1)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = read_matrix_market(path)
        assert g.structurally_equal(g2)

    def test_header_written(self, tmp_path):
        g = grid2d(3, 3)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("%%MatrixMarket matrix coordinate pattern symmetric")

    def test_reads_general_with_values(self, tmp_path):
        """Value-carrying coordinate files parse (values ignored)."""
        path = tmp_path / "v.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n"
                        "% comment line\n"
                        "3 3 4\n1 2 0.5\n2 1 0.5\n2 3 -1\n3 2 -1\n")
        g = read_matrix_market(path)
        assert g.n_vertices == 3
        assert g.n_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("3 3 1\n1 2\n")
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(path)

    def test_rejects_nonsquare(self, tmp_path):
        path = tmp_path / "ns.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                        "2 3 1\n1 2\n")
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)

    def test_name_defaults_to_stem(self, tmp_path):
        g = grid2d(2, 2)
        path = tmp_path / "mygraph.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path).name == "mygraph"


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(30, 70, seed=2)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g.structurally_equal(g2)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.edges"
        path.write_text("# header\n\n0 1\n1 2  # trailing\n")
        g = read_edge_list(path)
        assert g.n_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)


class TestMatrixMarketMalformed:
    """Strict-mode validation of malformed MatrixMarket input."""

    def _mtx(self, tmp_path, body, header="pattern general"):
        path = tmp_path / "m.mtx"
        path.write_text(f"%%MatrixMarket matrix coordinate {header}\n{body}")
        return path

    def test_rejects_non_integer_size_line(self, tmp_path):
        path = self._mtx(tmp_path, "three 3 1\n1 2\n")
        with pytest.raises(ValueError, match="size line"):
            read_matrix_market(path)

    def test_rejects_negative_size(self, tmp_path):
        path = self._mtx(tmp_path, "-3 -3 1\n1 2\n")
        with pytest.raises(ValueError, match="negative"):
            read_matrix_market(path)

    def test_rejects_non_integer_entry(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 1\n1 x\n")
        with pytest.raises(ValueError, match="malformed entry"):
            read_matrix_market(path)

    def test_rejects_nnz_mismatch(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 5\n1 2\n2 3\n")
        with pytest.raises(ValueError, match="declares 5"):
            read_matrix_market(path)

    def test_rejects_out_of_range_id(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 1\n1 9\n")
        with pytest.raises(ValueError, match="out of range"):
            read_matrix_market(path)

    def test_rejects_self_loop_strict(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 2\n1 2\n2 2\n")
        with pytest.raises(ValueError, match="self-loop"):
            read_matrix_market(path)

    def test_drops_self_loop_lenient(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 2\n1 2\n2 2\n")
        g = read_matrix_market(path, strict=False)
        assert g.n_edges == 1

    def test_rejects_exact_duplicate_strict(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 2\n1 2\n1 2\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_matrix_market(path)

    def test_merges_duplicate_lenient(self, tmp_path):
        path = self._mtx(tmp_path, "3 3 2\n1 2\n1 2\n")
        assert read_matrix_market(path, strict=False).n_edges == 1

    def test_mirrored_pair_is_not_a_duplicate(self, tmp_path):
        # 'u v' + 'v u' is how the general dialect spells one undirected
        # edge — strict mode must accept it.
        path = self._mtx(tmp_path, "3 3 2\n1 2\n2 1\n")
        g = read_matrix_market(path)
        assert g.n_edges == 1 and g.has_edge(0, 1)


class TestEdgeListMalformed:
    """Strict-mode validation of malformed edge-list input."""

    def _edges(self, tmp_path, body):
        path = tmp_path / "m.edges"
        path.write_text(body)
        return path

    def test_rejects_non_integer_token_with_line_number(self, tmp_path):
        path = self._edges(tmp_path, "0 1\nx 2\n")
        with pytest.raises(ValueError, match=r"\.edges:2.*non-integer"):
            read_edge_list(path)

    def test_rejects_negative_id_with_line_number(self, tmp_path):
        path = self._edges(tmp_path, "0 1\n-1 2\n")
        with pytest.raises(ValueError, match=r"\.edges:2.*negative"):
            read_edge_list(path)

    def test_rejects_self_loop_strict(self, tmp_path):
        path = self._edges(tmp_path, "0 1\n2 2\n")
        with pytest.raises(ValueError, match=r"\.edges:2.*self-loop"):
            read_edge_list(path)

    def test_drops_self_loop_lenient(self, tmp_path):
        g = read_edge_list(self._edges(tmp_path, "0 1\n2 2\n"), strict=False)
        assert g.n_edges == 1 and g.n_vertices == 3

    def test_rejects_duplicate_strict(self, tmp_path):
        path = self._edges(tmp_path, "0 1\n2 1\n0 1\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_edge_list(path)

    def test_rejects_reversed_duplicate_strict(self, tmp_path):
        # Edge lists store each undirected edge once, so '1 0' after
        # '0 1' is a duplicate (unlike the MatrixMarket general dialect).
        path = self._edges(tmp_path, "0 1\n1 0\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_edge_list(path)

    def test_merges_duplicates_lenient(self, tmp_path):
        g = read_edge_list(self._edges(tmp_path, "0 1\n1 0\n0 1\n"),
                           strict=False)
        assert g.n_edges == 1

    def test_empty_file_gives_empty_graph(self, tmp_path):
        g = read_edge_list(self._edges(tmp_path, "# nothing here\n"))
        assert g.n_vertices == 0 and g.n_edges == 0


class TestLoadGraph:
    def test_dispatch_by_extension(self, tmp_path):
        g = grid2d(3, 4)
        write_matrix_market(g, tmp_path / "a.mtx")
        write_edge_list(g, tmp_path / "a.edges")
        assert load_graph(tmp_path / "a.mtx").structurally_equal(g)
        assert load_graph(tmp_path / "a.edges").structurally_equal(g)

    def test_strict_flag_threaded_through(self, tmp_path):
        (tmp_path / "l.edges").write_text("0 0\n0 1\n")
        with pytest.raises(ValueError, match="self-loop"):
            load_graph(tmp_path / "l.edges")
        g = load_graph(tmp_path / "l.edges", strict=False)
        assert g.n_edges == 1
