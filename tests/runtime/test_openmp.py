"""OpenMP-specific scheduling behaviour."""

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.runtime.openmp import openmp_parallel_for
from repro.runtime.base import Schedule


def uniform(n, c=100.0):
    return WorkCosts(np.full(n, c), np.zeros(n), np.zeros(n))


def skewed(n):
    compute = np.full(n, 50.0)
    compute[: n // 10] = 5000.0  # a few heavy items at the front
    return WorkCosts(compute, np.zeros(n), np.zeros(n))


class TestStatic:
    def test_round_robin_assignment(self, tiny_machine):
        stats = openmp_parallel_for(tiny_machine, 4, uniform(40),
                                    schedule=Schedule.STATIC, chunk=10)
        owner = {c.lo // 10: c.thread for c in stats.chunks}
        assert owner == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_no_atomics(self, tiny_machine):
        stats = openmp_parallel_for(tiny_machine, 4, uniform(100),
                                    schedule=Schedule.STATIC, chunk=5)
        assert stats.atomic_operations == 0


class TestDynamic:
    def test_atomic_per_chunk(self, tiny_machine):
        stats = openmp_parallel_for(tiny_machine, 4, uniform(100),
                                    schedule=Schedule.DYNAMIC, chunk=10)
        # one fetch per chunk plus one empty fetch per thread to exit
        assert stats.atomic_operations == 10 + 4

    def test_balances_skew_better_than_static(self, tiny_machine):
        work = skewed(200)
        dyn = openmp_parallel_for(tiny_machine, 8, work,
                                  schedule=Schedule.DYNAMIC, chunk=5)
        sta = openmp_parallel_for(tiny_machine, 8, work,
                                  schedule=Schedule.STATIC, chunk=5)
        assert dyn.span < sta.span

    def test_contention_grows_with_threads(self, tiny_machine):
        w = uniform(400, c=10.0)  # tiny chunks -> counter-bound
        s2 = openmp_parallel_for(tiny_machine, 2, w,
                                 schedule=Schedule.DYNAMIC, chunk=2)
        s8 = openmp_parallel_for(tiny_machine, 8, w,
                                 schedule=Schedule.DYNAMIC, chunk=2)
        assert s8.atomic_wait_cycles > s2.atomic_wait_cycles


class TestGuided:
    def test_decreasing_chunks(self, tiny_machine):
        stats = openmp_parallel_for(tiny_machine, 4, uniform(1000),
                                    schedule=Schedule.GUIDED, chunk=10)
        sizes = [c.size for c in sorted(stats.chunks, key=lambda c: c.lo)]
        assert sizes[0] > sizes[-1]
        assert sizes[0] == 1000 // 8  # remaining / (2t)
        # every chunk except the trailing remainder honours the minimum
        assert all(s >= 10 for s in sizes[:-1])

    def test_fewer_chunks_than_dynamic(self, tiny_machine):
        g = openmp_parallel_for(tiny_machine, 4, uniform(1000),
                                schedule=Schedule.GUIDED, chunk=10)
        d = openmp_parallel_for(tiny_machine, 4, uniform(1000),
                                schedule=Schedule.DYNAMIC, chunk=10)
        assert g.n_chunks < d.n_chunks


class TestTls:
    def test_tls_init_charged(self, tiny_machine):
        base = openmp_parallel_for(tiny_machine, 2, uniform(20), chunk=5)
        tls = openmp_parallel_for(tiny_machine, 2, uniform(20), chunk=5,
                                  tls_entries=1000)
        assert tls.span > base.span
        assert tls.tls_inits == 2
