"""Work-stealing engine behaviour (Cilk and TBB share it)."""

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.runtime.base import Partitioner, TlsMode
from repro.runtime.cilk import cilk_parallel_for
from repro.runtime.tbb import tbb_parallel_for


def uniform(n, c=200.0):
    return WorkCosts(np.full(n, c), np.zeros(n), np.zeros(n))


class TestCilk:
    def test_steals_occur(self, tiny_machine):
        stats = cilk_parallel_for(tiny_machine, 8, uniform(400), grain=10)
        assert stats.steals > 0

    def test_tasks_spawned(self, tiny_machine):
        stats = cilk_parallel_for(tiny_machine, 4, uniform(256), grain=16)
        # lazy binary splitting produces ~(leaves - 1) splits
        assert stats.tasks_spawned >= 255 // 16

    def test_no_steals_single_thread(self, tiny_machine):
        stats = cilk_parallel_for(tiny_machine, 1, uniform(100), grain=10)
        assert stats.steals == 0

    def test_holder_lazy_init_only_on_working_threads(self, tiny_machine):
        # grain so large only one leaf exists: only one worker ever inits
        stats = cilk_parallel_for(tiny_machine, 8, uniform(50), grain=64,
                                  tls_mode=TlsMode.HOLDER, tls_entries=100)
        assert stats.tls_inits == 1

    def test_worker_id_eager_init_all_threads(self, tiny_machine):
        stats = cilk_parallel_for(tiny_machine, 8, uniform(50), grain=64,
                                  tls_mode=TlsMode.WORKER_ID, tls_entries=100)
        assert stats.tls_inits == 8

    def test_distribution_latency_visible(self, tiny_machine):
        """Work spreads through a steal chain: a machine with expensive
        steals takes longer on many-thread short loops."""
        slow_steals = tiny_machine.with_(steal_cycles=50_000.0)
        fast = cilk_parallel_for(tiny_machine, 8, uniform(64), grain=8)
        slow = cilk_parallel_for(slow_steals, 8, uniform(64), grain=8)
        assert slow.span > fast.span

    def test_invalid_grain(self, tiny_machine):
        with pytest.raises(ValueError):
            cilk_parallel_for(tiny_machine, 2, uniform(10), grain=0)


class TestTbbPartitioners:
    def test_simple_finest_granularity(self, tiny_machine):
        simple = tbb_parallel_for(tiny_machine, 4, uniform(512),
                                  partitioner=Partitioner.SIMPLE, chunk=8)
        auto = tbb_parallel_for(tiny_machine, 4, uniform(512),
                                partitioner=Partitioner.AUTO, chunk=8)
        assert simple.n_chunks > auto.n_chunks

    def test_auto_threshold_scales_with_threads(self, tiny_machine):
        a2 = tbb_parallel_for(tiny_machine, 2, uniform(512),
                              partitioner=Partitioner.AUTO, chunk=4)
        a8 = tbb_parallel_for(tiny_machine, 8, uniform(512),
                              partitioner=Partitioner.AUTO, chunk=4)
        assert a8.n_chunks > a2.n_chunks

    def test_affinity_pre_deals_ranges(self, tiny_machine):
        stats = tbb_parallel_for(tiny_machine, 4, uniform(512),
                                 partitioner=Partitioner.AFFINITY, chunk=8)
        # with a pre-dealt balanced load, most work runs without stealing
        threads_used = {c.thread for c in stats.chunks}
        assert len(threads_used) == 4

    def test_affinity_pays_mailbox_overhead(self, tiny_machine):
        auto = tbb_parallel_for(tiny_machine, 1, uniform(256),
                                partitioner=Partitioner.AUTO, chunk=8)
        aff = tbb_parallel_for(tiny_machine, 1, uniform(256),
                               partitioner=Partitioner.AFFINITY, chunk=8)
        assert aff.sched_cycles > auto.sched_cycles
