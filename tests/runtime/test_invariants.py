"""Cross-runtime conservation invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import KNF
from repro.machine.costs import WorkCosts
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule, TlsMode)

SPEC_STRATEGY = st.sampled_from([
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC, chunk=7),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC, chunk=7),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.GUIDED, chunk=7),
    RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.HOLDER, chunk=7),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE, chunk=7),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.AUTO, chunk=7),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.AFFINITY, chunk=7),
])


@given(SPEC_STRATEGY,
       st.integers(0, 200),
       st.integers(1, 16),
       st.integers(0, 10**6))
@settings(max_examples=60, deadline=None)
def test_conservation_and_coverage(spec, n_items, n_threads, seed):
    """For every runtime, policy, size and thread count:

    * every item executes exactly once,
    * busy cycles equal the sum of chunk durations,
    * the span is at least the critical chunk and at most serial time
      plus overheads.
    """
    rng = np.random.default_rng(seed)
    machine = KNF.with_(name="t", n_cores=4, smt_per_core=4)
    n_threads = min(n_threads, machine.max_threads)
    work = WorkCosts(rng.uniform(10, 500, n_items),
                     rng.uniform(0, 800, n_items),
                     rng.uniform(0, 2, n_items))
    stats = spec.parallel_for(machine, n_threads, work, seed=seed)

    covered = np.zeros(n_items, dtype=int)
    for c in stats.chunks:
        covered[c.lo:c.hi] += 1
    assert np.all(covered == 1)

    assert stats.busy_cycles == pytest.approx(
        sum(c.duration for c in stats.chunks))
    if stats.chunks:
        assert stats.span >= max(c.duration for c in stats.chunks)
    assert stats.span >= 0
