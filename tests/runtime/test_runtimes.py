"""Tests shared across the three simulated runtimes."""

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule, TlsMode)

ALL_SPECS = [
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC, chunk=8),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC, chunk=8),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.GUIDED, chunk=8),
    RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.HOLDER, chunk=8),
    RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.WORKER_ID, chunk=8),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE, chunk=8),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.AUTO, chunk=8),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.AFFINITY, chunk=8),
]


def uniform_work(n, compute=200.0, stall=100.0, volume=0.5):
    return WorkCosts(np.full(n, compute), np.full(n, stall), np.full(n, volume))


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
class TestAllRuntimes:
    def test_full_coverage(self, spec, tiny_machine):
        """Every item is executed exactly once."""
        stats = spec.parallel_for(tiny_machine, 4, uniform_work(100), seed=1)
        covered = np.zeros(100, dtype=int)
        for c in stats.chunks:
            covered[c.lo:c.hi] += 1
        assert np.all(covered == 1)

    def test_chunk_size_bound(self, spec, tiny_machine):
        """No executed chunk exceeds the grain (guided may exceed it)."""
        stats = spec.parallel_for(tiny_machine, 4, uniform_work(100), seed=1)
        limit = 100 if spec.schedule is Schedule.GUIDED else \
            max(8, -(-100 // (4 * 4)))
        assert max(c.size for c in stats.chunks) <= limit

    def test_single_thread_span_at_least_serial_work(self, spec, tiny_machine):
        work = uniform_work(64)
        stats = spec.parallel_for(tiny_machine, 1, work, seed=1)
        serial = work.total[0] + work.total[1]
        assert stats.span >= serial

    def test_speedup_with_threads(self, spec, tiny_machine):
        work = uniform_work(400)
        t1 = spec.parallel_for(tiny_machine, 1, work, seed=1).span
        t4 = spec.parallel_for(tiny_machine, 4, work, seed=1).span
        assert t1 / t4 > 2.0

    def test_deterministic(self, spec, tiny_machine):
        work = uniform_work(128)
        a = spec.parallel_for(tiny_machine, 4, work, seed=5)
        b = spec.parallel_for(tiny_machine, 4, work, seed=5)
        assert a.span == b.span
        assert [(c.lo, c.hi, c.thread) for c in a.chunks] == \
            [(c.lo, c.hi, c.thread) for c in b.chunks]

    def test_chunk_intervals_well_formed(self, spec, tiny_machine):
        stats = spec.parallel_for(tiny_machine, 3, uniform_work(60), seed=2)
        for c in stats.chunks:
            assert c.end > c.start >= 0
            assert 0 <= c.thread < 3
        assert stats.span >= max(c.end for c in stats.chunks)

    def test_per_thread_chunks_disjoint_in_time(self, spec, tiny_machine):
        """One thread never executes two chunks simultaneously."""
        stats = spec.parallel_for(tiny_machine, 4, uniform_work(100), seed=3)
        by_thread = {}
        for c in stats.chunks:
            by_thread.setdefault(c.thread, []).append((c.start, c.end))
        for spans in by_thread.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    def test_fork_charged_once(self, spec, tiny_machine):
        work = uniform_work(40)
        with_fork = spec.parallel_for(tiny_machine, 2, work, fork=True, seed=1)
        without = spec.parallel_for(tiny_machine, 2, work, fork=False, seed=1)
        assert with_fork.span == pytest.approx(
            without.span + tiny_machine.fork_cycles)

    def test_empty_work(self, spec, tiny_machine):
        stats = spec.parallel_for(tiny_machine, 4, uniform_work(0), seed=1)
        assert stats.n_chunks == 0

    def test_invalid_chunk_rejected(self, spec, tiny_machine):
        bad = RuntimeSpec(spec.model, schedule=spec.schedule,
                          partitioner=spec.partitioner,
                          tls_mode=spec.tls_mode, chunk=0)
        with pytest.raises(ValueError):
            bad.parallel_for(tiny_machine, 2, uniform_work(10))


class TestSpecProperties:
    def test_labels(self):
        labels = {s.label for s in ALL_SPECS}
        assert labels == {"OpenMP-static", "OpenMP-dynamic", "OpenMP-guided",
                          "CilkPlus-holder", "CilkPlus", "TBB-simple",
                          "TBB-auto", "TBB-affinity"}

    def test_openmp_cheapest_tls_access(self):
        omp, cilk, tbb = ALL_SPECS[0], ALL_SPECS[3], ALL_SPECS[5]
        assert omp.tls_access_cycles < tbb.tls_access_cycles
        assert omp.body_overhead == (0.0, 0.0)
        assert cilk.body_overhead[1] > tbb.body_overhead[1]
