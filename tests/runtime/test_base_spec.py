"""RuntimeSpec dispatch and LoopContext plumbing."""

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.runtime.base import (LoopContext, Partitioner, ProgrammingModel,
                                RuntimeSpec, Schedule, TlsMode)


def work(n=20):
    return WorkCosts(np.full(n, 50.0), np.zeros(n), np.zeros(n))


class TestDispatch:
    def test_openmp_dispatch(self, tiny_machine):
        spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC,
                           chunk=5)
        stats = spec.parallel_for(tiny_machine, 2, work())
        assert stats.atomic_operations == 0  # static path taken

    def test_cilk_dispatch(self, tiny_machine):
        spec = RuntimeSpec(ProgrammingModel.CILK, chunk=5)
        stats = spec.parallel_for(tiny_machine, 4, work(200), seed=1)
        assert stats.tasks_spawned > 0  # stealing path taken

    def test_tbb_dispatch(self, tiny_machine):
        spec = RuntimeSpec(ProgrammingModel.TBB,
                           partitioner=Partitioner.SIMPLE, chunk=5)
        stats = spec.parallel_for(tiny_machine, 4, work(200), seed=1)
        assert stats.tasks_spawned > 0


class TestLoopContext:
    def test_tls_first_touch_lazy_includes_alloc(self, tiny_machine):
        ctx = LoopContext(tiny_machine, 2, work())
        eager = ctx.tls_first_touch_cycles(100, lazy=False)
        lazy = ctx.tls_first_touch_cycles(100, lazy=True)
        assert lazy == eager + tiny_machine.alloc_cycles
        assert ctx.tls_first_touch_cycles(0, lazy=True) == 0.0

    def test_spec_is_frozen_and_hashable(self):
        a = RuntimeSpec(ProgrammingModel.OPENMP, chunk=7)
        b = RuntimeSpec(ProgrammingModel.OPENMP, chunk=7)
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(Exception):
            a.chunk = 9

    def test_tls_modes_distinct_costs(self):
        holder = RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.HOLDER)
        worker = RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.WORKER_ID)
        assert holder.tls_access_cycles != worker.tls_access_cycles

    def test_affinity_body_overhead_larger(self):
        simple = RuntimeSpec(ProgrammingModel.TBB,
                             partitioner=Partitioner.SIMPLE)
        affinity = RuntimeSpec(ProgrammingModel.TBB,
                               partitioner=Partitioner.AFFINITY)
        assert affinity.body_overhead[0] > simple.body_overhead[0]
