"""Engine mechanics: suppressions, baselines, fingerprints, CLI."""

import json
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import entries_for, load_baseline, save_baseline
from repro.lint.engine import lint_paths
from tests.lint.conftest import rules_fired

_WALLCLOCK = """\
    import time

    def stamp():
        return time.time()
    """


# ------------------------------------------------------------- suppressions


def test_inline_suppression_with_reason_mutes_finding(run_lint):
    result = run_lint({"repro/sim/clock.py": """\
        import time

        def stamp():
            return time.time()  # repro: ignore[det-wallclock] test fixture
        """})
    assert "det-wallclock" not in rules_fired(result)
    assert len(result.suppressed) == 1
    assert result.suppressed[0].suppress_reason == "test fixture"


def test_comment_line_suppression_covers_next_code_line(run_lint):
    result = run_lint({"repro/sim/clock.py": """\
        import time

        def stamp():
            # repro: ignore[det-wallclock] the rationale can span a
            # comment block above the offending statement
            return time.time()
        """})
    assert "det-wallclock" not in rules_fired(result)
    assert len(result.suppressed) == 1


def test_suppression_without_reason_is_error(run_lint):
    result = run_lint({"repro/sim/clock.py": """\
        import time

        def stamp():
            return time.time()  # repro: ignore[det-wallclock]
        """})
    fired = rules_fired(result)
    assert "lint-bad-suppression" in fired
    assert "det-wallclock" in fired          # the suppression did not apply


def test_suppression_of_unknown_rule_is_error(run_lint):
    result = run_lint({"repro/x.py": """\
        VALUE = 1  # repro: ignore[no-such-rule] whatever
        """})
    assert "lint-bad-suppression" in rules_fired(result)


def test_unused_suppression_is_warning_not_error(run_lint):
    result = run_lint({"repro/x.py": """\
        VALUE = 1  # repro: ignore[det-wallclock] nothing to suppress here
        """})
    assert rules_fired(result) == {"lint-unused-suppression"}
    assert result.ok                          # warnings never fail the run


def test_suppression_syntax_in_docstring_is_ignored(run_lint):
    result = run_lint({"repro/x.py": '''\
        """Docs may show the syntax: # repro: ignore[det-wallclock] why."""
        VALUE = 1
        '''})
    assert not result.findings


# ----------------------------------------------------------------- baselines


def test_baseline_roundtrip_grandfathers_findings(run_lint, tmp_path):
    files = {"repro/sim/clock.py": _WALLCLOCK}
    first = run_lint(files)
    assert not first.ok
    bl_path = tmp_path / "baseline.json"
    save_baseline(str(bl_path), entries_for(first.errors, "pre-existing"))

    second = run_lint(files, baseline_path=str(bl_path))
    assert second.ok
    assert len(second.baselined) == 1
    assert not second.stale_baseline


def test_baseline_survives_line_drift(run_lint, tmp_path):
    first = run_lint({"repro/sim/clock.py": _WALLCLOCK})
    bl_path = tmp_path / "baseline.json"
    save_baseline(str(bl_path), entries_for(first.errors, "pre-existing"))

    drifted = run_lint({"repro/sim/clock.py": """\
        import time

        EXTRA_PADDING = 1

        def stamp():
            return time.time()
        """}, baseline_path=str(bl_path))
    assert drifted.ok
    assert len(drifted.baselined) == 1


def test_baseline_expires_when_code_changes(run_lint, tmp_path):
    first = run_lint({"repro/sim/clock.py": _WALLCLOCK})
    bl_path = tmp_path / "baseline.json"
    save_baseline(str(bl_path), entries_for(first.errors, "pre-existing"))

    changed = run_lint({"repro/sim/clock.py": """\
        import time

        def stamp():
            return float(time.time())
        """}, baseline_path=str(bl_path))
    assert not changed.ok                    # new content = new finding
    assert changed.stale_baseline            # old entry no longer matches


def test_save_baseline_is_deterministic(tmp_path, run_lint):
    result = run_lint({"repro/sim/clock.py": _WALLCLOCK})
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    entries = entries_for(result.errors, "r")
    save_baseline(str(a), entries)
    save_baseline(str(b), list(reversed(entries)))
    assert a.read_text() == b.read_text()
    assert load_baseline(str(a)).keys() == load_baseline(str(b)).keys()


# ------------------------------------------------------------------- the CLI


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def _run_cli(args, cwd):
    env_src = str(_repo_root() / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", "lint", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"})


def test_cli_exits_1_on_new_error(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "clock.py").write_text(
        "import time\n\ndef stamp():\n    return time.time()\n")
    proc = _run_cli(["--env-doc", "none"], cwd=tmp_path)
    assert proc.returncode == 1
    assert "det-wallclock" in proc.stdout


def test_cli_update_baseline_then_clean(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "clock.py").write_text(
        "import time\n\ndef stamp():\n    return time.time()\n")
    no_reason = _run_cli(["--env-doc", "none", "--update-baseline"],
                         cwd=tmp_path)
    assert no_reason.returncode == 2         # rationale is mandatory
    update = _run_cli(["--env-doc", "none", "--update-baseline",
                       "--reason", "grandfathered for the test"],
                      cwd=tmp_path)
    assert update.returncode == 0, update.stderr
    clean = _run_cli(["--env-doc", "none"], cwd=tmp_path)
    assert clean.returncode == 0, clean.stdout


def test_cli_json_report(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text("VALUE = 1\n")
    proc = _run_cli(["--env-doc", "none", "--json", "-", "-q"],
                    cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout[:proc.stdout.rindex("}") + 1])
    assert payload["ok"] is True
    assert payload["files_checked"] == 1


# -------------------------------------------------------------- fingerprints


def test_duplicate_findings_get_distinct_fingerprints(run_lint):
    result = run_lint({"repro/sim/clock.py": """\
        import time

        def stamp():
            return time.time()

        def stamp2():
            return time.time()
        """})
    fps = [f.fingerprint for f in result.findings
           if f.rule == "det-wallclock"]
    assert len(fps) == 2 and len(set(fps)) == 2
