"""The repository itself must lint clean, fast, with ENV.md in sync."""

import time
from pathlib import Path

import pytest

from repro.lint.engine import lint_paths
from repro.lint.envdoc import render_env_md

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_result():
    start = time.monotonic()
    result = lint_paths(
        [str(ROOT / "src" / "repro")], root=str(ROOT),
        baseline_path=str(ROOT / "lint_baseline.json"),
        env_doc_path=str(ROOT / "ENV.md"))
    result.elapsed = time.monotonic() - start
    return result


def test_repo_lints_clean(repo_result):
    assert repo_result.ok, "\n".join(
        f.format() for f in repo_result.findings)
    # Warnings must not linger either: the tree starts (and stays) at zero.
    assert not repo_result.findings, "\n".join(
        f.format() for f in repo_result.findings)


def test_lint_is_fast(repo_result):
    assert repo_result.elapsed < 10.0, (
        f"lint took {repo_result.elapsed:.1f}s; the pre-commit hook "
        "budget is 10s")


def test_every_suppression_carries_a_reason(repo_result):
    for finding in repo_result.suppressed:
        assert finding.suppress_reason.strip(), finding.format()


def test_no_stale_baseline_entries(repo_result):
    assert not repo_result.stale_baseline, [
        e.to_dict() for e in repo_result.stale_baseline]


def test_env_md_is_in_sync(repo_result):
    committed = (ROOT / "ENV.md").read_text(encoding="utf-8")
    regenerated = render_env_md(repo_result.env_registry)
    assert committed == regenerated, (
        "ENV.md is stale; regenerate with `PYTHONPATH=src python -m "
        "repro.experiments.cli lint --write-env-md ENV.md`")


def test_env_registry_covers_known_surface(repo_result):
    names = set(repo_result.env_registry)
    # Spot-check long-standing variables so the registry cannot silently
    # collapse to empty (which would also make ENV.md trivially "in sync").
    assert {"REPRO_FAST", "REPRO_JOBS", "REPRO_FAULT_SEED"} <= names
