"""One seeded violation per rule family, asserting detection.

This is the gate the CI step relies on: if a rule silently stops
firing, these tests fail before the repo can quietly accumulate the
violations the rule exists to catch.  Each test also includes the
clean twin of the seeded violation, so rules cannot pass by flagging
everything.
"""

from tests.lint.conftest import rules_fired

# ---------------------------------------------------------------- determinism


def test_det_wallclock_fires_in_sim_scope(run_lint):
    result = run_lint({"repro/sim/clock.py": """\
        import time

        def stamp():
            return time.time()
        """})
    assert "det-wallclock" in rules_fired(result)


def test_det_wallclock_ignores_non_sim_code(run_lint):
    result = run_lint({"repro/experiments/bench.py": """\
        import time

        def stamp():
            return time.time()
        """})
    assert "det-wallclock" not in rules_fired(result)


def test_det_unseeded_rng_fires(run_lint):
    result = run_lint({"repro/kernels/shuffle.py": """\
        import numpy as np

        def pick(n):
            return np.random.default_rng().integers(n)
        """})
    assert "det-unseeded-rng" in rules_fired(result)


def test_det_seeded_rng_is_clean(run_lint):
    result = run_lint({"repro/kernels/shuffle.py": """\
        import numpy as np

        def pick(n, seed):
            return np.random.default_rng(seed).integers(n)
        """})
    assert "det-unseeded-rng" not in rules_fired(result)


def test_det_urandom_fires(run_lint):
    result = run_lint({"repro/machine/entropy.py": """\
        import os

        def salt():
            return os.urandom(8)
        """})
    assert "det-urandom" in rules_fired(result)


def test_det_set_order_fires(run_lint):
    result = run_lint({"repro/runtime/order.py": """\
        def visit(out):
            for x in {3, 1, 2}:
                out.append(x)
        """})
    assert "det-set-order" in rules_fired(result)


def test_det_set_order_accepts_sorted(run_lint):
    result = run_lint({"repro/runtime/order.py": """\
        def visit(out):
            for x in sorted({3, 1, 2}):
                out.append(x)
        """})
    assert "det-set-order" not in rules_fired(result)


# --------------------------------------------------------------- env hygiene


def test_env_raw_read_fires_anywhere(run_lint):
    result = run_lint({"repro/experiments/knobs.py": """\
        import os

        def fast():
            return os.environ.get("REPRO_FAST") == "1"
        """})
    assert "env-raw-read" in rules_fired(result)


def test_env_parser_read_is_clean_and_registered(run_lint):
    result = run_lint({"repro/experiments/knobs.py": """\
        from repro._util import env_bool

        def fast():
            return env_bool("REPRO_FAST")
        """})
    assert "env-raw-read" not in rules_fired(result)
    assert "REPRO_FAST" in result.env_registry


def test_env_undocumented_fires_against_env_doc(run_lint, tmp_path):
    doc = tmp_path / "ENV.md"
    doc.write_text("| `REPRO_DOCUMENTED` | ... |\n", encoding="utf-8")
    result = run_lint({"repro/experiments/knobs.py": """\
        from repro._util import env_int

        def knob():
            return env_int("REPRO_MYSTERY", 3)
        """}, env_doc_path=str(doc))
    fired = rules_fired(result)
    assert "env-undocumented" in fired


def test_env_unread_write_fires(run_lint):
    result = run_lint({"repro/experiments/pin.py": """\
        import os

        def pin():
            os.environ["REPRO_DEAD_KNOB"] = "1"
        """})
    assert "env-unread-write" in rules_fired(result)


def test_env_write_with_reader_is_clean(run_lint):
    result = run_lint({
        "repro/experiments/pin.py": """\
            import os

            def pin():
                os.environ["REPRO_LIVE_KNOB"] = "1"
            """,
        "repro/experiments/read.py": """\
            from repro._util import env_bool

            def live():
                return env_bool("REPRO_LIVE_KNOB")
            """})
    assert "env-unread-write" not in rules_fired(result)


# ------------------------------------------------------------ observer gating


def test_obs_ungated_fires(run_lint):
    result = run_lint({"repro/sim/hooks.py": """\
        class Engine:
            def step(self):
                self._trace.on_event("step", 1.0)
        """})
    assert "obs-ungated" in rules_fired(result)


def test_obs_gated_call_is_clean(run_lint):
    result = run_lint({"repro/sim/hooks.py": """\
        class Engine:
            def step(self):
                if self._trace is not None:
                    self._trace.on_event("step", 1.0)
        """})
    assert "obs-ungated" not in rules_fired(result)


def test_obs_early_return_guard_is_clean(run_lint):
    result = run_lint({"repro/sim/hooks.py": """\
        class Engine:
            def step(self):
                if self._trace is None:
                    return
                self._trace.on_event("step", 1.0)
        """})
    assert "obs-ungated" not in rules_fired(result)


# ------------------------------------------------------------------ footprints


def test_fp_missing_access_fires(run_lint):
    result = run_lint({"repro/kernels/sweep.py": """\
        def simulate(spec, config, n_threads, work):
            return spec.parallel_for(config, n_threads, work)
        """})
    assert "fp-missing-access" in rules_fired(result)


def test_fp_with_access_is_clean(run_lint):
    result = run_lint({"repro/kernels/sweep.py": """\
        def simulate(spec, config, n_threads, work, acc):
            return spec.parallel_for(config, n_threads, work, access=acc)
        """})
    assert "fp-missing-access" not in rules_fired(result)


def test_fp_undeclared_write_fires(run_lint):
    result = run_lint({"repro/kernels/replay.py": """\
        from repro.kernels.base import AccessSet

        def footprint():
            return AccessSet("k").writes("colors", lambda lo, hi: [])

        def replay(colors, write_time, idx):
            colors[idx] = 1
            write_time[idx] = 2.0
        """})
    findings = [f for f in result.findings
                if f.rule == "fp-undeclared-write"]
    assert len(findings) == 1            # colors is declared, write_time not
    assert "write_time" in findings[0].message


def test_fp_write_inference_skips_modules_without_access_sets(run_lint):
    result = run_lint({"repro/kernels/seq.py": """\
        def greedy(colors, order):
            for v in order:
                colors[v] = 1
        """})
    assert "fp-undeclared-write" not in rules_fired(result)


# ---------------------------------------------------------- lock/barrier rules


def test_lock_discarded_release_fires(run_lint):
    result = run_lint({"repro/sim/crit.py": """\
        def section(lock, now):
            lock.acquire(now, 5.0)
            return now
        """})
    assert "lock-discarded-release" in rules_fired(result)


def test_lock_used_release_is_clean(run_lint):
    result = run_lint({"repro/sim/crit.py": """\
        def section(lock, now):
            release = lock.acquire(now, 5.0)
            return release
        """})
    assert "lock-discarded-release" not in rules_fired(result)


def test_lock_barrier_arity_fires_on_literal(run_lint):
    result = run_lint({"repro/sim/region.py": """\
        def region(engine, Barrier):
            return Barrier(engine, 4)
        """})
    assert "lock-barrier-arity" in rules_fired(result)


def test_lock_barrier_arity_accepts_derived_count(run_lint):
    result = run_lint({"repro/sim/region.py": """\
        def region(engine, Barrier, n_threads):
            return Barrier(engine, n_threads)
        """})
    assert "lock-barrier-arity" not in rules_fired(result)
