"""Shared helper: lint a synthetic tree rooted at tmp_path."""

import textwrap

import pytest

from repro.lint.engine import lint_paths


@pytest.fixture
def run_lint(tmp_path):
    """``run_lint({relpath: source, ...}, **kw)`` → LintResult.

    Relpaths control rule scope (e.g. ``repro/sim/x.py`` lands in the
    simulated-core scope); sources are dedented before writing.
    """

    def _run(files, **kw):
        for rel, src in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src), encoding="utf-8")
        kw.setdefault("baseline_path", None)
        kw.setdefault("env_doc_path", None)
        return lint_paths([str(tmp_path)], root=str(tmp_path), **kw)

    return _run


def rules_fired(result):
    """Set of rule ids among the actionable findings."""
    return {f.rule for f in result.findings}
