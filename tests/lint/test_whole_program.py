"""Whole-program analysis: cross-module rules, chains, cache, jobs.

Each rule family gets a seeded-violation fixture that must (a) fail
with a finding naming the full call chain and (b) pass once a reasoned
suppression lands at one end of that chain.  The engine-level tests
pin the determinism and caching contracts: byte-identical output for
any worker count, fingerprints stable when a callee moves files, and
warm runs served from the payload cache.
"""

import json

from repro.lint.baseline import entries_for, save_baseline
from repro.lint.engine import lint_paths
from tests.lint.conftest import rules_fired

# ----------------------------------------------------------------- fixtures

#: Kernel module whose chunk body delegates the write to a helper in a
#: different (non-kernel) module — invisible to the per-file rule.
_KERNEL_CALLER = """\
    from repro.support import scatter


    def footprint(n):
        return AccessSet("alpha").writes("out", None)


    def chunk(lo, hi, colors, out):
        out[lo] = 0
        scatter(colors, lo, hi)
    """

_KERNEL_HELPER = """\
    def scatter(arr, lo, hi):
        arr[lo:hi] = 1
    """

_ASYNC_CALLER = """\
    from repro.jobs import load_all


    async def handle(request):
        return load_all(request)
    """

_ASYNC_HELPER = """\
    import os


    def load_all(request):
        return os.listdir(".")
    """

_OBS_CALLER = """\
    from repro.telemetry import note


    def step(state):
        note(None, 1)
        return state
    """

_OBS_HELPER = """\
    def note(trace, value):
        trace.hit(value)
    """


# ------------------------------------------------- static footprints family


def test_transitive_undeclared_write_names_full_chain(run_lint):
    result = run_lint({"repro/kernels/alpha.py": _KERNEL_CALLER,
                       "repro/support.py": _KERNEL_HELPER})
    hits = [f for f in result.findings
            if f.rule == "fp-undeclared-write-transitive"]
    assert len(hits) == 1
    finding = hits[0]
    assert finding.path == "repro/kernels/alpha.py"
    assert "'colors'" in finding.message
    assert [h.path for h in finding.chain] == [
        "repro/kernels/alpha.py", "repro/support.py"]
    assert "repro/support.py" in finding.message   # chain is rendered


def test_transitive_footprint_suppressed_at_caller(run_lint):
    caller = """\
        from repro.support import scatter


        def footprint(n):
            return AccessSet("alpha").writes("out", None)


        def chunk(lo, hi, colors, out):
            out[lo] = 0
            # repro: ignore[fp-undeclared-write-transitive] replay
            # bookkeeping, not simulated shared state
            scatter(colors, lo, hi)
        """
    result = run_lint({"repro/kernels/alpha.py": caller,
                       "repro/support.py": _KERNEL_HELPER})
    assert "fp-undeclared-write-transitive" not in rules_fired(result)
    assert any(f.rule == "fp-undeclared-write-transitive"
               for f in result.suppressed)


def test_overbroad_footprint_warns_on_dead_declaration(run_lint):
    result = run_lint({"repro/kernels/beta.py": """\
        def footprint(n):
            return AccessSet("beta").writes("ghost", None)


        def chunk(lo, hi):
            return lo + hi
        """})
    hits = [f for f in result.findings
            if f.rule == "fp-overbroad-footprint"]
    assert len(hits) == 1
    assert "'ghost'" in hits[0].message
    assert result.ok                              # warning, not error


# ----------------------------------------------------- crash-safety family


def test_bare_write_under_durable_root_fails(run_lint):
    result = run_lint({"repro/campaign/saver.py": """\
        def save(path, text):
            with open(path, "w") as fh:
                fh.write(text)
        """})
    assert "crash-bare-write" in rules_fired(result)


def test_unfenced_replace_carries_open_and_replace_hops(run_lint):
    result = run_lint({"repro/graphstore/saver.py": """\
        import os


        def publish(path, text):
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        """})
    hits = [f for f in result.findings
            if f.rule == "crash-unfenced-replace"]
    assert len(hits) == 1
    assert [h.note for h in hits[0].chain][-1] == "os.replace"


def test_fsync_fence_and_append_mode_pass(run_lint):
    result = run_lint({"repro/graphstore/saver.py": """\
        import os


        def publish(path, text):
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)


        def journal_append(path, line):
            with open(path, "a") as fh:
                fh.write(line)
        """})
    assert not result.findings


def test_crash_rule_suppressed_with_reason(run_lint):
    result = run_lint({"repro/campaign/saver.py": """\
        def save(path, text):
            # repro: ignore[crash-bare-write] chaos harness corrupts
            # stored objects on purpose
            with open(path, "w") as fh:
                fh.write(text)
        """})
    assert "crash-bare-write" not in rules_fired(result)
    assert len(result.suppressed) == 1


# --------------------------------------------------- asyncio-hygiene family


def test_blocking_call_reachable_from_coroutine(run_lint):
    result = run_lint({"repro/serve/web.py": _ASYNC_CALLER,
                       "repro/jobs.py": _ASYNC_HELPER})
    hits = [f for f in result.findings if f.rule == "async-blocking"]
    assert len(hits) == 1
    finding = hits[0]
    assert finding.path == "repro/serve/web.py"
    assert finding.snippet.startswith("async def handle")
    notes = [h.note for h in finding.chain]
    assert notes[0] == "async def handle"
    assert notes[-1] == "os.listdir"


def test_async_blocking_suppressed_at_root_end(run_lint):
    caller = """\
        from repro.jobs import load_all


        # repro: ignore[async-blocking] startup-only path
        async def handle(request):
            return load_all(request)
        """
    result = run_lint({"repro/serve/web.py": caller,
                       "repro/jobs.py": _ASYNC_HELPER})
    assert "async-blocking" not in rules_fired(result)


def test_async_blocking_suppressed_at_blocking_end(run_lint):
    helper = """\
        import os


        def load_all(request):
            # repro: ignore[async-blocking] flat dir, documented cheap
            return os.listdir(".")
        """
    result = run_lint({"repro/serve/web.py": _ASYNC_CALLER,
                       "repro/jobs.py": helper})
    assert "async-blocking" not in rules_fired(result)
    assert any(f.rule == "async-blocking" for f in result.suppressed)


def test_run_in_executor_escapes_reachability(run_lint):
    result = run_lint({"repro/serve/web.py": """\
        import asyncio

        from repro.jobs import load_all


        async def handle(request):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, load_all, request)
        """, "repro/jobs.py": _ASYNC_HELPER})
    assert "async-blocking" not in rules_fired(result)


# ----------------------------------------------- observer-gating family


def test_ungated_helper_reached_from_sim_scope(run_lint):
    result = run_lint({"repro/sim/engine.py": _OBS_CALLER,
                       "repro/telemetry.py": _OBS_HELPER})
    hits = [f for f in result.findings
            if f.rule == "obs-ungated-transitive"]
    assert len(hits) == 1
    finding = hits[0]
    assert finding.path == "repro/sim/engine.py"
    assert [h.path for h in finding.chain] == [
        "repro/sim/engine.py", "repro/telemetry.py"]


def test_gated_helper_is_clean(run_lint):
    result = run_lint({"repro/sim/engine.py": _OBS_CALLER,
                       "repro/telemetry.py": """\
        def note(trace, value):
            if trace is not None:
                trace.hit(value)
        """})
    assert "obs-ungated-transitive" not in rules_fired(result)


def test_obs_transitive_suppressed_at_helper_end(run_lint):
    helper = """\
        def note(trace, value):
            # repro: ignore[obs-ungated-transitive] caller owns the gate
            trace.hit(value)
        """
    result = run_lint({"repro/sim/engine.py": _OBS_CALLER,
                       "repro/telemetry.py": helper})
    assert "obs-ungated-transitive" not in rules_fired(result)


# ------------------------------------------- fingerprints, baseline, chains


def test_fingerprint_stable_when_callee_moves_files(run_lint, tmp_path):
    first = run_lint({"repro/kernels/alpha.py": _KERNEL_CALLER,
                      "repro/support.py": _KERNEL_HELPER})
    fp_a = [f.fingerprint for f in first.findings
            if f.rule == "fp-undeclared-write-transitive"]

    moved_caller = _KERNEL_CALLER.replace("repro.support",
                                          "repro.other.helpers")
    (tmp_path / "repro/support.py").unlink()
    second = run_lint({"repro/kernels/alpha.py": moved_caller,
                       "repro/other/helpers.py": _KERNEL_HELPER})
    fp_b = [f.fingerprint for f in second.findings
            if f.rule == "fp-undeclared-write-transitive"]
    assert fp_a and fp_a == fp_b     # chain is not part of the identity


def test_baseline_roundtrip_covers_cross_module_findings(run_lint,
                                                         tmp_path):
    files = {"repro/serve/web.py": _ASYNC_CALLER,
             "repro/jobs.py": _ASYNC_HELPER}
    first = run_lint(files)
    assert not first.ok
    bl_path = tmp_path / "baseline.json"
    save_baseline(str(bl_path), entries_for(first.errors, "pre-dates "
                                            "the asyncio rule"))
    second = run_lint(files, baseline_path=str(bl_path))
    assert second.ok
    assert len(second.baselined) == len(first.errors)
    assert not second.stale_baseline


def test_chain_survives_json_roundtrip(run_lint):
    result = run_lint({"repro/serve/web.py": _ASYNC_CALLER,
                       "repro/jobs.py": _ASYNC_HELPER})
    payload = result.to_dict()
    chains = [f["chain"] for f in payload["findings"]
              if f["rule"] == "async-blocking"]
    assert chains and chains[0][0]["note"] == "async def handle"
    json.dumps(payload)              # must be serialisable as-is


# ------------------------------------------------- determinism and caching


def _many_files():
    """Enough files to clear the process-pool threshold."""
    files = {"repro/serve/web.py": _ASYNC_CALLER,
             "repro/jobs.py": _ASYNC_HELPER,
             "repro/kernels/alpha.py": _KERNEL_CALLER,
             "repro/support.py": _KERNEL_HELPER}
    for i in range(16):
        files[f"repro/filler/mod_{i:02d}.py"] = f"VALUE = {i}\n"
    return files


def test_output_identical_across_job_counts(run_lint, tmp_path):
    serial = run_lint(_many_files(), jobs=1, cache_dir="off")
    parallel = run_lint(_many_files(), jobs=4, cache_dir="off")
    dump = lambda r: json.dumps(r.to_dict(), sort_keys=True)  # noqa: E731
    assert dump(serial) == dump(parallel)
    assert not serial.ok             # the seeded violations are present


def test_warm_run_is_served_from_cache(run_lint, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_lint(_many_files(), jobs=1, cache_dir=str(cache_dir))
    cached = list(cache_dir.glob("*.pkl"))
    assert len(cached) == len(_many_files())

    # Poison analyze_one: a warm run must not need it.
    import repro.lint.engine as engine_mod

    def _boom(*a, **kw):             # pragma: no cover - failure path
        raise AssertionError("cache miss on a warm run")

    original = engine_mod.analyze_one
    engine_mod.analyze_one = _boom
    try:
        warm = lint_paths([str(tmp_path)], root=str(tmp_path),
                          baseline_path=None, env_doc_path=None,
                          jobs=1, cache_dir=str(cache_dir))
    finally:
        engine_mod.analyze_one = original
    dump = lambda r: json.dumps(r.to_dict(), sort_keys=True)  # noqa: E731
    assert dump(cold) == dump(warm)


def test_cache_invalidated_by_source_change(run_lint, tmp_path):
    cache_dir = tmp_path / "cache"
    first = run_lint({"repro/jobs.py": "VALUE = 1\n"},
                     cache_dir=str(cache_dir))
    assert first.files_checked == 1
    second = run_lint({"repro/jobs.py": "import time\n\n\n"
                       "def f():\n    return time.time()\n"},
                      cache_dir=str(cache_dir))
    # Edited file re-analyzed, not served stale from the cache.
    assert second.files_checked == 1
    assert not any(f.rule == "det-wallclock" for f in second.findings), \
        "repro/jobs.py is outside SIM_SCOPE; sanity check"
