"""Shared fixtures: small graphs and a small machine for fast tests."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, grid2d, tube_mesh
from repro.machine.config import KNF, MachineConfig


@pytest.fixture
def path10() -> CSRGraph:
    return chain(10)


@pytest.fixture
def k5() -> CSRGraph:
    return complete(5)


@pytest.fixture
def grid() -> CSRGraph:
    return grid2d(8, 6)


@pytest.fixture
def mesh() -> CSRGraph:
    """A small tube mesh with the suite graphs' structure."""
    return tube_mesh(600, section=30, clique=8, cliques_per_vertex=1.0,
                     coupling=3, hubs=2, hub_degree=12, seed=3)


@pytest.fixture
def random_graph() -> CSRGraph:
    return erdos_renyi(200, 800, seed=11)


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A 4-core, 2-way-SMT machine for cheap runtime simulations."""
    return KNF.with_(name="tiny", n_cores=4, smt_per_core=2)


def make_graph_from_edges(n, edges):
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
