"""Exporters: Chrome trace schema validity and JSONL round-trips."""

import json

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.obs import (Observer, chrome_trace_events, load_metrics_jsonl,
                       write_chrome_trace, write_metrics_jsonl)
from repro.obs.metrics import MetricsFrame
from repro.obs.tracer import PID_THREADS, Tracer, tracing
from repro.runtime.base import ProgrammingModel, RuntimeSpec


def run_loop(tiny_machine, threads=4, n=60):
    work = WorkCosts(np.full(n, 100.0), np.zeros(n), np.zeros(n))
    spec = RuntimeSpec(ProgrammingModel.OPENMP, chunk=10)
    return spec.parallel_for(tiny_machine, threads, work, tls_entries=8)


def assert_schema_valid(events):
    """The golden contract: required keys, known phases, balanced B/E."""
    depth = {}
    for ev in events:
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in ev, f"event missing {key}: {ev}"
        assert ev["ph"] in ("B", "E", "i", "M")
        assert isinstance(ev["tid"], int), "tids must resolve to ints"
        if ev["ph"] == "B":
            depth[(ev["pid"], ev["tid"])] = \
                depth.get((ev["pid"], ev["tid"]), 0) + 1
        elif ev["ph"] == "E":
            key = (ev["pid"], ev["tid"])
            depth[key] = depth.get(key, 0) - 1
            assert depth[key] >= 0, f"E without B on {key}"
    assert all(d == 0 for d in depth.values()), f"unbalanced spans: {depth}"


class TestChromeTrace:
    def test_schema_valid(self, tiny_machine):
        with tracing() as t:
            run_loop(tiny_machine)
        assert_schema_valid(chrome_trace_events(t))

    def test_metadata_names_tracks(self, tiny_machine):
        with tracing() as t:
            run_loop(tiny_machine)
        events = chrome_trace_events(t)
        names = [e for e in events if e["ph"] == "M"]
        assert {"sim-threads", "resources", "engine"} <= \
            {e["args"]["name"] for e in names if e["name"] == "process_name"}
        assert any(e["name"] == "thread_name"
                   and e["args"]["name"] == "omp-chunk-counter"
                   for e in names)

    def test_unclosed_spans_closed_at_export(self):
        t = Tracer()
        t.begin("work", PID_THREADS, 0, 0.0)
        t.begin("inner", PID_THREADS, 0, 5.0)
        t.instant("last", PID_THREADS, 0, 9.0)
        events = chrome_trace_events(t)
        assert_schema_valid(events)
        closers = [e for e in events if e["name"] == "(unclosed)"]
        assert len(closers) == 2
        assert all(e["ts"] == 9.0 for e in closers)

    def test_file_loads_as_json(self, tiny_machine, tmp_path):
        with tracing() as t:
            run_loop(tiny_machine)
        path = tmp_path / "trace.json"
        write_chrome_trace(t, path)
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert_schema_valid(data["traceEvents"])
        assert data["otherData"]["producer"] == "repro.obs"

    def test_byte_stable_across_runs(self, tiny_machine, tmp_path):
        paths = []
        for i in range(2):
            with tracing() as t:
                run_loop(tiny_machine)
            p = tmp_path / f"trace{i}.json"
            write_chrome_trace(t, p)
            paths.append(p.read_bytes())
        assert paths[0] == paths[1]


class TestMetricsJsonl:
    def test_roundtrip(self, tiny_machine, tmp_path):
        with Observer(trace=False) as obs:
            run_loop(tiny_machine)
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(obs.registry, path)
        frames = load_metrics_jsonl(path)
        assert frames == obs.frames

    def test_header_required(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"other": 1}\n')
        with pytest.raises(ValueError, match="not a repro metrics"):
            load_metrics_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_metrics_jsonl(path)

    def test_frame_list_accepted(self, tmp_path):
        frames = [MetricsFrame(index=0, label="l", span=5.0, n_threads=2)]
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(frames, path)
        assert load_metrics_jsonl(path) == frames


class TestStampsAndStability:
    def test_exports_are_byte_stable_without_a_stamp(self, tiny_machine,
                                                     tmp_path):
        blobs = []
        for i in range(2):
            with Observer() as obs:
                run_loop(tiny_machine)
            t, m = tmp_path / f"t{i}.json", tmp_path / f"m{i}.jsonl"
            obs.write(trace_path=t, metrics_path=m)
            blobs.append((t.read_bytes(), m.read_bytes()))
        assert blobs[0] == blobs[1]

    def test_stamp_clock_timestamps_both_artifacts(self, tiny_machine,
                                                   tmp_path):
        with Observer() as obs:
            run_loop(tiny_machine)
        t, m = tmp_path / "t.json", tmp_path / "m.jsonl"
        obs.write(trace_path=t, metrics_path=m, stamp=lambda: 7.0)
        assert json.loads(t.read_text())["otherData"]["generated_at"] == 7.0
        header = json.loads(m.read_text().splitlines()[0])
        assert header["generated_at"] == 7.0
        assert header["repro_metrics"] == 1

    def test_stamped_metrics_still_load(self, tiny_machine, tmp_path):
        with Observer(trace=False) as obs:
            run_loop(tiny_machine)
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(obs.registry, path, stamp=lambda: 1.0)
        assert load_metrics_jsonl(path) == obs.frames

    def test_json_keys_sorted(self, tiny_machine, tmp_path):
        with Observer(trace=False) as obs:
            run_loop(tiny_machine)
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(obs.registry, path)
        for line in path.read_text().splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)


class TestHalfDisabledObserver:
    def test_metrics_only_round_trip(self, tiny_machine, tmp_path):
        with Observer(trace=False) as obs:
            run_loop(tiny_machine)
        assert obs.tracer is None
        assert obs.frames
        path = tmp_path / "m.jsonl"
        obs.write(metrics_path=path)
        assert load_metrics_jsonl(path) == obs.frames

    def test_trace_only_round_trip(self, tiny_machine, tmp_path):
        with Observer(metrics=False) as obs:
            run_loop(tiny_machine)
        assert obs.registry is None
        assert obs.frames == []
        path = tmp_path / "t.json"
        obs.write(trace_path=path)
        assert_schema_valid(json.loads(path.read_text())["traceEvents"])

    def test_writing_the_disabled_half_is_an_error(self, tiny_machine,
                                                   tmp_path):
        with Observer(trace=False) as obs:
            run_loop(tiny_machine)
        with pytest.raises(ValueError, match="recorded no trace"):
            obs.write(trace_path=tmp_path / "t.json")
        with Observer(metrics=False) as obs:
            run_loop(tiny_machine)
        with pytest.raises(ValueError, match="recorded no metrics"):
            obs.write(metrics_path=tmp_path / "m.jsonl")

    def test_half_disabled_runs_match_fully_observed_cycles(self,
                                                            tiny_machine):
        spans = []
        for kwargs in ({}, {"trace": False}, {"metrics": False}):
            with Observer(**kwargs):
                spans.append(run_loop(tiny_machine).span)
        assert spans[0] == spans[1] == spans[2]


class TestReconciliation:
    def test_exported_totals_match_loop_stats(self, tiny_machine, tmp_path):
        """Counter totals written to disk equal the LoopStats fields."""
        with Observer(trace=False) as obs:
            stats = run_loop(tiny_machine)
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(obs.registry, path)
        (frame,) = load_metrics_jsonl(path)
        assert frame.busy_cycles == stats.busy_cycles
        assert frame.atomic_operations == stats.atomic_operations
        assert frame.counters["atomic.ops{var=omp-chunk-counter}"] \
            == stats.atomic_operations
        assert frame.counters["atomic.wait_cycles{var=omp-chunk-counter}"] \
            == pytest.approx(stats.atomic_wait_cycles)
        total = sum(frame.breakdown().values())
        assert total == pytest.approx(frame.thread_budget, rel=0.01)
