"""Tracer core: activation, recording, clock, and non-interference."""

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.obs import Observer, tracer as obs_tracer
from repro.obs.tracer import (PID_ENGINE, PID_THREADS, Tracer, active,
                              install, tracing, uninstall)
from repro.runtime.base import ProgrammingModel, RuntimeSpec, Schedule


def run_loop(tiny_machine, model=ProgrammingModel.OPENMP, threads=4, n=60):
    work = WorkCosts(np.full(n, 100.0), np.zeros(n), np.zeros(n))
    spec = RuntimeSpec(model, schedule=Schedule.DYNAMIC, chunk=10)
    return spec.parallel_for(tiny_machine, threads, work, tls_entries=8)


class TestActivation:
    def test_off_by_default(self):
        assert active() is None

    def test_install_uninstall(self):
        t = Tracer()
        install(t)
        try:
            assert active() is t
        finally:
            uninstall()
        assert active() is None

    def test_double_install_rejected(self):
        with tracing():
            with pytest.raises(RuntimeError, match="already installed"):
                install(Tracer())

    def test_install_type_checked(self):
        with pytest.raises(TypeError):
            install("not a tracer")


class TestRecording:
    def test_span_balances(self):
        t = Tracer()
        t.span("work", PID_THREADS, 0, 1.0, 5.0)
        assert [e["ph"] for e in t.events] == ["B", "E"]
        assert t.open_spans() == {}

    def test_span_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            Tracer().span("work", PID_THREADS, 0, 5.0, 1.0)

    def test_open_spans_tracks_depth(self):
        t = Tracer()
        t.begin("outer", PID_THREADS, 0, 0.0)
        t.begin("inner", PID_THREADS, 0, 1.0)
        assert t.open_spans() == {(PID_THREADS, 0): 2}
        t.end("inner", PID_THREADS, 0, 2.0)
        assert t.open_spans() == {(PID_THREADS, 0): 1}

    def test_offset_shifts_timestamps(self):
        t = Tracer()
        t.advance(100.0)
        t.instant("x", PID_ENGINE, 0, 5.0)
        assert t.events[-1]["ts"] == 105.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Tracer().advance(-1.0)


class TestInstrumentedRuns:
    def test_loop_records_chunk_spans(self, tiny_machine):
        with tracing() as t:
            stats = run_loop(tiny_machine)
        chunks = [e for e in t.events
                  if e["name"] == "chunk" and e["ph"] == "B"]
        assert len(chunks) == stats.n_chunks
        assert any(e["name"].startswith("loop:") for e in t.events)
        assert any(e["name"] == "barrier-wait" for e in t.events)
        assert any(e["name"] == "tls-init" for e in t.events)

    def test_resource_spans_recorded(self, tiny_machine):
        with tracing() as t:
            run_loop(tiny_machine)
        rmw = [e for e in t.events if e["name"] == "rmw"]
        assert rmw and all(e["tid"] == "omp-chunk-counter" for e in rmw)

    def test_steal_instants(self, tiny_machine):
        with tracing() as t:
            stats = run_loop(tiny_machine, model=ProgrammingModel.CILK)
        steals = [e for e in t.events if e["name"] == "steal"]
        assert len(steals) == stats.steals

    def test_tracing_does_not_change_timing(self, tiny_machine):
        bare = run_loop(tiny_machine)
        with tracing():
            traced = run_loop(tiny_machine)
        with Observer():
            observed = run_loop(tiny_machine)
        assert traced.span == bare.span
        assert observed.span == bare.span
        assert traced.busy_cycles == bare.busy_cycles
        assert [(c.lo, c.hi, c.thread, c.start, c.end) for c in traced.chunks] \
            == [(c.lo, c.hi, c.thread, c.start, c.end) for c in bare.chunks]

    def test_deterministic_byte_stable(self, tiny_machine):
        with tracing() as t1:
            run_loop(tiny_machine, model=ProgrammingModel.TBB)
        with tracing() as t2:
            run_loop(tiny_machine, model=ProgrammingModel.TBB)
        assert t1.events == t2.events

    def test_multi_loop_offset_advances(self, tiny_machine):
        with tracing() as t:
            s1 = run_loop(tiny_machine)
            s2 = run_loop(tiny_machine)
        assert t.offset == pytest.approx(s1.span + s2.span)
        loop_begins = [e for e in t.events
                       if e["name"].startswith("loop:") and e["ph"] == "B"]
        assert loop_begins[1]["ts"] == pytest.approx(s1.span)


class TestObserver:
    def test_requires_some_half(self):
        with pytest.raises(ValueError):
            Observer(trace=False, metrics=False)

    def test_installs_both(self):
        with Observer() as obs:
            assert obs_tracer.active() is obs.tracer
        assert obs_tracer.active() is None

    def test_trace_only(self):
        from repro.obs import metrics as obs_metrics
        with Observer(metrics=False) as obs:
            assert obs.tracer is not None
            assert obs_metrics.active() is None
            assert obs.frames == []
