"""Counter registry, frames, and LoopStats reconciliation."""

import numpy as np
import pytest

from repro.machine.costs import WorkCosts
from repro.obs import Observer
from repro.obs.metrics import (BREAKDOWN_FIELDS, MetricsFrame,
                               MetricsRegistry, collecting)
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule)


def run_loop(tiny_machine, spec, threads=4, n=60):
    work = WorkCosts(np.full(n, 100.0), np.zeros(n), np.zeros(n))
    return spec.parallel_for(tiny_machine, threads, work, tls_entries=8)


ALL_SPECS = [
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC, chunk=10),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC, chunk=10),
    RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.GUIDED, chunk=10),
    RuntimeSpec(ProgrammingModel.CILK, chunk=10),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE, chunk=10),
    RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.AFFINITY,
                chunk=10),
]


class TestCounters:
    def test_counter_keys_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", b="2", a="1").inc(3)
        assert reg.snapshot() == {"x{a=1,b=2}": 3.0}
        assert reg.counter("x", a="1", b="2").value == 3.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_loop_delta_is_sparse(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("b").inc(1)
        assert reg.loop_delta() == {"a": 2.0, "b": 1.0}
        reg.counter("a").inc(5)
        assert reg.loop_delta() == {"a": 5.0}  # b unchanged -> omitted

    def test_cell_labels_nest(self):
        reg = MetricsRegistry()
        with reg.cell(graph="g"):
            with reg.cell(threads=4):
                assert reg.current_cell() == {"graph": "g", "threads": 4}
            assert reg.current_cell() == {"graph": "g"}
        assert reg.current_cell() == {}


class TestFrames:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_frame_matches_loop_stats(self, tiny_machine, spec):
        with collecting() as reg:
            stats = run_loop(tiny_machine, spec)
        assert len(reg.frames) == 1
        f = reg.frames[0]
        assert f.span == stats.span
        assert f.busy_cycles == stats.busy_cycles
        assert f.sched_cycles == stats.sched_cycles
        assert f.atomic_wait_cycles == stats.atomic_wait_cycles
        assert f.atomic_operations == stats.atomic_operations
        assert f.tls_cycles == stats.tls_cycles
        assert f.tls_inits == stats.tls_inits
        assert f.steals == stats.steals
        assert f.n_chunks == stats.n_chunks

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_breakdown_accounts_for_budget(self, tiny_machine, spec):
        """busy + sched + atomic-wait + tls + hang + idle == span * threads
        within 1% — the acceptance invariant of the telemetry layer."""
        with collecting() as reg:
            run_loop(tiny_machine, spec)
        f = reg.frames[0]
        total = sum(f.breakdown().values())
        assert total == pytest.approx(f.thread_budget, rel=0.01)
        # and the *measured* part never exceeds the budget
        measured = total - f.idle_cycles
        assert measured <= f.thread_budget * 1.01

    def test_channel_saturation_bounded(self, tiny_machine):
        work = WorkCosts(np.full(60, 50.0), np.full(60, 10.0),
                         np.full(60, 2.0))
        spec = RuntimeSpec(ProgrammingModel.OPENMP, chunk=10)
        with collecting() as reg:
            spec.parallel_for(tiny_machine, 4, work)
        f = reg.frames[0]
        ch = f.channel
        assert ch["transfers"] > 0
        assert 0.0 < ch["saturation"] <= 1.0
        assert ch["n_banks"] == tiny_machine.mem_banks
        assert f.counters["channel.transfers"] == ch["transfers"]

    def test_counters_attached_to_frame(self, tiny_machine):
        spec = RuntimeSpec(ProgrammingModel.OPENMP, chunk=10)
        with collecting() as reg:
            stats = run_loop(tiny_machine, spec)
        counters = reg.frames[0].counters
        assert counters["atomic.ops{var=omp-chunk-counter}"] \
            == stats.atomic_operations
        assert counters["atomic.wait_cycles{var=omp-chunk-counter}"] \
            == pytest.approx(stats.atomic_wait_cycles)

    def test_steal_counters_by_victim(self, tiny_machine):
        spec = RuntimeSpec(ProgrammingModel.CILK, chunk=10)
        with collecting() as reg:
            stats = run_loop(tiny_machine, spec)
        steal_total = sum(v for k, v in reg.frames[0].counters.items()
                          if k.startswith("steals{"))
        assert steal_total == stats.steals

    def test_frame_roundtrip(self):
        f = MetricsFrame(index=3, label="loop", cell={"graph": "g"},
                         n_threads=4, span=10.0, busy_cycles=30.0,
                         idle_cycles=10.0, counters={"a": 1.0})
        back = MetricsFrame.from_dict(f.to_dict())
        assert back == f

    def test_metrics_do_not_change_timing(self, tiny_machine):
        spec = RuntimeSpec(ProgrammingModel.TBB, chunk=10)
        bare = run_loop(tiny_machine, spec)
        with Observer(trace=False):
            observed = run_loop(tiny_machine, spec)
        assert observed.span == bare.span
        assert observed.busy_cycles == bare.busy_cycles

    def test_breakdown_fields_cover_frame(self):
        f = MetricsFrame()
        assert set(BREAKDOWN_FIELDS) <= set(f.to_dict())


class TestKernelFrames:
    def test_coloring_emits_labeled_frames(self, mesh, tiny_machine):
        from repro.kernels.coloring.parallel import parallel_coloring
        spec = RuntimeSpec(ProgrammingModel.OPENMP, chunk=10)
        with collecting() as reg:
            with reg.cell(graph="mesh", variant="omp", threads=4):
                run = parallel_coloring(mesh, 4, spec,
                                        config=tiny_machine)
        assert len(reg.frames) == len(run.loop_stats)
        assert all(f.cell == {"graph": "mesh", "variant": "omp",
                              "threads": 4} for f in reg.frames)
        assert sum(f.span for f in reg.frames) \
            == pytest.approx(run.total_cycles)
        # cache-tier counters recorded on every profile use
        totals = {}
        for f in reg.frames:
            for k, v in f.counters.items():
                totals[k] = totals.get(k, 0.0) + v
        assert any(k.startswith("cache.accesses") for k in totals)
