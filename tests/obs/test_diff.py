"""Cross-run regression diffs over metrics frames and files."""

import pytest

from repro.obs.diff import (DEFAULT_THRESHOLD, diff_frames,
                            diff_metrics_files)
from repro.obs.export import write_metrics_jsonl
from repro.obs.metrics import MetricsFrame


def frame(span=100.0, busy=300.0, sched=50.0, idle=50.0, threads=4,
          label="loop", cell=None):
    return MetricsFrame(label=label, cell=cell or {"graph": "g"},
                        n_threads=threads, span=span, busy_cycles=busy,
                        sched_cycles=sched, idle_cycles=idle)


class TestDiffFrames:
    def test_identical_ok(self):
        base = [frame(), frame(label="other")]
        report = diff_frames(base, [frame(), frame(label="other")])
        assert report.ok
        assert not report.breaches

    def test_drift_past_threshold_breaches(self):
        report = diff_frames([frame(busy=300.0)], [frame(busy=400.0)])
        assert not report.ok
        (breach,) = report.breaches
        assert breach.component == "busy_cycles"
        assert breach.drift == pytest.approx(1 / 3)
        assert breach.regressed

    def test_drift_under_threshold_ok(self):
        report = diff_frames([frame(busy=300.0)], [frame(busy=330.0)])
        assert report.ok
        assert any(r.drift > 0 for r in report.rows)

    def test_small_component_uses_noise_floor(self):
        # 1 -> 4 cycles is a 300% relative change, but the 40000-cycle
        # budget puts the noise floor at 400, so the drift is tiny.
        report = diff_frames([frame(span=10000.0, sched=1.0)],
                             [frame(span=10000.0, sched=4.0)])
        assert report.ok

    def test_structural_mismatch_fails(self):
        report = diff_frames([frame(cell={"graph": "a"})],
                             [frame(cell={"graph": "b"})])
        assert not report.ok
        assert report.missing == ["graph=a loop=loop"]
        assert report.added == ["graph=b loop=loop"]

    def test_frames_grouped_by_cell_and_label(self):
        base = [frame(busy=100.0), frame(busy=200.0)]  # same cell: summed
        cur = [frame(busy=150.0), frame(busy=150.0)]
        report = diff_frames(base, cur)
        assert report.ok  # 300 == 300 after aggregation

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            diff_frames([], [], threshold=0.0)

    def test_default_threshold(self):
        assert DEFAULT_THRESHOLD == 0.20

    def test_format_mentions_verdict(self):
        good = diff_frames([frame()], [frame()])
        assert "OK" in good.format()
        bad = diff_frames([frame(busy=300.0)], [frame(busy=500.0)])
        out = bad.format()
        assert "REGRESSION" in out and "busy_cycles" in out


class TestDiffFiles:
    def test_file_diff(self, tmp_path):
        base_path, cur_path = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        write_metrics_jsonl([frame()], base_path)
        write_metrics_jsonl([frame(busy=500.0)], cur_path)
        report = diff_metrics_files(base_path, cur_path)
        assert not report.ok

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.experiments.cli import main
        base_path, cur_path = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        write_metrics_jsonl([frame()], base_path)
        write_metrics_jsonl([frame()], cur_path)
        assert main(["diff-metrics", str(base_path), str(cur_path)]) == 0
        write_metrics_jsonl([frame(busy=500.0)], cur_path)
        assert main(["diff-metrics", str(base_path), str(cur_path)]) == 1
        assert main(["diff-metrics", str(base_path)]) == 2
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_cli_threshold_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main
        base_path, cur_path = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
        write_metrics_jsonl([frame(busy=300.0)], base_path)
        write_metrics_jsonl([frame(busy=330.0)], cur_path)  # +10%
        assert main(["diff-metrics", str(base_path), str(cur_path)]) == 0
        assert main(["diff-metrics", str(base_path), str(cur_path),
                     "--threshold", "0.05"]) == 1
        capsys.readouterr()
