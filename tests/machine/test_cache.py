"""Tests for the cache/locality model."""

import numpy as np
import pytest

from repro.graph.generators import tube_mesh
from repro.graph.reorder import apply_ordering
from repro.machine.cache import access_profile, access_profile_cached
from repro.machine.config import KNF


@pytest.fixture(scope="module")
def banded():
    return tube_mesh(2000, 100, 12, 1.0, 4, seed=2)


@pytest.fixture(scope="module")
def shuffled(banded):
    return apply_ordering(banded, "random", seed=1)


class TestAccessProfile:
    def test_shapes(self, banded):
        p = access_profile(banded, KNF, 4)
        assert len(p.stall) == banded.n_vertices
        assert len(p.volume) == banded.n_vertices
        assert np.all(p.stall >= 0)
        assert np.all(p.volume >= 0)

    def test_probabilities_sum_to_one(self, banded):
        p = access_profile(banded, KNF, 8)
        assert p.p_local + p.p_remote + p.p_dram == pytest.approx(1.0)

    def test_natural_order_mostly_local(self, banded):
        p = access_profile(banded, KNF, 1, cache_scale=1.0)
        assert p.p_local > 0.8

    def test_shuffle_destroys_hits(self, banded, shuffled):
        # cache scaled to the test graph's size, as the harness does
        pn = access_profile(banded, KNF, 1, cache_scale=0.02)
        ps = access_profile(shuffled, KNF, 1, cache_scale=0.02)
        assert ps.p_local < 0.3 * pn.p_local + 0.1
        assert ps.stall.mean() > 2 * pn.stall.mean()

    def test_smt_residency_pressure(self, banded):
        """More threads per core -> smaller cache share -> fewer hits."""
        p1 = access_profile(banded, KNF, KNF.n_cores, cache_scale=0.05)
        p4 = access_profile(banded, KNF, 4 * KNF.n_cores, cache_scale=0.05)
        assert p4.p_local < p1.p_local

    def test_aggregate_cache_residency(self, shuffled):
        """More cores used -> misses served by peer caches, not DRAM."""
        p1 = access_profile(shuffled, KNF, 1, cache_scale=0.1)
        p31 = access_profile(shuffled, KNF, 31, cache_scale=0.1)
        assert p1.p_dram > 0.5
        assert p31.p_remote > 0.5
        assert p31.p_dram < 0.1
        # remote hits are cheaper, so the many-core stall is lower
        assert p31.stall.mean() < p1.stall.mean()

    def test_cache_scale_shrinks_hits(self, banded):
        big = access_profile(banded, KNF, 1, cache_scale=1.0)
        small = access_profile(banded, KNF, 1, cache_scale=0.01)
        assert small.p_local < big.p_local

    def test_state_bytes_increase_footprint(self, banded):
        p4 = access_profile(banded, KNF, 1, state_bytes=4, cache_scale=0.05)
        p8 = access_profile(banded, KNF, 1, state_bytes=8, cache_scale=0.05)
        assert p8.p_local <= p4.p_local + 1e-9

    def test_volume_includes_adjacency_stream(self, banded):
        p = access_profile(banded, KNF, 31)
        stream = banded.degrees * 4 / KNF.line_bytes
        assert np.all(p.volume >= stream - 1e-9)

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph
        p = access_profile(CSRGraph.from_edges(0, []), KNF, 1)
        assert len(p.stall) == 0

    def test_invalid_args(self, banded):
        with pytest.raises(ValueError):
            access_profile(banded, KNF, 0)
        with pytest.raises(ValueError):
            access_profile(banded, KNF, 1, state_bytes=0)
        with pytest.raises(ValueError):
            access_profile(banded, KNF, 1, cache_scale=0.0)

    def test_cached_wrapper_identity(self, banded):
        a = access_profile_cached(banded, KNF, 4, 4, 1.0)
        b = access_profile_cached(banded, KNF, 4, 4, 1.0)
        assert a is b
