"""Simulation vs. closed-form SMT roofline consistency.

In controlled conditions (uniform work, static scheduling, no TLS, chunk
counts that divide evenly) the event simulation must agree with the
analytic :mod:`repro.models.smt_model` — this pins the simulator's core
physics against an independent derivation.
"""

import numpy as np
import pytest

from repro.machine.config import KNF
from repro.machine.costs import WorkCosts
from repro.models.smt_model import smt_speedup
from repro.runtime.base import ProgrammingModel, RuntimeSpec, Schedule


def measured_speedup(compute, stall, n_threads, config, n_items=4960,
                     chunk=10):
    work = WorkCosts(np.full(n_items, compute), np.full(n_items, stall),
                     np.zeros(n_items))
    spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC,
                       chunk=chunk)
    t1 = spec.parallel_for(config, 1, work, fork=False).span
    tt = spec.parallel_for(config, n_threads, work, fork=False).span
    return t1 / tt


# (compute, stall) per item spanning memory-bound to compute-bound
CASES = [(50.0, 1000.0), (200.0, 400.0), (400.0, 50.0)]


@pytest.mark.parametrize("compute,stall", CASES)
@pytest.mark.parametrize("n_threads", [31, 62, 124])
def test_sim_matches_roofline(compute, stall, n_threads):
    analytic = smt_speedup(compute, stall, n_threads, KNF)
    measured = measured_speedup(compute, stall, n_threads, KNF)
    # within 12%: the sim adds barrier + dispatch overheads the closed
    # form ignores, nothing else
    assert measured == pytest.approx(analytic, rel=0.12)


def test_sim_never_beats_roofline_by_much():
    """The analytic bound is an upper envelope (modulo sampling jitter)."""
    for compute, stall in CASES:
        for t in (31, 124):
            analytic = smt_speedup(compute, stall, t, KNF)
            measured = measured_speedup(compute, stall, t, KNF)
            assert measured <= 1.05 * analytic
