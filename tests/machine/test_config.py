"""Machine configuration sanity (KNF and the host Xeon)."""

import pytest

from repro.machine.config import HOST_XEON, KNF


class TestKnf:
    def test_topology_matches_paper(self):
        """§V-A: 31 usable cores, 4-way SMT, 121 threads used at most."""
        assert KNF.n_cores == 31
        assert KNF.smt_per_core == 4
        assert KNF.max_threads == 124
        assert KNF.max_threads >= 121

    def test_in_order_pipeline(self):
        assert KNF.issue_width == 1.0

    def test_memory_hierarchy_ordering(self):
        assert KNF.local_hit_cycles < KNF.remote_hit_cycles < KNF.dram_cycles

    def test_cache_is_256k(self):
        assert KNF.cache_lines_per_core * KNF.line_bytes == 256 * 1024


class TestHostXeon:
    def test_topology_matches_paper(self):
        """§V-A: dual X5680 = 12 cores with HyperThreading (24 threads)."""
        assert HOST_XEON.n_cores == 12
        assert HOST_XEON.smt_per_core == 2
        assert HOST_XEON.max_threads == 24

    def test_out_of_order_advantages(self):
        """The host hides more and issues more per cycle than the KNF."""
        assert HOST_XEON.issue_width > KNF.issue_width
        assert HOST_XEON.dram_cycles < KNF.dram_cycles
        assert HOST_XEON.stream_visibility < KNF.stream_visibility
        assert HOST_XEON.alloc_cycles < KNF.alloc_cycles

    def test_less_smt_headroom(self):
        """2-way HT gives less latency-hiding than the KNF's 4-way SMT —
        the reason Fig 4(d) curves look so different from Fig 4(c)."""
        assert HOST_XEON.smt_per_core < KNF.smt_per_core


class TestWithOverride:
    def test_immutable(self):
        with pytest.raises(Exception):
            KNF.n_cores = 4

    def test_override_single_field(self):
        mod = KNF.with_(dram_cycles=999.0)
        assert mod.dram_cycles == 999.0
        assert mod.atomic_cycles == KNF.atomic_cycles
