"""Tests for kernel cost assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import tube_mesh
from repro.machine.cache import access_profile
from repro.machine.config import KNF
from repro.machine.costs import (WorkCosts, bfs_scan_costs,
                                 coloring_conflict_costs,
                                 coloring_tentative_costs, irregular_costs)


@pytest.fixture(scope="module")
def mesh_and_profile():
    g = tube_mesh(800, 40, 10, 1.0, 3, seed=4)
    return g, access_profile(g, KNF, 4)


class TestWorkCosts:
    def test_range_cost_matches_manual_sum(self):
        rng = np.random.default_rng(0)
        w = WorkCosts(rng.random(50), rng.random(50), rng.random(50))
        c, s, v = w.range_cost(7, 23)
        assert c == pytest.approx(w.compute[7:23].sum())
        assert s == pytest.approx(w.stall[7:23].sum())
        assert v == pytest.approx(w.volume[7:23].sum())

    def test_empty_range(self):
        w = WorkCosts(np.ones(5), np.ones(5), np.ones(5))
        assert w.range_cost(3, 3) == (0.0, 0.0, 0.0)

    def test_total(self):
        w = WorkCosts(np.ones(5), 2 * np.ones(5), 3 * np.ones(5))
        assert w.total == (5.0, 10.0, 15.0)

    def test_out_of_bounds(self):
        w = WorkCosts(np.ones(5), np.ones(5), np.ones(5))
        with pytest.raises(IndexError):
            w.range_cost(0, 6)
        with pytest.raises(IndexError):
            w.range_cost(-1, 3)

    def test_take_subset(self):
        w = WorkCosts(np.arange(10.0), np.zeros(10), np.zeros(10))
        sub = w.take(np.asarray([3, 7, 1]))
        assert list(sub.compute) == [3.0, 7.0, 1.0]
        assert len(sub) == 3

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            WorkCosts(np.ones(3), np.ones(4), np.ones(3))

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_prefix_sum_consistency(self, values, data):
        arr = np.asarray(values)
        w = WorkCosts(arr, arr, arr)
        lo = data.draw(st.integers(0, len(arr)))
        hi = data.draw(st.integers(lo, len(arr)))
        c, _, _ = w.range_cost(lo, hi)
        assert c == pytest.approx(arr[lo:hi].sum(), abs=1e-6 * max(1, arr.sum()))


class TestKernelCosts:
    def test_coloring_scales_with_degree(self, mesh_and_profile):
        g, p = mesh_and_profile
        w = coloring_tentative_costs(g, p)
        hub = int(np.argmax(g.degrees))
        leaf = int(np.argmin(g.degrees))
        assert w.compute[hub] > w.compute[leaf]

    def test_conflict_cheaper_than_tentative(self, mesh_and_profile):
        g, p = mesh_and_profile
        tent = coloring_tentative_costs(g, p)
        conf = coloring_conflict_costs(g, p)
        assert conf.compute.sum() < tent.compute.sum()
        assert conf.stall.sum() < tent.stall.sum()

    def test_irregular_compute_grows_linearly_in_iterations(self, mesh_and_profile):
        g, p = mesh_and_profile
        w1 = irregular_costs(g, p, 1, KNF.local_hit_cycles)
        w5 = irregular_costs(g, p, 5, KNF.local_hit_cycles)
        assert w5.compute.sum() > 4.5 * w1.compute.sum()
        # memory volume is paid once (first pass)
        assert w5.volume.sum() == pytest.approx(w1.volume.sum())

    def test_irregular_moves_toward_compute_bound(self, mesh_and_profile):
        """The Figure 3 axis: stall/compute ratio falls with iterations."""
        g, p = mesh_and_profile
        r = []
        for it in (1, 3, 10):
            w = irregular_costs(g, p, it, KNF.local_hit_cycles)
            r.append(w.stall.sum() / w.compute.sum())
        assert r[0] > r[1] > r[2]

    def test_irregular_rejects_zero_iterations(self, mesh_and_profile):
        g, p = mesh_and_profile
        with pytest.raises(ValueError):
            irregular_costs(g, p, 0, 6.0)

    def test_bfs_scan_positive(self, mesh_and_profile):
        g, p = mesh_and_profile
        w = bfs_scan_costs(g, p)
        assert np.all(w.compute > 0)
        assert len(w) == g.n_vertices


class TestWorkCostsValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            WorkCosts(np.array([-1.0]), np.zeros(1), np.zeros(1))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="finite"):
            WorkCosts(np.array([np.nan]), np.zeros(1), np.zeros(1))
        with pytest.raises(ValueError, match="finite"):
            WorkCosts(np.zeros(1), np.array([np.inf]), np.zeros(1))
