"""Tests for the SMT core/chip timing model."""

import pytest

from repro.machine.config import KNF
from repro.machine.core import Chip, Core


class TestCore:
    def test_begin_finish(self):
        c = Core(0)
        c.begin()
        c.begin()
        assert c.busy == 2
        c.finish()
        assert c.busy == 1

    def test_finish_without_begin(self):
        with pytest.raises(RuntimeError):
            Core(0).finish()


class TestChip:
    def test_thread_limits(self):
        with pytest.raises(ValueError):
            Chip(KNF, 0)
        with pytest.raises(ValueError, match="hardware contexts"):
            Chip(KNF, KNF.max_threads + 1)

    def test_scatter_placement(self):
        chip = Chip(KNF, 62)
        assert chip.core_of(0).index == 0
        assert chip.core_of(31).index == 0  # wraps to core 0
        assert chip.core_of(30).index == 30
        assert chip.threads_per_core() == 2
        assert chip.cores_used() == 31

    def test_cores_used_small(self):
        assert Chip(KNF, 5).cores_used() == 5

    def test_memory_bound_chunk_ignores_occupancy(self):
        """stall >> compute: duration = compute + stall regardless of k."""
        chip = Chip(KNF, 4)
        core = chip.core_of(0)
        for _ in range(4):
            core.begin()
        d = chip.execute(0.0, 0, compute=100.0, stall=5000.0, volume=0.0)
        assert d == pytest.approx(5100.0)

    def test_compute_bound_chunk_shares_issue(self):
        """compute >> stall: k residents serialise on the pipeline."""
        chip = Chip(KNF, 4)
        core = chip.core_of(0)
        for _ in range(4):
            core.begin()
        d = chip.execute(0.0, 0, compute=1000.0, stall=10.0, volume=0.0)
        assert d == pytest.approx(4000.0)

    def test_single_thread_latency_bound(self):
        chip = Chip(KNF, 1)
        chip.core_of(0).begin()
        d = chip.execute(0.0, 0, compute=100.0, stall=400.0, volume=0.0)
        assert d == pytest.approx(500.0)

    def test_bandwidth_limit_applies(self):
        narrow = KNF.with_(mem_banks=1, dram_transfer_cycles=10.0)
        chip = Chip(narrow, 2)
        chip.core_of(0).begin()
        d1 = chip.execute(0.0, 0, compute=10.0, stall=10.0, volume=100.0)
        assert d1 == pytest.approx(1000.0)  # 100 lines * 10 cycles
        chip.core_of(1).begin()
        d2 = chip.execute(0.0, 1, compute=10.0, stall=10.0, volume=10.0)
        assert d2 == pytest.approx(1100.0)  # queues behind the first

    def test_issue_width_speeds_compute(self):
        wide = KNF.with_(issue_width=2.0)
        chip = Chip(wide, 1)
        chip.core_of(0).begin()
        d = chip.execute(0.0, 0, compute=1000.0, stall=0.0, volume=0.0)
        assert d == pytest.approx(500.0)

    def test_config_properties(self):
        assert KNF.max_threads == 124
        assert KNF.aggregate_cache_lines == 31 * KNF.cache_lines_per_core
        assert KNF.barrier_cost(1) == 0.0
        assert KNF.barrier_cost(2) == KNF.barrier_hop_cycles
        assert KNF.barrier_cost(121) == KNF.barrier_hop_cycles * 7

    def test_with_creates_modified_copy(self):
        mod = KNF.with_(n_cores=8)
        assert mod.n_cores == 8
        assert KNF.n_cores == 31
        assert mod.smt_per_core == KNF.smt_per_core
