"""The example scripts must run end to end (they are documentation)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout)


@pytest.mark.parametrize("name,expect", [
    ("quickstart.py", "parallel layered BFS produced the exact same"),
    ("applications.py", "task scheduling"),
])
def test_example_runs(name, expect):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expect in result.stdout


def test_all_examples_exist_and_compile():
    import py_compile
    names = [f for f in os.listdir(EXAMPLES) if f.endswith(".py")]
    assert len(names) >= 5
    for name in names:
        py_compile.compile(os.path.join(EXAMPLES, name), doraise=True)
