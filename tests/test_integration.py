"""Cross-module integration tests: whole pipelines end to end."""

import numpy as np
import pytest

import repro
from repro.graph import apply_ordering, graph_properties, tube_mesh
from repro.kernels.bfs import simulate_bfs
from repro.kernels.coloring.parallel import parallel_coloring
from repro.kernels.irregular import simulate_irregular
from repro.machine.config import HOST_XEON, KNF
from repro.models import bfs_model_speedup_for_graph
from repro.runtime import (Partitioner, ProgrammingModel, RuntimeSpec,
                           Schedule, TlsMode)


@pytest.fixture(scope="module")
def g():
    return tube_mesh(3000, 60, 12, 1.0, 4, hubs=3, hub_degree=40, seed=11)


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestColoringPipeline:
    def test_io_reorder_color_verify(self, g, tmp_path):
        """Write -> read -> shuffle -> parallel colour -> verify."""
        from repro.graph.io import load_graph, write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = load_graph(path)
        assert g.structurally_equal(g2)
        shuffled = apply_ordering(g2, "random", seed=3)
        spec = RuntimeSpec(ProgrammingModel.TBB,
                           partitioner=Partitioner.SIMPLE, chunk=8)
        run = parallel_coloring(shuffled, 16, spec, KNF, cache_scale=0.05,
                                seed=1)
        assert repro.verify_coloring(shuffled, run.colors)

    def test_coloring_quality_independent_of_ordering(self, g):
        """Colour counts stay within a small band across orderings."""
        counts = {}
        for ordering in ("natural", "random", "rcm", "degree"):
            gg = apply_ordering(g, ordering, seed=2)
            n, colors = repro.greedy_coloring(gg)
            assert repro.verify_coloring(gg, colors)
            counts[ordering] = n
        assert max(counts.values()) <= 2 * min(counts.values())


class TestCrossMachine:
    def test_same_kernel_both_machines(self, g):
        """KNF vs host: the host has fewer threads but a stronger core."""
        spec = RuntimeSpec(ProgrammingModel.OPENMP,
                           schedule=Schedule.DYNAMIC, chunk=8)
        knf = parallel_coloring(g, 1, spec, KNF, cache_scale=0.05)
        host = parallel_coloring(g, 1, spec, HOST_XEON, cache_scale=0.05)
        assert host.total_cycles < knf.total_cycles  # OoO width + caches
        assert np.array_equal(knf.colors, host.colors)  # semantics identical

    def test_host_thread_limit_enforced(self, g):
        spec = RuntimeSpec(ProgrammingModel.OPENMP)
        with pytest.raises(ValueError, match="hardware contexts"):
            parallel_coloring(g, 25, spec, HOST_XEON)


class TestBfsPipeline:
    def test_all_variants_agree_and_model_bounds(self, g):
        ref = repro.bfs_sequential(g, g.n_vertices // 2)
        model31 = bfs_model_speedup_for_graph(g, 31, block=8)
        t1 = simulate_bfs(g, 1, block=8, config=KNF,
                          cache_scale=0.05).total_cycles
        for variant in ("openmp-block", "tbb-block", "openmp-tls", "cilk-bag"):
            run = simulate_bfs(g, 31, variant=variant, block=8, config=KNF,
                               cache_scale=0.05, seed=2)
            assert np.array_equal(run.dist, ref), variant
        # the block queue's measured speedup is the same magnitude as the
        # analytic model (the §V-D conclusion)
        t31 = simulate_bfs(g, 31, block=8, config=KNF, cache_scale=0.05,
                           seed=2).total_cycles
        assert t1 / t31 == pytest.approx(model31, rel=0.8)

    def test_properties_feed_model(self, g):
        props = graph_properties(g)
        assert props.n_bfs_levels > 10
        s = bfs_model_speedup_for_graph(g, 121, block=8)
        width = g.n_vertices / props.n_bfs_levels
        assert s <= width / 8 + 1.5  # capped by blocks per level


class TestIrregularPipeline:
    def test_state_matches_direct_kernel(self, g):
        run = simulate_irregular(g, 8, iterations=3, config=KNF,
                                 compute_state=True)
        direct = repro.irregular_kernel(g, iterations=3)
        assert np.allclose(run.state, direct)

    def test_all_models_same_semantics_different_time(self, g):
        specs = [RuntimeSpec(ProgrammingModel.OPENMP, chunk=8),
                 RuntimeSpec(ProgrammingModel.CILK, chunk=8),
                 RuntimeSpec(ProgrammingModel.TBB, chunk=8)]
        times = [simulate_irregular(g, 16, 2, spec=s, config=KNF,
                                    cache_scale=0.05, seed=1).total_cycles
                 for s in specs]
        assert len({round(t) for t in times}) > 1  # runtimes differ in time
