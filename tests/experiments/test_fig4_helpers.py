"""Fig 4 helper functions."""

import numpy as np
import pytest

from repro.experiments.fig4_bfs import BLOCK_SIZE, model_series


class TestModelSeries:
    def test_normalised_at_one_thread(self):
        s = model_series(["pwtk"], [1, 31, 121])
        assert s[0] == pytest.approx(1.0)
        assert np.all(np.diff(s) >= -1e-9)

    def test_geomean_over_graphs(self):
        a = model_series(["pwtk"], [1, 31])
        b = model_series(["inline_1"], [1, 31])
        ab = model_series(["pwtk", "inline_1"], [1, 31])
        assert ab[1] == pytest.approx(np.sqrt(a[1] * b[1]))

    def test_block_size_matters(self):
        """Smaller blocks expose more per-level parallelism in the model
        (the normalisation point is the 1-thread entry)."""
        wide = model_series(["pwtk"], [1, 31], block=1)
        coarse = model_series(["pwtk"], [1, 31], block=BLOCK_SIZE * 8)
        assert wide[1] > coarse[1]
