"""Chunk-size tuning sweep (§V-B methodology)."""

from repro.experiments.chunk_sweep import CHUNK_SIZES, run_chunk_sweep
from repro.runtime.base import Schedule


class TestChunkSweep:
    def test_sweep_shape(self):
        panel = run_chunk_sweep(Schedule.DYNAMIC, graphs=["hood"],
                                threads=[1, 31, 121])
        assert len(panel.series) == len(CHUNK_SIZES)
        top = panel.thread_counts[-1]
        values = {label: panel.at(label, top) for label in panel.series}
        # the tuning tradeoff exists: neither the smallest nor the largest
        # chunk is strictly dominant at full thread count
        best = max(values, key=values.get)
        assert best not in (f"chunk={CHUNK_SIZES[-1]}",)
        # very coarse chunks quantise badly at 121 threads
        assert values[f"chunk={CHUNK_SIZES[0]}"] > \
            0.5 * values[best]
