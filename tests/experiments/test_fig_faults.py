"""Integration: the fault-intensity experiment on a reduced sweep."""

import numpy as np
import pytest

GRAPHS = ["pwtk"]
INTENSITIES = [0, 100]


@pytest.fixture(scope="module")
def panels():
    from repro.experiments.fig_faults import run_fig_faults
    return run_fig_faults(graphs=GRAPHS, intensities=INTENSITIES)


class TestDegradationPanels:
    def test_both_kernels_present(self, panels):
        assert set(panels) == {"coloring", "bfs"}

    def test_intensity_axis(self, panels):
        for p in panels.values():
            assert p.thread_counts == INTENSITIES

    def test_healthy_baseline_is_one(self, panels):
        from repro.experiments.fig_faults import FAULT_RUNTIMES
        for p in panels.values():
            for v in FAULT_RUNTIMES:
                assert p.series[v][0] == pytest.approx(1.0)

    def test_faults_degrade_not_corrupt(self, panels):
        # degrading kinds slow runs (ratio <= 1) and every cell validated
        for p in panels.values():
            assert not p.failures
            for s in p.series.values():
                assert np.all(s <= 1.0 + 1e-9)
            assert any(s[-1] < 1.0 for s in p.series.values())


class TestKillSurvival:
    def test_static_alone_fails_validation(self):
        from repro.experiments.fig_faults import kill_survival_rows
        headers, rows = kill_survival_rows(GRAPHS[0])
        assert headers[0] == "runtime"
        by_runtime = {r[0]: r for r in rows}
        assert all(r[1] for r in rows)  # every runtime completes
        assert not by_runtime["OpenMP-static"][2]  # pre-dealt work lost
        for name in ("OpenMP-dynamic", "CilkPlus-holder", "TBB-simple"):
            assert by_runtime[name][2]  # redistribution keeps output valid


class TestKnobs:
    def test_fault_seed_env(self, monkeypatch):
        from repro.experiments.fig_faults import fault_seed
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert fault_seed() == 0
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        assert fault_seed() == 7

    def test_fast_mode_shrinks_sweep(self, monkeypatch):
        from repro.experiments import fig_faults
        monkeypatch.setenv("REPRO_FAST", "1")
        assert len(fig_faults._intensities()) < len(fig_faults.INTENSITIES)
        monkeypatch.delenv("REPRO_FAST")
        assert fig_faults._intensities() == fig_faults.INTENSITIES

    def test_cli_lists_fig_faults(self):
        from repro.experiments.cli import _CHOICES
        assert "fig-faults" in _CHOICES
