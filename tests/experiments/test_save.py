"""Panel JSON serialisation round-trips."""

import numpy as np
import pytest

from repro.experiments.harness import PanelResult
from repro.experiments.save import (load_panels, panel_from_dict,
                                    panel_to_dict, save_panels)


def make_panel():
    p = PanelResult(title="demo", thread_counts=[1, 31, 121], notes="n")
    p.series = {"A": np.array([1.0, 20.5, 70.0]),
                "B": np.array([0.9, 18.0, 50.0])}
    p.per_graph = {("A", "g1"): np.array([1.0, 21.0, 72.0]),
                   ("A", "g2"): np.array([1.0, 20.0, 68.1])}
    p.baselines = {"g1": 1e6, "g2": 2e6}
    return p


class TestRoundTrip:
    def test_dict_roundtrip(self):
        p = make_panel()
        q = panel_from_dict(panel_to_dict(p))
        assert q.title == p.title
        assert q.thread_counts == p.thread_counts
        assert np.allclose(q.series["A"], p.series["A"])
        assert np.allclose(q.per_graph[("A", "g2")], p.per_graph[("A", "g2")])
        assert q.baselines == p.baselines
        assert q.notes == "n"

    def test_file_roundtrip_single(self, tmp_path):
        path = tmp_path / "p.json"
        save_panels(make_panel(), path)
        loaded = load_panels(path)
        assert list(loaded) == ["demo"]
        assert loaded["demo"].at("A", 121) == pytest.approx(70.0)

    def test_file_roundtrip_dict(self, tmp_path):
        path = tmp_path / "p.json"
        save_panels({"x": make_panel()}, path)
        assert "x" in load_panels(path)

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_panels(path)


class TestFailuresRoundTrip:
    def test_failures_survive_roundtrip(self):
        p = make_panel()
        p.failures = {("g1", "A", 31): "RuntimeError: boom"}
        q = panel_from_dict(panel_to_dict(p))
        assert q.failures == p.failures

    def test_old_files_without_failures_load(self):
        d = panel_to_dict(make_panel())
        del d["failures"]
        assert panel_from_dict(d).failures == {}

    def test_file_roundtrip_with_failures_and_nan(self, tmp_path):
        """Partial panels (failures + NaN cells) survive a file round-trip."""
        import math
        from repro.experiments.harness import geomean
        p = make_panel()
        p.series["A"] = np.array([1.0, float("nan"), 70.0])
        p.per_graph[("A", "g1")] = np.array([1.0, float("nan"), 72.0])
        p.failures = {("g1", "A", 31): "RuntimeError: boom",
                      ("g2", "A", 31): "ValueError: bad cell"}
        path = tmp_path / "partial.json"
        save_panels(p, path)
        q = load_panels(path)["demo"]
        assert q.failures == p.failures
        assert math.isnan(q.series["A"][1])
        assert math.isnan(q.per_graph[("A", "g1")][1])
        assert q.at("A", 121) == pytest.approx(70.0)
        # geomean over the reloaded per-graph column skips the NaN: the
        # surviving graph still aggregates.
        col = [q.per_graph[("A", "g1")][1], q.per_graph[("A", "g2")][1]]
        assert geomean(col) == pytest.approx(20.0)


class TestCheckpoint:
    def test_roundtrip_with_nan(self, tmp_path):
        import math
        from repro.experiments.save import load_checkpoint, save_checkpoint
        path = tmp_path / "ck.json"
        cells = {("g1", "A", 1): 1000.0, ("g1", "A", 31): float("nan")}
        save_checkpoint(path, "panel", cells)
        loaded = load_checkpoint(path, "panel")
        assert loaded[("g1", "A", 1)] == 1000.0
        assert math.isnan(loaded[("g1", "A", 31)])
        assert set(loaded) == set(cells)

    def test_missing_file_is_empty(self, tmp_path):
        from repro.experiments.save import load_checkpoint
        assert load_checkpoint(tmp_path / "nope.json", "panel") == {}

    def test_unknown_title_is_empty(self, tmp_path):
        from repro.experiments.save import load_checkpoint, save_checkpoint
        path = tmp_path / "ck.json"
        save_checkpoint(path, "a", {("g", "v", 1): 1.0})
        assert load_checkpoint(path, "b") == {}

    def test_titles_merge_in_one_file(self, tmp_path):
        from repro.experiments.save import load_checkpoint, save_checkpoint
        path = tmp_path / "ck.json"
        save_checkpoint(path, "a", {("g", "v", 1): 1.0})
        save_checkpoint(path, "b", {("g", "v", 2): 2.0})
        assert load_checkpoint(path, "a") == {("g", "v", 1): 1.0}
        assert load_checkpoint(path, "b") == {("g", "v", 2): 2.0}

    def test_corrupt_file_overwritten_not_crashed(self, tmp_path):
        from repro.experiments.save import load_checkpoint, save_checkpoint
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        save_checkpoint(path, "a", {("g", "v", 1): 1.0})
        assert load_checkpoint(path, "a") == {("g", "v", 1): 1.0}

    def test_no_tmp_file_left_behind(self, tmp_path):
        from repro.experiments.save import save_checkpoint
        path = tmp_path / "ck.json"
        save_checkpoint(path, "a", {("g", "v", 1): 1.0})
        assert [f.name for f in tmp_path.iterdir()] == ["ck.json"]

    def test_truncated_checkpoint_warns_and_resumes_empty(self, tmp_path):
        from repro.experiments.save import load_checkpoint, save_checkpoint
        path = tmp_path / "ck.json"
        save_checkpoint(path, "a", {("g", "v", 1): 1.0})
        path.write_text(path.read_text()[:20])  # simulate a crash mid-copy
        with pytest.warns(UserWarning, match="corrupt"):
            assert load_checkpoint(path, "a") == {}

    def test_foreign_json_warns_and_resumes_empty(self, tmp_path):
        from repro.experiments.save import load_checkpoint
        path = tmp_path / "ck.json"
        path.write_text('{"something": "else"}')
        with pytest.warns(UserWarning, match="corrupt"):
            assert load_checkpoint(path, "a") == {}

    def test_malformed_cells_warn_and_resume_empty(self, tmp_path):
        import json
        from repro.experiments.save import load_checkpoint
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(
            {"checkpoints": {"a": {"no-separators-here": 1.0}}}))
        with pytest.warns(UserWarning, match="malformed"):
            assert load_checkpoint(path, "a") == {}
