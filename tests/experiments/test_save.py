"""Panel JSON serialisation round-trips."""

import numpy as np
import pytest

from repro.experiments.harness import PanelResult
from repro.experiments.save import (load_panels, panel_from_dict,
                                    panel_to_dict, save_panels)


def make_panel():
    p = PanelResult(title="demo", thread_counts=[1, 31, 121], notes="n")
    p.series = {"A": np.array([1.0, 20.5, 70.0]),
                "B": np.array([0.9, 18.0, 50.0])}
    p.per_graph = {("A", "g1"): np.array([1.0, 21.0, 72.0]),
                   ("A", "g2"): np.array([1.0, 20.0, 68.1])}
    p.baselines = {"g1": 1e6, "g2": 2e6}
    return p


class TestRoundTrip:
    def test_dict_roundtrip(self):
        p = make_panel()
        q = panel_from_dict(panel_to_dict(p))
        assert q.title == p.title
        assert q.thread_counts == p.thread_counts
        assert np.allclose(q.series["A"], p.series["A"])
        assert np.allclose(q.per_graph[("A", "g2")], p.per_graph[("A", "g2")])
        assert q.baselines == p.baselines
        assert q.notes == "n"

    def test_file_roundtrip_single(self, tmp_path):
        path = tmp_path / "p.json"
        save_panels(make_panel(), path)
        loaded = load_panels(path)
        assert list(loaded) == ["demo"]
        assert loaded["demo"].at("A", 121) == pytest.approx(70.0)

    def test_file_roundtrip_dict(self, tmp_path):
        path = tmp_path / "p.json"
        save_panels({"x": make_panel()}, path)
        assert "x" in load_panels(path)

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_panels(path)
