"""Integration tests: figure drivers reproduce the paper's *shapes*.

These run the real pipelines on reduced sweeps (two graphs, three thread
counts) so the whole file stays around a minute; the full-suite numbers
live in the benchmarks and EXPERIMENTS.md.
"""

import numpy as np
import pytest

GRAPHS = ["hood", "pwtk"]
THREADS = [1, 31, 121]


@pytest.fixture(scope="module")
def fig1():
    from repro.experiments.fig1_coloring import run_fig1
    return run_fig1(graphs=GRAPHS, threads=THREADS)


@pytest.fixture(scope="module")
def fig4():
    from repro.experiments.fig4_bfs import run_fig4_panel
    from repro.machine.config import KNF
    return run_fig4_panel(
        "test", ["OpenMP-Block-relaxed", "OpenMP-Block", "CilkPlus-Bag-relaxed"],
        GRAPHS, KNF, threads=THREADS)


class TestTable1:
    def test_rows_and_format(self):
        from repro.experiments.table1 import format_table1, table1_rows
        rows = table1_rows()
        assert len(rows) == 7
        text = format_table1()
        assert "pwtk" in text and "ldoor" in text

    def test_level_counts_close_to_paper(self):
        from repro.experiments.table1 import table1_rows
        for row in table1_rows():
            measured, paper = row[9], row[10]
            assert measured == pytest.approx(paper, rel=0.08)


class TestFig1Shapes:
    def test_three_panels(self, fig1):
        assert len(fig1) == 3

    def test_openmp_scales_past_cores(self, fig1):
        panel = next(p for t, p in fig1.items() if "OpenMP" in t)
        # SMT keeps the memory-bound kernel scaling beyond 31 cores
        assert panel.at("OpenMP-dynamic", 121) > panel.at("OpenMP-dynamic", 31)
        assert panel.at("OpenMP-dynamic", 121) > 35

    def test_model_ordering_openmp_tbb_cilk(self, fig1):
        """Fig 1 headline: OpenMP > TBB-simple > Cilk at full threads."""
        omp = next(p for t, p in fig1.items() if "OpenMP" in t)
        cilk = next(p for t, p in fig1.items() if "Cilk" in t)
        tbb = next(p for t, p in fig1.items() if "TBB" in t)
        v_omp = omp.at("OpenMP-dynamic", 121)
        v_tbb = tbb.at("TBB-simple", 121)
        v_cilk = cilk.at("CilkPlus-holder", 121)
        assert v_omp > v_tbb > v_cilk

    def test_cilk_variants_close(self, fig1):
        """§V-B: worker-ID and holder variants perform very closely."""
        cilk = next(p for t, p in fig1.items() if "Cilk" in t)
        a = cilk.series["CilkPlus"]
        b = cilk.series["CilkPlus-holder"]
        assert np.all(np.abs(a - b) <= 0.15 * np.maximum(a, b) + 0.5)

    def test_tbb_simple_beats_auto(self, fig1):
        tbb = next(p for t, p in fig1.items() if "TBB" in t)
        assert tbb.at("TBB-simple", 121) > tbb.at("TBB-auto", 121)


class TestFig2Shapes:
    def test_shuffle_superlinear_and_ordered(self):
        from repro.experiments.fig2_shuffled import run_fig2
        panel = run_fig2(graphs=GRAPHS, threads=THREADS)
        omp = panel.at("OpenMP-dynamic", 121)
        tbb = panel.at("TBB-simple", 121)
        cilk = panel.at("CilkPlus-holder", 121)
        # super-linear in thread count (the paper's 153 on 121 threads)
        assert omp > 121
        assert omp > tbb > cilk


class TestFig3Shapes:
    def test_openmp_decreases_cilk_increases(self):
        from repro.experiments.fig3_irregular import run_fig3
        panels = run_fig3(graphs=GRAPHS, threads=THREADS)
        omp = next(p for t, p in panels.items() if "OpenMP" in t)
        cilk = next(p for t, p in panels.items() if "Cilk" in t)
        # §V-C: more computation -> OpenMP speedup down, Cilk speedup up
        assert omp.at("1 iteration", 121) > omp.at("10 iterations", 121)
        assert cilk.at("10 iterations", 121) > cilk.at("1 iteration", 121)

    def test_models_converge_at_ten_iterations(self):
        from repro.experiments.fig3_irregular import run_fig3
        panels = run_fig3(graphs=GRAPHS, threads=THREADS)
        at10 = [p.at("10 iterations", 121) for p in panels.values()]
        assert max(at10) < 1.45 * min(at10)


class TestFig4Shapes:
    def test_model_series_present(self, fig4):
        assert "Model" in fig4.series
        assert fig4.series["Model"][0] == pytest.approx(1.0)

    def test_relaxed_beats_locked(self, fig4):
        assert fig4.at("OpenMP-Block-relaxed", 31) > \
            fig4.at("OpenMP-Block", 31)

    def test_bag_worst(self, fig4):
        assert fig4.at("CilkPlus-Bag-relaxed", 31) < \
            0.8 * fig4.at("OpenMP-Block-relaxed", 31)

    def test_measured_tracks_model_at_cores(self, fig4):
        """§V-D: the block queue exploits all the parallelism the
        algorithm offers (measured ~ model up to the core count)."""
        measured = fig4.at("OpenMP-Block-relaxed", 31)
        model = fig4.at("Model", 31)
        assert measured == pytest.approx(model, rel=0.6)

    def test_pwtk_below_inline(self):
        from repro.experiments.fig4_bfs import run_fig4_panel
        from repro.machine.config import KNF
        a = run_fig4_panel("a", ["OpenMP-Block-relaxed"], ["pwtk"], KNF,
                           threads=[1, 31])
        b = run_fig4_panel("b", ["OpenMP-Block-relaxed"], ["inline_1"], KNF,
                           threads=[1, 31])
        assert b.at("OpenMP-Block-relaxed", 31) > \
            1.5 * a.at("OpenMP-Block-relaxed", 31)
