"""Experiment harness: sweeps, baselines, aggregation."""

import numpy as np
import pytest

from repro.experiments.harness import (PanelResult, geomean, panel_graphs,
                                       panel_threads, run_panel)


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([5]) == pytest.approx(5.0)

    def test_degenerate(self):
        assert geomean([]) == 0.0
        assert geomean([1.0, 0.0]) == 0.0
        assert geomean([-1.0, 2.0]) == 0.0


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        monkeypatch.delenv("REPRO_GRAPHS", raising=False)
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert len(panel_graphs()) == 7
        assert panel_threads() == [1] + list(range(11, 122, 10))
        assert max(panel_threads(host=True)) == 24

    def test_fast_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        assert len(panel_graphs()) == 3
        assert len(panel_threads()) == 5

    def test_explicit_graphs(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPHS", "pwtk,auto")
        assert panel_graphs() == ["pwtk", "auto"]

    def test_unknown_graph_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPHS", "pwtk,nope")
        with pytest.raises(ValueError, match="unknown"):
            panel_graphs()

    def test_explicit_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "31,1,11")
        assert panel_threads() == [1, 11, 31]


class TestRunPanel:
    @staticmethod
    def runner(graph, variant, t):
        # synthetic: "fast" halves cycles; scaling is 1/t with overhead
        base = 1000.0 if variant == "fast" else 2000.0
        base *= 2.0 if graph == "g2" else 1.0
        return base / t + 10.0

    def test_shared_baseline_is_fastest_t1(self):
        panel = run_panel("p", self.runner, ["fast", "slow"],
                          graphs=["g1", "g2"], threads=[1, 10])
        assert panel.baselines["g1"] == pytest.approx(1010.0)
        assert panel.baselines["g2"] == pytest.approx(2010.0)
        # slow variant never exceeds fast's curve under shared baseline
        assert np.all(panel.series["slow"] <= panel.series["fast"])

    def test_per_variant_baseline(self):
        panel = run_panel("p", self.runner, ["fast", "slow"],
                          graphs=["g1"], threads=[1, 10],
                          per_variant_baseline=True)
        # each variant normalised by itself: both start at exactly 1.0
        assert panel.series["fast"][0] == pytest.approx(1.0)
        assert panel.series["slow"][0] == pytest.approx(1.0)

    def test_thread_one_always_included(self):
        panel = run_panel("p", self.runner, ["fast"], graphs=["g1"],
                          threads=[10, 20])
        assert panel.thread_counts[0] == 1

    def test_geomean_across_graphs(self):
        panel = run_panel("p", self.runner, ["fast"],
                          graphs=["g1", "g2"], threads=[1, 10])
        s1 = panel.per_graph[("fast", "g1")]
        s2 = panel.per_graph[("fast", "g2")]
        expected = np.sqrt(s1 * s2)
        assert np.allclose(panel.series["fast"], expected)

    def test_best_and_at(self):
        panel = run_panel("p", self.runner, ["fast"], graphs=["g1"],
                          threads=[1, 10, 20])
        t, v = panel.best("fast")
        assert t == 20
        assert v == panel.at("fast", 20)


class TestRepeatAverage:
    def test_averages_last_k(self):
        from repro.experiments.harness import repeat_average
        calls = []

        def fn(seed):
            calls.append(seed)
            return float(seed)

        # seeds 0..9, average of last 5 => mean(5..9) = 7
        assert repeat_average(fn, runs=10, keep_last=5) == 7.0
        assert calls == list(range(10))

    def test_invalid(self):
        from repro.experiments.harness import repeat_average
        import pytest
        with pytest.raises(ValueError):
            repeat_average(lambda s: 1.0, runs=0)
        with pytest.raises(ValueError):
            repeat_average(lambda s: 1.0, runs=3, keep_last=4)


class TestPerGraphReport:
    def test_unfolds_geomean(self):
        from repro.experiments.report import format_panel_per_graph
        from repro.experiments.harness import run_panel

        panel = run_panel("p", TestRunPanel.runner, ["fast"],
                          graphs=["g1", "g2"], threads=[1, 10])
        out = format_panel_per_graph(panel, "fast")
        assert "g1" in out and "g2" in out

    def test_unknown_variant(self):
        import pytest
        from repro.experiments.report import format_panel_per_graph
        from repro.experiments.harness import PanelResult
        with pytest.raises(KeyError):
            format_panel_per_graph(PanelResult("t", [1]), "nope")


class TestThreadsValidation:
    @pytest.mark.parametrize("bad", ["0", "-3", "1,0,2", "abc", "1,abc"])
    def test_rejects_bad_entries(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_THREADS", bad)
        with pytest.raises(ValueError, match="REPRO_THREADS"):
            panel_threads()

    def test_rejects_empty_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", " , ,")
        with pytest.raises(ValueError, match="no thread counts"):
            panel_threads()

    def test_error_names_the_offending_token(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "4,x,8")
        with pytest.raises(ValueError, match="'x'"):
            panel_threads()


class TestGeomeanNaN:
    def test_skips_nan(self):
        assert geomean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)

    def test_all_nan_is_nan(self):
        import math
        assert math.isnan(geomean([float("nan")] * 3))


class TestResilience:
    """Acceptance: a sweep with one injected failing cell completes with
    that cell NaN, retried the configured number of times, and every
    other cell intact."""

    def test_failing_cell_isolated(self):
        import math
        calls = {}

        def runner(g, v, t):
            calls[(g, v, t)] = calls.get((g, v, t), 0) + 1
            if (g, v, t) == ("g2", "A", 10):
                raise RuntimeError("injected failure")
            return 1000.0 / t

        panel = run_panel("p", runner, ["A", "B"], graphs=["g1", "g2"],
                          threads=[1, 10], retries=2)
        assert calls[("g2", "A", 10)] == 3  # initial try + 2 retries
        assert list(panel.failures) == [("g2", "A", 10)]
        assert "injected failure" in panel.failures[("g2", "A", 10)]
        assert "failed" in panel.notes
        assert math.isnan(panel.per_graph[("A", "g2")][1])
        # every other cell intact — g1 series and variant B untouched
        assert np.allclose(panel.per_graph[("A", "g1")], [1.0, 10.0])
        assert np.allclose(panel.series["B"], [1.0, 10.0])
        # the geomean skips the NaN graph instead of poisoning the series
        assert np.allclose(panel.series["A"], [1.0, 10.0])

    def test_flaky_cell_recovers_within_budget(self):
        attempts = {"n": 0}

        def runner(g, v, t):
            if t == 10:
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise OSError("transient")
            return 100.0 / t

        panel = run_panel("p", runner, ["A"], graphs=["g1"],
                          threads=[1, 10], retries=2)
        assert not panel.failures
        assert panel.series["A"][1] == pytest.approx(10.0)

    def test_on_error_raise_restores_fail_fast(self):
        def runner(g, v, t):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_panel("p", runner, ["A"], graphs=["g1"], threads=[1],
                      retries=0, on_error="raise")

    def test_invalid_retries_and_on_error(self):
        runner = TestRunPanel.runner
        with pytest.raises(ValueError, match="retries"):
            run_panel("p", runner, ["A"], graphs=["g1"], threads=[1],
                      retries=-1)
        with pytest.raises(ValueError, match="on_error"):
            run_panel("p", runner, ["A"], graphs=["g1"], threads=[1],
                      on_error="explode")

    def test_retries_default_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "4")
        calls = {"n": 0}

        def runner(g, v, t):
            calls["n"] += 1
            raise RuntimeError("always")

        run_panel("p", runner, ["A"], graphs=["g1"], threads=[1])
        assert calls["n"] == 5

    def test_all_baselines_failed_gives_nan_baseline(self):
        import math

        def runner(g, v, t):
            if t == 1:
                raise RuntimeError("no baseline")
            return 10.0

        panel = run_panel("p", runner, ["A"], graphs=["g1"],
                          threads=[1, 10], retries=0)
        assert math.isnan(panel.baselines["g1"])


class TestCheckpointResume:
    def test_resume_skips_finished_retries_failed(self, tmp_path):
        import math
        path = tmp_path / "ck.json"
        state = {"fail": True, "calls": []}

        def runner(g, v, t):
            state["calls"].append((g, v, t))
            if t == 10 and state["fail"]:
                raise RuntimeError("first pass fails")
            return 100.0 / t

        p1 = run_panel("p", runner, ["A"], graphs=["g1"], threads=[1, 10],
                       retries=0, checkpoint=path)
        assert math.isnan(p1.per_graph[("A", "g1")][1])
        assert path.exists()

        state["fail"] = False
        first_pass = list(state["calls"])
        p2 = run_panel("p", runner, ["A"], graphs=["g1"], threads=[1, 10],
                       retries=0, checkpoint=path)
        resumed = state["calls"][len(first_pass):]
        assert resumed == [("g1", "A", 10)]  # finite cell skipped, NaN retried
        assert not p2.failures
        assert p2.series["A"][1] == pytest.approx(10.0)

    def test_checkpoint_default_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_CHECKPOINT", str(path))
        run_panel("p", TestRunPanel.runner, ["fast"], graphs=["g1"],
                  threads=[1])
        assert path.exists()


class TestParallelPanel:
    def test_jobs2_bitwise_identical_to_serial(self):
        kw = dict(variants=["fast", "slow"], graphs=["g1", "g2"],
                  threads=[1, 10])
        serial = run_panel("p", TestRunPanel.runner, **kw)
        parallel = run_panel("p", TestRunPanel.runner, jobs=2, **kw)
        for label in ("fast", "slow"):
            assert np.array_equal(serial.series[label],
                                  parallel.series[label])
        assert serial.baselines == parallel.baselines
        assert np.array_equal(serial.per_graph[("fast", "g2")],
                              parallel.per_graph[("fast", "g2")])

    def test_jobs_failures_keep_nan_semantics(self):
        import math

        def runner(g, v, t):
            if (g, t) == ("g2", 10):
                raise RuntimeError("injected")
            return 1000.0 / t

        panel = run_panel("p", runner, ["A"], graphs=["g1", "g2"],
                          threads=[1, 10], retries=0, jobs=2)
        assert list(panel.failures) == [("g2", "A", 10)]
        assert math.isnan(panel.per_graph[("A", "g2")][1])
        assert np.allclose(panel.per_graph[("A", "g1")], [1.0, 10.0])


class TestStoreBackedPanel:
    @staticmethod
    def counting_runner(calls):
        def runner(g, v, t):
            calls.append((g, v, t))
            return 100.0 / t

        return runner

    def test_second_run_recomputes_nothing(self, tmp_path):
        from repro.campaign.store import ResultStore
        store = ResultStore(tmp_path)
        calls = []
        runner = self.counting_runner(calls)
        kw = dict(variants=["A"], graphs=["g1"], threads=[1, 10])
        p1 = run_panel("p", runner, store=store, **kw)
        cold = len(calls)
        assert cold == 2
        p2 = run_panel("p", runner, store=store, **kw)
        assert len(calls) == cold  # every cell served from the store
        assert np.array_equal(p1.series["A"], p2.series["A"])

    def test_titles_do_not_collide(self, tmp_path):
        from repro.campaign.store import ResultStore
        store = ResultStore(tmp_path)
        calls = []
        runner = self.counting_runner(calls)
        kw = dict(variants=["A"], graphs=["g1"], threads=[1])
        run_panel("one", runner, store=store, **kw)
        run_panel("two", runner, store=store, **kw)
        assert len(calls) == 2  # same coordinates, different panel keys

    def test_store_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        calls = []
        runner = self.counting_runner(calls)
        kw = dict(variants=["A"], graphs=["g1"], threads=[1])
        run_panel("p", runner, **kw)
        run_panel("p", runner, **kw)
        assert len(calls) == 2  # no caching without REPRO_STORE/store=

    def test_store_env_var_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        calls = []
        runner = self.counting_runner(calls)
        kw = dict(variants=["A"], graphs=["g1"], threads=[1])
        run_panel("p", runner, **kw)
        run_panel("p", runner, **kw)
        assert len(calls) == 1


class TestBaselinePoint:
    def test_zero_point_prepended_and_used(self):
        def runner(g, v, t):
            return 100.0 * (1.0 + t)  # t=0 is the fastest cell

        panel = run_panel("p", runner, ["A"], graphs=["g1"],
                          threads=[10], baseline_point=0,
                          per_variant_baseline=True)
        assert panel.thread_counts == [0, 10]
        assert panel.series["A"][0] == pytest.approx(1.0)
        assert panel.series["A"][1] == pytest.approx(100.0 / 1100.0)
