"""Experiment harness: sweeps, baselines, aggregation."""

import numpy as np
import pytest

from repro.experiments.harness import (PanelResult, geomean, panel_graphs,
                                       panel_threads, run_panel)


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([5]) == pytest.approx(5.0)

    def test_degenerate(self):
        assert geomean([]) == 0.0
        assert geomean([1.0, 0.0]) == 0.0
        assert geomean([-1.0, 2.0]) == 0.0


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        monkeypatch.delenv("REPRO_GRAPHS", raising=False)
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert len(panel_graphs()) == 7
        assert panel_threads() == [1] + list(range(11, 122, 10))
        assert max(panel_threads(host=True)) == 24

    def test_fast_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        assert len(panel_graphs()) == 3
        assert len(panel_threads()) == 5

    def test_explicit_graphs(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPHS", "pwtk,auto")
        assert panel_graphs() == ["pwtk", "auto"]

    def test_unknown_graph_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPHS", "pwtk,nope")
        with pytest.raises(ValueError, match="unknown"):
            panel_graphs()

    def test_explicit_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "31,1,11")
        assert panel_threads() == [1, 11, 31]


class TestRunPanel:
    @staticmethod
    def runner(graph, variant, t):
        # synthetic: "fast" halves cycles; scaling is 1/t with overhead
        base = 1000.0 if variant == "fast" else 2000.0
        base *= 2.0 if graph == "g2" else 1.0
        return base / t + 10.0

    def test_shared_baseline_is_fastest_t1(self):
        panel = run_panel("p", self.runner, ["fast", "slow"],
                          graphs=["g1", "g2"], threads=[1, 10])
        assert panel.baselines["g1"] == pytest.approx(1010.0)
        assert panel.baselines["g2"] == pytest.approx(2010.0)
        # slow variant never exceeds fast's curve under shared baseline
        assert np.all(panel.series["slow"] <= panel.series["fast"])

    def test_per_variant_baseline(self):
        panel = run_panel("p", self.runner, ["fast", "slow"],
                          graphs=["g1"], threads=[1, 10],
                          per_variant_baseline=True)
        # each variant normalised by itself: both start at exactly 1.0
        assert panel.series["fast"][0] == pytest.approx(1.0)
        assert panel.series["slow"][0] == pytest.approx(1.0)

    def test_thread_one_always_included(self):
        panel = run_panel("p", self.runner, ["fast"], graphs=["g1"],
                          threads=[10, 20])
        assert panel.thread_counts[0] == 1

    def test_geomean_across_graphs(self):
        panel = run_panel("p", self.runner, ["fast"],
                          graphs=["g1", "g2"], threads=[1, 10])
        s1 = panel.per_graph[("fast", "g1")]
        s2 = panel.per_graph[("fast", "g2")]
        expected = np.sqrt(s1 * s2)
        assert np.allclose(panel.series["fast"], expected)

    def test_best_and_at(self):
        panel = run_panel("p", self.runner, ["fast"], graphs=["g1"],
                          threads=[1, 10, 20])
        t, v = panel.best("fast")
        assert t == 20
        assert v == panel.at("fast", 20)


class TestRepeatAverage:
    def test_averages_last_k(self):
        from repro.experiments.harness import repeat_average
        calls = []

        def fn(seed):
            calls.append(seed)
            return float(seed)

        # seeds 0..9, average of last 5 => mean(5..9) = 7
        assert repeat_average(fn, runs=10, keep_last=5) == 7.0
        assert calls == list(range(10))

    def test_invalid(self):
        from repro.experiments.harness import repeat_average
        import pytest
        with pytest.raises(ValueError):
            repeat_average(lambda s: 1.0, runs=0)
        with pytest.raises(ValueError):
            repeat_average(lambda s: 1.0, runs=3, keep_last=4)


class TestPerGraphReport:
    def test_unfolds_geomean(self):
        from repro.experiments.report import format_panel_per_graph
        from repro.experiments.harness import run_panel

        panel = run_panel("p", TestRunPanel.runner, ["fast"],
                          graphs=["g1", "g2"], threads=[1, 10])
        out = format_panel_per_graph(panel, "fast")
        assert "g1" in out and "g2" in out

    def test_unknown_variant(self):
        import pytest
        from repro.experiments.report import format_panel_per_graph
        from repro.experiments.harness import PanelResult
        with pytest.raises(KeyError):
            format_panel_per_graph(PanelResult("t", [1]), "nope")
