"""R-MAT (Graph500-style) BFS extension experiment."""

from repro.experiments.rmat_bfs import rmat_direction_savings, run_rmat_bfs


class TestRmatBfs:
    def test_shapes(self):
        panel = run_rmat_bfs(scales=[13], threads=[1, 31, 121])
        top = panel.thread_counts[-1]
        # wide frontiers: the model predicts near-linear scaling
        assert panel.at("Model", top) > 0.6 * top
        # the measured block queue is hub-limited well below the model
        # (no per-vertex parallelism), but still far above the bag
        assert panel.at("OpenMP-Block-relaxed", 31) > \
            2 * panel.at("CilkPlus-Bag-relaxed", 31)
        assert panel.at("OpenMP-Block-relaxed", top) < 0.5 * panel.at("Model", top)

    def test_direction_optimizing_saves_most_edges(self):
        s = rmat_direction_savings(13)
        # low-diameter power-law graph: bottom-up skips >80% of edge work
        assert s["saving"] > 0.8
        assert "bottom-up" in s["directions"]
