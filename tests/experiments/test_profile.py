"""The ``profile`` CLI: artifacts, reconciliation, and figure flags."""

import json

import pytest

from repro.experiments.profile import reconciliation, run_profile
from repro.obs.export import load_metrics_jsonl
from repro.obs.metrics import MetricsFrame


class TestRunProfile:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("profile")
        trace, metrics = tmp / "trace.json", tmp / "metrics.jsonl"
        import io
        from contextlib import redirect_stdout
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = run_profile(kernel="coloring", graph="pwtk",
                               variant="OpenMP-dynamic", threads=11,
                               trace_path=trace, metrics_path=metrics)
        return code, trace, metrics, buf.getvalue()

    def test_exit_code(self, artifacts):
        assert artifacts[0] == 0

    def test_trace_loadable(self, artifacts):
        data = json.loads(artifacts[1].read_text())
        events = data["traceEvents"]
        assert events
        assert all(k in ev for ev in events
                   for k in ("name", "ph", "ts", "pid", "tid"))
        assert sum(e["ph"] == "B" for e in events) \
            == sum(e["ph"] == "E" for e in events)

    def test_metrics_reconcile(self, artifacts):
        frames = load_metrics_jsonl(artifacts[2])
        assert frames
        worst, summary = reconciliation(frames)
        assert worst < 0.01
        assert "reconciliation" in summary

    def test_output_mentions_artifacts(self, artifacts):
        out = artifacts[3]
        assert "Perfetto" in out
        assert "longest loop" in out
        assert "reconciliation" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_profile(kernel="sssp", graph="pwtk")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown coloring variant"):
            run_profile(kernel="coloring", graph="pwtk", variant="MPI")


class TestReconciliation:
    def test_flags_incomplete_breakdown(self):
        bad = MetricsFrame(n_threads=2, span=100.0, busy_cycles=100.0)
        worst, _ = reconciliation([bad])  # 100 accounted of 200
        assert worst == pytest.approx(0.5)

    def test_empty_frames_ok(self):
        worst, _ = reconciliation([])
        assert worst == 0.0


class TestCliIntegration:
    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main
        trace, metrics = tmp_path / "t.json", tmp_path / "m.jsonl"
        assert main(["profile", "--graph", "pwtk",
                     "--profile-threads", "5",
                     "--trace", str(trace), "--metrics", str(metrics)]) == 0
        assert trace.exists() and metrics.exists()
        capsys.readouterr()

    def test_figure_flags_write_artifacts(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.experiments.cli import main
        monkeypatch.setenv("REPRO_GRAPHS", "pwtk")
        monkeypatch.setenv("REPRO_THREADS", "5")
        trace, metrics = tmp_path / "t.json", tmp_path / "m.jsonl"
        assert main(["fig2", "--trace", str(trace),
                     "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        frames = load_metrics_jsonl(metrics)
        assert frames
        assert all(f.cell.get("graph") == "pwtk" for f in frames)
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
