"""Report formatting and the CLI."""

import numpy as np
import pytest

from repro.experiments.harness import PanelResult
from repro.experiments.report import format_panel, format_rows


class TestFormatRows:
    def test_alignment(self):
        out = format_rows(["a", "long_header"], [(1, 2.5), (33, 4.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        # right-aligned numeric columns
        assert lines[2].endswith("2.50")
        assert lines[3].endswith("4.00")

    def test_float_formatting(self):
        out = format_rows(["x"], [(1.23456,)])
        assert "1.23" in out


class TestFormatPanel:
    def test_contains_series_and_peaks(self):
        panel = PanelResult(title="demo", thread_counts=[1, 4],
                            series={"v": np.array([1.0, 3.5])})
        out = format_panel(panel)
        assert "== demo ==" in out
        assert "3.50" in out
        assert "peaks: v: 3.5@4t" in out

    def test_notes_included(self):
        panel = PanelResult(title="demo", thread_counts=[1],
                            series={"v": np.array([1.0])}, notes="hello")
        assert "hello" in format_panel(panel)


class TestCli:
    def test_help(self, capsys):
        from repro.experiments.cli import main
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "table1" in capsys.readouterr().out

    def test_invalid_choice(self):
        from repro.experiments.cli import main
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_table1_runs(self, capsys, monkeypatch):
        from repro.experiments.cli import main
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "pwtk" in out

    def test_fast_flags_set_env(self, monkeypatch, capsys):
        import os
        from repro.experiments.cli import main
        monkeypatch.delenv("REPRO_FAST", raising=False)
        main(["table1", "--fast", "--graphs", "pwtk", "--threads", "1,31"])
        assert os.environ["REPRO_FAST"] == "1"
        assert os.environ["REPRO_GRAPHS"] == "pwtk"
        assert os.environ["REPRO_THREADS"] == "1,31"
