"""Golden-value regression pins for the calibrated figure shapes.

These guard the calibration (EXPERIMENTS.md "Calibration disclosure")
against accidental drift: if a change to the machine constants, cost
model or runtimes moves the headline numbers by more than the band, a
test fails and the change must be re-justified against the paper.

Bands are ±20% around values measured on the hood+pwtk subset at
{1, 31, 121} threads (seeded, deterministic).
"""

import pytest

GRAPHS = ["hood", "pwtk"]
THREADS = [1, 31, 121]


@pytest.fixture(scope="module")
def fig1():
    from repro.experiments.fig1_coloring import run_fig1
    return run_fig1(graphs=GRAPHS, threads=THREADS)


class TestGoldenFig1:
    def test_openmp_dynamic(self, fig1):
        panel = next(p for t, p in fig1.items() if "OpenMP" in t)
        assert panel.at("OpenMP-dynamic", 121) == pytest.approx(45.3, rel=0.2)

    def test_cilk_holder(self, fig1):
        panel = next(p for t, p in fig1.items() if "Cilk" in t)
        assert panel.at("CilkPlus-holder", 121) == pytest.approx(24.0, rel=0.2)

    def test_tbb_simple(self, fig1):
        panel = next(p for t, p in fig1.items() if "TBB" in t)
        assert panel.at("TBB-simple", 121) == pytest.approx(36.4, rel=0.2)


class TestGoldenFig2:
    def test_openmp_superlinear(self):
        from repro.experiments.fig2_shuffled import run_fig2
        panel = run_fig2(graphs=GRAPHS, threads=THREADS)
        assert panel.at("OpenMP-dynamic", 121) == pytest.approx(142.7, rel=0.2)


class TestGoldenFig3:
    def test_openmp_ten_iterations(self):
        from repro.experiments.fig3_irregular import run_fig3
        panels = run_fig3(graphs=GRAPHS, threads=THREADS)
        panel = next(p for t, p in panels.items() if "OpenMP" in t)
        assert panel.at("10 iterations", 121) == pytest.approx(42.7, rel=0.2)
