"""LoopStats / ChunkExec accounting."""

import pytest

from repro.sim.stats import ChunkExec, LoopStats


class TestChunkExec:
    def test_derived_fields(self):
        c = ChunkExec(lo=10, hi=25, thread=3, start=100.0, end=160.0)
        assert c.size == 15
        assert c.duration == 60.0


class TestLoopStats:
    def test_utilization(self):
        s = LoopStats(span=100.0, busy_cycles=300.0)
        assert s.utilization(4) == pytest.approx(0.75)

    def test_utilization_degenerate(self):
        assert LoopStats().utilization(4) == 0.0
        assert LoopStats(span=10.0).utilization(0) == 0.0

    def test_n_chunks(self):
        s = LoopStats()
        s.chunks.append(ChunkExec(0, 5, 0, 0.0, 1.0))
        assert s.n_chunks == 1
