"""Fault-injection layer: determinism, degradation, kill semantics."""

import numpy as np
import pytest

from repro.graph.generators import tube_mesh
from repro.kernels.coloring.parallel import parallel_coloring
from repro.kernels.coloring.verify import verify_coloring
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule)
from repro.sim.faults import (DEGRADING_KINDS, FaultInjector, FaultKind,
                              FaultPlan, FaultSpec)


@pytest.fixture(scope="module")
def mesh():
    return tube_mesh(900, 45, 10, 1.0, 3, seed=6)


DYNAMIC = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                      chunk=13)
STATIC = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC,
                     chunk=5)
GUIDED = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.GUIDED,
                     chunk=13)
CILK = RuntimeSpec(ProgrammingModel.CILK, chunk=13)
TBB = RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE,
                  chunk=5)


class TestFaultSpec:
    def test_window(self):
        s = FaultSpec(FaultKind.CORE_THROTTLE, 0, start=10.0, duration=5.0,
                      magnitude=2.0)
        assert s.end == 15.0
        assert s.active(10.0) and s.active(14.999)
        assert not s.active(9.999) and not s.active(15.0)

    def test_kind_checked(self):
        with pytest.raises(TypeError, match="FaultKind"):
            FaultSpec("core_throttle")

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultSpec(FaultKind.SMT_HANG, start=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(FaultKind.SMT_HANG, duration=-1.0)

    @pytest.mark.parametrize("kind", [FaultKind.CORE_THROTTLE,
                                      FaultKind.MEM_JITTER])
    def test_slowdown_magnitude_below_one_rejected(self, kind):
        with pytest.raises(ValueError, match="slowdown"):
            FaultSpec(kind, magnitude=0.5)

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError, match="stall"):
            FaultSpec(FaultKind.TRANSIENT_STALL, magnitude=-3.0)


class TestFaultPlan:
    def test_healthy(self):
        assert FaultPlan().healthy
        assert not FaultPlan(specs=(FaultSpec(FaultKind.SMT_HANG),)).healthy

    def test_specs_type_checked(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan(specs=("nope",))

    def test_schedule_sorted_and_stable(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.MEM_JITTER, start=50.0, magnitude=2.0),
            FaultSpec(FaultKind.SMT_HANG, target=1, start=5.0, duration=3.0),
        ))
        sched = plan.schedule()
        assert [row[0] for row in sched] == [5.0, 50.0]
        assert sched == plan.schedule()

    def test_random_bit_identical(self):
        kw = dict(n_cores=8, n_threads=16, intensity=0.7, horizon=1e6)
        a = FaultPlan.random(42, **kw)
        b = FaultPlan.random(42, **kw)
        assert a.schedule() == b.schedule()
        assert a.schedule() != FaultPlan.random(43, **kw).schedule()

    def test_random_scales_with_intensity(self):
        none = FaultPlan.random(1, n_cores=8, n_threads=8, intensity=0.0,
                                horizon=1e6)
        full = FaultPlan.random(1, n_cores=8, n_threads=8, intensity=1.0,
                                horizon=1e6)
        assert none.healthy
        assert len(full.specs) == 8
        assert all(s.kind in DEGRADING_KINDS for s in full.specs)

    def test_random_validation(self):
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan.random(0, n_cores=4, n_threads=4, intensity=1.5,
                             horizon=1e6)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.random(0, n_cores=4, n_threads=4, intensity=0.5,
                             horizon=0.0)
        with pytest.raises(ValueError, match="kinds"):
            FaultPlan.random(0, n_cores=4, n_threads=4, intensity=0.5,
                             horizon=1e6, kinds=())


class TestInjectorQueries:
    def test_compute_factor_products_overlapping_throttles(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.CORE_THROTTLE, 0, 0.0, 100.0, 2.0),
            FaultSpec(FaultKind.CORE_THROTTLE, 0, 50.0, 100.0, 3.0),
            FaultSpec(FaultKind.CORE_THROTTLE, 1, 0.0, 100.0, 5.0),
        )))
        assert inj.compute_factor(0, 10.0) == 2.0
        assert inj.compute_factor(0, 60.0) == 6.0
        assert inj.compute_factor(0, 200.0) == 1.0
        assert inj.compute_factor(2, 10.0) == 1.0

    def test_channel_factor(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.MEM_JITTER, 0, 10.0, 10.0, 4.0),)))
        assert inj.channel_factor(5.0) == 1.0
        assert inj.channel_factor(15.0) == 4.0

    def test_hang_delay_until_window_end(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.SMT_HANG, 3, 100.0, 50.0),)))
        assert inj.hang_delay(3, 120.0) == pytest.approx(30.0)
        assert inj.hang_delay(3, 160.0) == 0.0
        assert inj.hang_delay(2, 120.0) == 0.0

    def test_clock_offset_applies_across_regions(self):
        inj = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.CORE_THROTTLE, 0, 1000.0, 100.0, 2.0),)))
        assert inj.compute_factor(0, 50.0) == 1.0
        inj.end_loop(1000.0)  # a region of 1000 cycles has elapsed
        assert inj.compute_factor(0, 50.0) == 2.0

    def test_transient_stall_draws_deterministic(self):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(FaultKind.TRANSIENT_STALL, 0, 0.0, 1e9, 100.0),))
        a, b = FaultInjector(plan), FaultInjector(plan)
        draws_a = [a.transient_stall(0, 1.0) for _ in range(5)]
        draws_b = [b.transient_stall(0, 1.0) for _ in range(5)]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 5  # counter-keyed: every draw distinct
        assert all(d > 0 for d in draws_a)


@pytest.mark.parametrize("spec", [DYNAMIC, STATIC, GUIDED, CILK, TBB],
                         ids=["dynamic", "static", "guided", "cilk", "tbb"])
class TestKernelUnderFaults:
    def _cycles(self, mesh, spec, machine, plan):
        run = parallel_coloring(mesh, 8, spec, machine, cache_scale=0.1,
                                faults=FaultInjector(plan))
        assert verify_coloring(mesh, run.colors)
        return run.total_cycles

    def test_identical_plan_identical_cycles(self, mesh, spec, tiny_machine):
        healthy = self._cycles(mesh, spec, tiny_machine, FaultPlan())
        plan = FaultPlan.random(5, n_cores=4, n_threads=8, intensity=1.0,
                                horizon=healthy)
        assert plan.schedule() == FaultPlan.random(
            5, n_cores=4, n_threads=8, intensity=1.0,
            horizon=healthy).schedule()
        c1 = self._cycles(mesh, spec, tiny_machine, plan)
        c2 = self._cycles(mesh, spec, tiny_machine, plan)
        assert c1 == c2  # bit-identical simulated cycle counts

    def test_throttle_slows_the_run(self, mesh, spec, tiny_machine):
        healthy = self._cycles(mesh, spec, tiny_machine, FaultPlan())
        slow = self._cycles(mesh, spec, tiny_machine, FaultPlan(specs=tuple(
            FaultSpec(FaultKind.CORE_THROTTLE, c, 0.0, float("inf"), 4.0)
            for c in range(4))))
        assert slow > healthy


class TestThreadKill:
    def _run(self, mesh, spec, machine, victim=3):
        healthy = parallel_coloring(mesh, 8, spec, machine, cache_scale=0.1)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.THREAD_KILL, target=victim,
                      start=0.05 * healthy.total_cycles),))
        inj = FaultInjector(plan)
        run = parallel_coloring(mesh, 8, spec, machine, cache_scale=0.1,
                                faults=inj)
        return run, inj

    @pytest.mark.parametrize("spec", [DYNAMIC, GUIDED, CILK, TBB],
                             ids=["dynamic", "guided", "cilk", "tbb"])
    def test_redistributing_schedulers_stay_valid(self, mesh, spec,
                                                  tiny_machine):
        run, inj = self._run(mesh, spec, tiny_machine)
        assert inj.kills_fired == 1
        assert verify_coloring(mesh, run.colors)

    def test_static_loses_predealt_work(self, mesh, tiny_machine):
        run, inj = self._run(mesh, STATIC, tiny_machine)
        assert inj.kills_fired == 1
        # the victim's statically-dealt chunks were never coloured
        assert not verify_coloring(mesh, run.colors)
        assert (run.colors == 0).any()

    def test_kill_recorded_in_stats(self, mesh, tiny_machine):
        run, inj = self._run(mesh, DYNAMIC, tiny_machine)
        assert any(3 in loop.killed_threads for loop in run.loop_stats)

    def test_kill_stays_dead_across_regions(self, mesh, tiny_machine):
        # colouring issues many parallel_for regions after the kill; the
        # run completing at all proves later regions drop the dead party.
        run, inj = self._run(mesh, DYNAMIC, tiny_machine)
        assert run.rounds >= 1
        assert inj.kills_fired == 1  # flagged once, dead forever


class TestInjectorWiring:
    def test_single_thread_region_with_faults(self, mesh, tiny_machine):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.CORE_THROTTLE, 0, 0.0, float("inf"), 2.0),))
        run = parallel_coloring(mesh, 1, DYNAMIC, tiny_machine,
                                cache_scale=0.1, faults=FaultInjector(plan))
        assert verify_coloring(mesh, run.colors)

    def test_hang_slows_victim_thread(self, mesh, tiny_machine):
        healthy = parallel_coloring(mesh, 4, DYNAMIC, tiny_machine,
                                    cache_scale=0.1)
        span = healthy.total_cycles
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.SMT_HANG, target=0, start=0.0,
                      duration=0.5 * span),))
        run = parallel_coloring(mesh, 4, DYNAMIC, tiny_machine,
                                cache_scale=0.1, faults=FaultInjector(plan))
        assert verify_coloring(mesh, run.colors)
        assert run.total_cycles > span
        assert sum(loop.hang_cycles for loop in run.loop_stats) > 0

    def test_mem_jitter_stretches_channel_bound_chunks(self, tiny_machine):
        # The test mesh is cache-resident, so jitter is asserted at the
        # Chip level with a memory-bound chunk (the intensity sweep covers
        # the end-to-end effect on the real suite graphs).
        from repro.machine.core import Chip

        def chunk_time(faults):
            chip = Chip(tiny_machine, 1, faults=faults)
            core = chip.core_of(0)
            core.begin()
            dt = chip.execute(0.0, 0, compute=10.0, stall=0.0, volume=500.0)
            core.finish()
            return dt

        healthy = chunk_time(None)
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.MEM_JITTER, 0, 0.0, float("inf"), 3.0),))
        assert chunk_time(FaultInjector(plan)) > healthy

    def test_injectors_are_single_use_state(self, mesh, tiny_machine):
        # a reused injector carries its clock forward — documented contract
        inj = FaultInjector(FaultPlan())
        parallel_coloring(mesh, 2, DYNAMIC, tiny_machine, cache_scale=0.1,
                          faults=inj)
        assert inj.clock > 0.0


class TestBfsUnderFaults:
    def test_bfs_deterministic_and_valid_under_faults(self, mesh,
                                                      tiny_machine):
        from repro.kernels.bfs.layered import simulate_bfs
        from repro.kernels.bfs.validate import validate_bfs
        healthy = simulate_bfs(mesh, 4, variant="openmp-block", block=8,
                               config=tiny_machine, cache_scale=0.1)
        plan = FaultPlan.random(11, n_cores=4, n_threads=4, intensity=1.0,
                                horizon=healthy.total_cycles)
        runs = [simulate_bfs(mesh, 4, variant="openmp-block", block=8,
                             config=tiny_machine, cache_scale=0.1,
                             faults=FaultInjector(plan)) for _ in range(2)]
        assert runs[0].total_cycles == runs[1].total_cycles
        assert runs[0].total_cycles > healthy.total_cycles
        for r in runs:
            validate_bfs(mesh, mesh.n_vertices // 2, r.dist)
            assert np.array_equal(r.dist, healthy.dist)
