"""Trace/Gantt diagnostics."""

import numpy as np

from repro.machine.costs import WorkCosts
from repro.runtime.base import ProgrammingModel, RuntimeSpec, Schedule
from repro.sim.stats import ChunkExec, LoopStats
from repro.sim.trace import breakdown, gantt, thread_utilization


def real_stats(tiny_machine, n=60, threads=3):
    work = WorkCosts(np.full(n, 100.0), np.zeros(n), np.zeros(n))
    spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC,
                       chunk=10)
    return spec.parallel_for(tiny_machine, threads, work)


class TestGantt:
    def test_empty(self):
        assert "no chunks" in gantt(LoopStats())

    def test_rows_per_thread(self, tiny_machine):
        stats = real_stats(tiny_machine)
        out = gantt(stats)
        assert out.count("|") == 2 * 3  # three thread rows
        assert "#" in out

    def test_elides_many_threads(self):
        stats = LoopStats(span=10.0)
        for t in range(40):
            stats.chunks.append(ChunkExec(t, t + 1, t, 0.0, 5.0))
        out = gantt(stats, max_threads=8)
        assert "more threads elided" in out


class TestUtilization:
    def test_busy_fractions(self):
        stats = LoopStats(span=100.0)
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 50.0))
        stats.chunks.append(ChunkExec(1, 2, 1, 0.0, 100.0))
        util = thread_utilization(stats)
        assert util == {0: 0.5, 1: 1.0}

    def test_zero_span(self):
        assert thread_utilization(LoopStats()) == {}


class TestBreakdown:
    def test_contains_accounting(self, tiny_machine):
        stats = real_stats(tiny_machine)
        out = breakdown(stats, 3)
        assert "span" in out and "busy" in out and "atomics" in out
