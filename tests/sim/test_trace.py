"""Trace/Gantt diagnostics."""

import numpy as np

from repro.machine.costs import WorkCosts
from repro.runtime.base import ProgrammingModel, RuntimeSpec, Schedule
from repro.sim.stats import ChunkExec, LoopStats
from repro.sim.trace import breakdown, gantt, thread_utilization


def real_stats(tiny_machine, n=60, threads=3):
    work = WorkCosts(np.full(n, 100.0), np.zeros(n), np.zeros(n))
    spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC,
                       chunk=10)
    return spec.parallel_for(tiny_machine, threads, work)


class TestGantt:
    def test_empty(self):
        assert "no chunks" in gantt(LoopStats())

    def test_rows_per_thread(self, tiny_machine):
        stats = real_stats(tiny_machine)
        out = gantt(stats)
        assert out.count("|") == 2 * 3  # three thread rows
        assert "#" in out

    def test_elides_many_threads(self):
        stats = LoopStats(span=10.0)
        for t in range(40):
            stats.chunks.append(ChunkExec(t, t + 1, t, 0.0, 5.0))
        out = gantt(stats, max_threads=8)
        assert "more threads elided" in out

    def test_span_falls_back_to_last_chunk(self):
        stats = LoopStats()  # span unset: partial/aborted schedule
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 40.0))
        out = gantt(stats)
        assert "span = 40" in out and "#" in out

    def test_hang_windows_rendered(self):
        stats = LoopStats(span=100.0, hang_cycles=50.0)
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 100.0))
        stats.chunks.append(ChunkExec(1, 2, 1, 50.0, 100.0))
        stats.hangs.append((1, 0.0, 50.0))
        out = gantt(stats)
        row = [ln for ln in out.splitlines() if ln.startswith("t  1")][0]
        assert "~" in row and "#" in row
        assert "1 hangs" in out

    def test_killed_threads_marked(self):
        stats = LoopStats(span=100.0, killed_threads=[1])
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 100.0))
        stats.chunks.append(ChunkExec(1, 2, 1, 0.0, 30.0))
        out = gantt(stats)
        assert "t  1x|" in out
        assert "t  0 |" in out
        assert "1 killed" in out

    def test_killed_thread_without_chunks_gets_row(self):
        stats = LoopStats(span=100.0, killed_threads=[2])
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 100.0))
        out = gantt(stats)
        assert "t  2x|" in out


class TestUtilization:
    def test_busy_fractions(self):
        stats = LoopStats(span=100.0)
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 50.0))
        stats.chunks.append(ChunkExec(1, 2, 1, 0.0, 100.0))
        util = thread_utilization(stats)
        assert util == {0: 0.5, 1: 1.0}

    def test_no_chunks(self):
        assert thread_utilization(LoopStats()) == {}

    def test_zero_span_falls_back_to_chunks(self):
        """span unset but chunks exist: use the last chunk end, not {}."""
        stats = LoopStats()
        stats.chunks.append(ChunkExec(0, 1, 0, 0.0, 50.0))
        stats.chunks.append(ChunkExec(1, 2, 1, 0.0, 100.0))
        util = thread_utilization(stats)
        assert util == {0: 0.5, 1: 1.0}


class TestBreakdown:
    def test_contains_accounting(self, tiny_machine):
        stats = real_stats(tiny_machine)
        out = breakdown(stats, 3)
        assert "span" in out and "busy" in out and "atomics" in out
        assert "faults" not in out

    def test_fault_summary(self):
        stats = LoopStats(span=100.0, hang_cycles=40.0, killed_threads=[2])
        stats.hangs.append((1, 0.0, 40.0))
        out = breakdown(stats, 4)
        assert "faults" in out
        assert "1 windows" in out and "1 threads killed" in out
