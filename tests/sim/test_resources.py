"""Tests for time-reservation resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import AtomicVar, MemoryChannel, TicketLock


class TestAtomicVar:
    def test_uncontended(self):
        a = AtomicVar(10.0)
        assert a.rmw(0.0) == 10.0
        assert a.rmw(100.0) == 110.0
        assert a.wait_cycles == 0.0
        assert a.operations == 2

    def test_contention_serialises(self):
        a = AtomicVar(10.0)
        done = [a.rmw(0.0) for _ in range(4)]  # all issued at t=0
        assert done == [10.0, 20.0, 30.0, 40.0]
        assert a.wait_cycles == 0 + 10 + 20 + 30

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            AtomicVar(-1.0)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=40),
           st.floats(0.1, 100))
    @settings(max_examples=50, deadline=None)
    def test_fifo_invariants(self, arrivals, latency):
        """Completions are strictly increasing by >= latency for sorted
        arrivals (engine delivers requests in time order)."""
        a = AtomicVar(latency)
        last = -float("inf")
        for t in sorted(arrivals):
            done = a.rmw(t)
            assert done >= t + latency
            assert done >= last + latency - 1e-9
            last = done


class TestTicketLock:
    def test_hold_time(self):
        lock = TicketLock(5.0)
        assert lock.acquire(0.0, hold=20.0) == 25.0
        assert lock.acquire(0.0, hold=0.0) == 30.0

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            TicketLock(1.0).acquire(0.0, hold=-1.0)


class TestMemoryChannel:
    def test_parallel_banks(self):
        ch = MemoryChannel(banks=2, cycles_per_line=1.0)
        assert ch.service(0.0, 100) == 100.0
        assert ch.service(0.0, 100) == 100.0     # second bank
        assert ch.service(0.0, 100) == 200.0     # queues behind first
        assert ch.wait_cycles == 100.0

    def test_zero_volume_free(self):
        ch = MemoryChannel(banks=1, cycles_per_line=2.0)
        assert ch.service(5.0, 0) == 5.0
        assert ch.transfers == 0

    def test_accounting(self):
        ch = MemoryChannel(banks=4, cycles_per_line=0.5)
        ch.service(0.0, 10)
        ch.service(1.0, 6)
        assert ch.transfers == 2
        assert ch.lines == 16

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MemoryChannel(0, 1.0)
        with pytest.raises(ValueError):
            MemoryChannel(1, -1.0)
        with pytest.raises(ValueError):
            MemoryChannel(1, 1.0).service(0.0, -5)

    @given(st.integers(1, 8), st.lists(st.floats(0, 1000), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_work_conserved(self, banks, volumes):
        """Total busy time across banks equals total requested volume."""
        ch = MemoryChannel(banks, cycles_per_line=1.0)
        for v in volumes:
            ch.service(0.0, v)
        assert ch.lines == pytest.approx(sum(volumes))


class TestChannelScale:
    def test_jitter_scale_stretches_occupancy(self):
        from repro.sim.resources import MemoryChannel
        a = MemoryChannel(banks=1, cycles_per_line=2.0)
        b = MemoryChannel(banks=1, cycles_per_line=2.0)
        done_a = a.service(0.0, 100.0)
        done_b = b.service(0.0, 100.0, scale=3.0)
        assert done_b == pytest.approx(3.0 * done_a)
        assert a.lines == b.lines == 100.0  # accounting ignores the scale

    def test_invalid_scale_rejected(self):
        from repro.sim.resources import MemoryChannel
        with pytest.raises(ValueError, match="scale"):
            MemoryChannel(1, 2.0).service(0.0, 10.0, scale=0.0)
