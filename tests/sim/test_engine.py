"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Barrier, Condition, Engine


class TestEngine:
    def test_empty_run(self):
        assert Engine().run() == 0.0

    def test_schedule_order(self):
        eng = Engine()
        log = []
        eng.schedule(5.0, lambda: log.append(("a", eng.now)))
        eng.schedule(2.0, lambda: log.append(("b", eng.now)))
        eng.run()
        assert log == [("b", 2.0), ("a", 5.0)]

    def test_ties_broken_by_insertion_order(self):
        eng = Engine()
        log = []
        for name in "abc":
            eng.schedule(1.0, log.append, name)
        eng.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Engine().schedule(-1.0, lambda: None)

    def test_run_until(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, log.append, 1)
        eng.schedule(10.0, log.append, 10)
        eng.run(until=5.0)
        assert log == [1]
        eng.run()
        assert log == [1, 10]

    def test_time_monotone(self):
        eng = Engine()
        times = []

        def proc():
            for d in [3.0, 0.0, 7.5, 1.0]:
                yield d
                times.append(eng.now)

        eng.spawn(proc())
        eng.run()
        assert times == [3.0, 3.0, 10.5, 11.5]
        assert times == sorted(times)

    def test_process_completion(self):
        eng = Engine()

        def empty():
            return
            yield  # pragma: no cover - makes this a generator

        p = eng.spawn(empty())
        eng.run()
        assert p.finished

    def test_unsupported_yield_rejected(self):
        eng = Engine()

        def proc():
            yield "what"

        eng.spawn(proc())
        with pytest.raises(TypeError, match="unsupported"):
            eng.run()

    def test_deterministic_interleaving(self):
        def run_once():
            eng = Engine()
            log = []

            def proc(name, step):
                for i in range(5):
                    yield step
                    log.append((name, eng.now))

            eng.spawn(proc("x", 2.0))
            eng.spawn(proc("y", 3.0))
            eng.run()
            return log

        assert run_once() == run_once()


class TestBarrier:
    def test_releases_when_full(self):
        eng = Engine()
        done = []
        barrier = Barrier(eng, 3)

        def proc(delay):
            yield delay
            yield barrier
            done.append(eng.now)

        for d in (1.0, 5.0, 2.0):
            eng.spawn(proc(d))
        eng.run()
        assert done == [5.0, 5.0, 5.0]
        assert barrier.trips == 1

    def test_release_cost(self):
        eng = Engine()
        done = []
        barrier = Barrier(eng, 2, cost_fn=lambda n: 10.0 * n)

        def proc():
            yield barrier
            done.append(eng.now)

        eng.spawn(proc())
        eng.spawn(proc())
        eng.run()
        assert done == [20.0, 20.0]

    def test_reusable(self):
        eng = Engine()
        count = []
        barrier = Barrier(eng, 2)

        def proc():
            yield barrier
            yield 1.0
            yield barrier
            count.append(eng.now)

        eng.spawn(proc())
        eng.spawn(proc())
        eng.run()
        assert barrier.trips == 2
        assert count == [1.0, 1.0]

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            Barrier(Engine(), 0)

    def test_deadlock_detected(self):
        eng = Engine()
        barrier = Barrier(eng, 2)

        def proc():
            yield barrier

        eng.spawn(proc())  # second party never arrives
        with pytest.raises(RuntimeError, match="deadlock"):
            eng.run()


class TestCondition:
    def test_wakes_waiters(self):
        eng = Engine()
        log = []
        cond = Condition(eng)

        def waiter():
            yield cond
            log.append(eng.now)

        def firer():
            yield 7.0
            cond.fire()

        eng.spawn(waiter())
        eng.spawn(firer())
        eng.run()
        assert log == [7.0]

    def test_fired_condition_passes_through(self):
        eng = Engine()
        log = []
        cond = Condition(eng)
        cond.fire()

        def waiter():
            yield 2.0
            yield cond
            log.append(eng.now)

        eng.spawn(waiter())
        eng.run()
        assert log == [2.0]

    def test_fire_with_no_waiters_releases_later_arrival(self):
        eng = Engine()
        log = []
        cond = Condition(eng)

        def firer():
            yield 1.0
            cond.fire()

        def late_waiter():
            yield 5.0
            yield cond  # fired long ago: passes straight through
            log.append(eng.now)

        eng.spawn(firer())
        eng.spawn(late_waiter())
        eng.run()
        assert log == [5.0]


class TestWatchdog:
    @staticmethod
    def ticker(eng):
        def proc():
            while True:
                yield 1.0
        return proc

    def test_event_budget(self):
        from repro.sim.engine import SimulationTimeout
        eng = Engine(max_events=50)
        eng.spawn(self.ticker(eng)())
        with pytest.raises(SimulationTimeout, match="event") as exc:
            eng.run()
        assert exc.value.kind == "events"
        assert exc.value.events > 50

    def test_time_budget(self):
        from repro.sim.engine import SimulationTimeout
        eng = Engine(max_time=100.0)
        eng.spawn(self.ticker(eng)())
        with pytest.raises(SimulationTimeout, match="time") as exc:
            eng.run()
        assert exc.value.kind == "time"
        assert exc.value.now == pytest.approx(100.0)

    def test_budgets_off_by_default(self):
        eng = Engine()

        def proc():
            for _ in range(500):
                yield 1.0

        eng.spawn(proc())
        assert eng.run() == 500.0
        assert eng.events_processed >= 500

    def test_timeout_reports_blocked_processes(self):
        from repro.sim.engine import SimulationTimeout
        eng = Engine(max_events=20)
        barrier = Barrier(eng, 2)

        def stuck():
            yield barrier

        def spinner():
            while True:
                yield 1.0

        eng.spawn(stuck(), name="stuck-worker")
        eng.spawn(spinner(), name="spinner")
        with pytest.raises(SimulationTimeout) as exc:
            eng.run()
        assert any("stuck-worker" in b for b in exc.value.blocked)


class TestDeadlockDiagnostics:
    def test_names_blocked_process_and_primitive(self):
        from repro.sim.engine import DeadlockError
        eng = Engine()
        barrier = Barrier(eng, 2)

        def proc():
            yield barrier

        eng.spawn(proc(), name="omp-w0")
        with pytest.raises(DeadlockError, match="omp-w0") as exc:
            eng.run()
        assert "Barrier" in str(exc.value)
        assert len(exc.value.blocked) == 1

    def test_condition_waiter_named(self):
        from repro.sim.engine import DeadlockError
        eng = Engine()
        cond = Condition(eng)

        def proc():
            yield cond

        eng.spawn(proc(), name="idle-worker")
        with pytest.raises(DeadlockError, match="idle-worker"):
            eng.run()

    def test_run_until_still_detects_drained_heap_deadlock(self):
        # Regression: run(until=...) used to skip the deadlock check when
        # the heap drained before the horizon, silently returning.
        from repro.sim.engine import DeadlockError
        eng = Engine()
        barrier = Barrier(eng, 2)

        def proc():
            yield barrier

        eng.spawn(proc(), name="w0")
        with pytest.raises(DeadlockError, match="w0"):
            eng.run(until=1e9)

    def test_run_until_pending_events_is_not_deadlock(self):
        eng = Engine()
        barrier = Barrier(eng, 2)
        log = []

        def blocked():
            yield barrier
            log.append(eng.now)

        def late():
            yield 100.0
            yield barrier
            log.append(eng.now)

        eng.spawn(blocked())
        eng.spawn(late())
        eng.run(until=10.0)  # late arrival still pending: fine
        assert log == []
        eng.run()
        assert log == [100.0, 100.0]


class TestDropParty:
    def test_survivors_released(self):
        eng = Engine()
        done = []
        barrier = Barrier(eng, 3)

        def proc():
            yield barrier
            done.append(eng.now)

        eng.spawn(proc())
        eng.spawn(proc())

        def reaper():
            yield 5.0
            barrier.drop_party()

        eng.spawn(reaper())
        eng.run()
        assert len(done) == 2

    def test_drop_below_zero_rejected(self):
        eng = Engine()
        barrier = Barrier(eng, 1)
        barrier.drop_party()
        with pytest.raises(RuntimeError, match="no parties"):
            barrier.drop_party()

    def test_drop_then_reuse(self):
        eng = Engine()
        count = []
        barrier = Barrier(eng, 3)
        barrier.drop_party()

        def proc():
            yield barrier
            yield 1.0
            yield barrier
            count.append(eng.now)

        eng.spawn(proc())
        eng.spawn(proc())
        eng.run()
        assert barrier.trips == 2
        assert count == [1.0, 1.0]


class TestThreadKilledRetire:
    def test_killed_process_marks_flag(self):
        from repro.sim.engine import ThreadKilled
        eng = Engine()

        def proc():
            yield 1.0
            raise ThreadKilled(0, eng.now)

        p = eng.spawn(proc())
        eng.run()
        assert p.finished and p.killed

    def test_other_exceptions_propagate(self):
        eng = Engine()

        def proc():
            yield 1.0
            raise ValueError("boom")

        eng.spawn(proc())
        with pytest.raises(ValueError, match="boom"):
            eng.run()
