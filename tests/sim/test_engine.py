"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Barrier, Condition, Engine


class TestEngine:
    def test_empty_run(self):
        assert Engine().run() == 0.0

    def test_schedule_order(self):
        eng = Engine()
        log = []
        eng.schedule(5.0, lambda: log.append(("a", eng.now)))
        eng.schedule(2.0, lambda: log.append(("b", eng.now)))
        eng.run()
        assert log == [("b", 2.0), ("a", 5.0)]

    def test_ties_broken_by_insertion_order(self):
        eng = Engine()
        log = []
        for name in "abc":
            eng.schedule(1.0, log.append, name)
        eng.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Engine().schedule(-1.0, lambda: None)

    def test_run_until(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, log.append, 1)
        eng.schedule(10.0, log.append, 10)
        eng.run(until=5.0)
        assert log == [1]
        eng.run()
        assert log == [1, 10]

    def test_time_monotone(self):
        eng = Engine()
        times = []

        def proc():
            for d in [3.0, 0.0, 7.5, 1.0]:
                yield d
                times.append(eng.now)

        eng.spawn(proc())
        eng.run()
        assert times == [3.0, 3.0, 10.5, 11.5]
        assert times == sorted(times)

    def test_process_completion(self):
        eng = Engine()

        def empty():
            return
            yield  # pragma: no cover - makes this a generator

        p = eng.spawn(empty())
        eng.run()
        assert p.finished

    def test_unsupported_yield_rejected(self):
        eng = Engine()

        def proc():
            yield "what"

        eng.spawn(proc())
        with pytest.raises(TypeError, match="unsupported"):
            eng.run()

    def test_deterministic_interleaving(self):
        def run_once():
            eng = Engine()
            log = []

            def proc(name, step):
                for i in range(5):
                    yield step
                    log.append((name, eng.now))

            eng.spawn(proc("x", 2.0))
            eng.spawn(proc("y", 3.0))
            eng.run()
            return log

        assert run_once() == run_once()


class TestBarrier:
    def test_releases_when_full(self):
        eng = Engine()
        done = []
        barrier = Barrier(eng, 3)

        def proc(delay):
            yield delay
            yield barrier
            done.append(eng.now)

        for d in (1.0, 5.0, 2.0):
            eng.spawn(proc(d))
        eng.run()
        assert done == [5.0, 5.0, 5.0]
        assert barrier.trips == 1

    def test_release_cost(self):
        eng = Engine()
        done = []
        barrier = Barrier(eng, 2, cost_fn=lambda n: 10.0 * n)

        def proc():
            yield barrier
            done.append(eng.now)

        eng.spawn(proc())
        eng.spawn(proc())
        eng.run()
        assert done == [20.0, 20.0]

    def test_reusable(self):
        eng = Engine()
        count = []
        barrier = Barrier(eng, 2)

        def proc():
            yield barrier
            yield 1.0
            yield barrier
            count.append(eng.now)

        eng.spawn(proc())
        eng.spawn(proc())
        eng.run()
        assert barrier.trips == 2
        assert count == [1.0, 1.0]

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            Barrier(Engine(), 0)

    def test_deadlock_detected(self):
        eng = Engine()
        barrier = Barrier(eng, 2)

        def proc():
            yield barrier

        eng.spawn(proc())  # second party never arrives
        with pytest.raises(RuntimeError, match="deadlock"):
            eng.run()


class TestCondition:
    def test_wakes_waiters(self):
        eng = Engine()
        log = []
        cond = Condition(eng)

        def waiter():
            yield cond
            log.append(eng.now)

        def firer():
            yield 7.0
            cond.fire()

        eng.spawn(waiter())
        eng.spawn(firer())
        eng.run()
        assert log == [7.0]

    def test_fired_condition_passes_through(self):
        eng = Engine()
        log = []
        cond = Condition(eng)
        cond.fire()

        def waiter():
            yield 2.0
            yield cond
            log.append(eng.now)

        eng.spawn(waiter())
        eng.run()
        assert log == [2.0]
