"""Simulated-machine integration for the applications package."""

import numpy as np
import pytest

from repro.apps import simulate_betweenness, simulate_pagerank
from repro.graph.generators import tube_mesh
from repro.machine.config import KNF
from repro.runtime.base import ProgrammingModel, RuntimeSpec


@pytest.fixture(scope="module")
def mesh():
    return tube_mesh(1200, 60, 10, 1.0, 3, seed=21)


class TestAppsOnMachine:
    def test_pagerank_scales_like_irregular_kernel(self, mesh):
        spec = RuntimeSpec(ProgrammingModel.OPENMP, chunk=8)
        t1 = simulate_pagerank(mesh, 1, iterations=4, spec=spec, config=KNF,
                               cache_scale=0.05).total_cycles
        t31 = simulate_pagerank(mesh, 31, iterations=4, spec=spec, config=KNF,
                                cache_scale=0.05).total_cycles
        assert t1 / t31 > 10

    def test_betweenness_costs_scale_with_sources(self, mesh):
        r2 = simulate_betweenness(mesh, 8, sources=2, config=KNF,
                                  cache_scale=0.05, seed=3)
        r4 = simulate_betweenness(mesh, 8, sources=4, config=KNF,
                                  cache_scale=0.05, seed=3)
        assert r4.total_cycles > 1.5 * r2.total_cycles
        assert r4.n_sources == 4

    def test_deterministic(self, mesh):
        a = simulate_betweenness(mesh, 8, sources=3, config=KNF, seed=5)
        b = simulate_betweenness(mesh, 8, sources=3, config=KNF, seed=5)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.scores, b.scores)
