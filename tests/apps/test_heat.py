"""Heat-diffusion application."""

import numpy as np
import pytest

from repro.apps.heat import heat_diffusion
from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, grid2d


class TestHeat:
    def test_linear_profile_on_chain(self):
        """Steady state between two fixed ends is the linear interpolant."""
        n = 11
        r = heat_diffusion(chain(n), {0: 0.0, n - 1: 10.0}, tol=1e-12,
                           max_iterations=100_000)
        assert r.converged
        assert np.allclose(r.temperature, np.linspace(0, 10, n), atol=1e-4)

    def test_maximum_principle(self):
        """Interior temperatures stay within the boundary range."""
        g = grid2d(8, 8)
        r = heat_diffusion(g, {0: 1.0, 63: 5.0}, tol=1e-10,
                           max_iterations=100_000)
        assert r.converged
        assert r.temperature.min() >= 1.0 - 1e-6
        assert r.temperature.max() <= 5.0 + 1e-6

    def test_uniform_boundary_gives_uniform_field(self):
        g = grid2d(5, 5)
        r = heat_diffusion(g, {0: 2.0, 24: 2.0}, tol=1e-12,
                           max_iterations=100_000)
        assert np.allclose(r.temperature, 2.0, atol=1e-5)

    def test_harmonic_at_interior(self):
        """Converged interior vertices equal their neighbour average."""
        g = grid2d(6, 6)
        r = heat_diffusion(g, {0: 0.0, 35: 9.0}, tol=1e-12,
                           max_iterations=200_000)
        for v in range(g.n_vertices):
            if v in (0, 35):
                continue
            nbr_avg = r.temperature[g.neighbors(v)].mean()
            assert r.temperature[v] == pytest.approx(nbr_avg, abs=1e-4)

    def test_boundary_values_pinned(self):
        g = grid2d(4, 4)
        r = heat_diffusion(g, {3: -1.0, 12: 4.0})
        assert r.temperature[3] == -1.0
        assert r.temperature[12] == 4.0

    def test_isolated_vertex_keeps_initial(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        r = heat_diffusion(g, {0: 5.0}, initial=np.array([0.0, 0.0, 7.0]))
        assert r.temperature[2] == 7.0

    def test_invalid_inputs(self):
        g = chain(4)
        with pytest.raises(ValueError, match="out of range"):
            heat_diffusion(g, {9: 1.0})
        with pytest.raises(ValueError, match="finite"):
            heat_diffusion(g, {0: float("nan")})
        with pytest.raises(ValueError, match="length"):
            heat_diffusion(g, {0: 1.0}, initial=np.zeros(3))

    def test_non_convergence_reported(self):
        r = heat_diffusion(chain(50), {0: 0.0, 49: 1.0}, tol=1e-14,
                           max_iterations=5)
        assert not r.converged
        assert r.iterations == 5
