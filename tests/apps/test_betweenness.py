"""Betweenness centrality (validated against networkx)."""

import numpy as np
import pytest

from repro.apps.betweenness import betweenness_centrality, simulate_betweenness
from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, grid2d, star


class TestBetweenness:
    def test_star_center_dominates(self):
        scores = betweenness_centrality(star(9), normalized=True)
        assert scores[0] == pytest.approx(1.0)
        assert np.allclose(scores[1:], 0.0)

    def test_chain_middle_highest(self):
        scores = betweenness_centrality(chain(7), normalized=False)
        assert np.argmax(scores) == 3
        # endpoint lies on no shortest path between others
        assert scores[0] == pytest.approx(0.0)

    def test_complete_graph_all_zero(self):
        scores = betweenness_centrality(complete(6))
        assert np.allclose(scores, 0.0)

    @pytest.mark.parametrize("maker,args", [
        (chain, (8,)), (grid2d, (4, 4)), (erdos_renyi, (30, 90)), (star, (7,)),
    ])
    def test_matches_networkx(self, maker, args):
        nx = pytest.importorskip("networkx")
        g = maker(*args)
        ours = betweenness_centrality(g, normalized=True)
        ng = nx.Graph(list(map(tuple, g.edge_array())))
        ng.add_nodes_from(range(g.n_vertices))
        theirs = nx.betweenness_centrality(ng, normalized=True)
        for v in range(g.n_vertices):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9), v

    def test_disconnected_graph(self):
        nx = pytest.importorskip("networkx")
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        ours = betweenness_centrality(g, normalized=False)
        ng = nx.Graph(list(map(tuple, g.edge_array())))
        ng.add_nodes_from(range(6))
        theirs = nx.betweenness_centrality(ng, normalized=False)
        for v in range(6):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_sampled_estimate_close(self):
        g = erdos_renyi(60, 240, seed=1)
        exact = betweenness_centrality(g, normalized=True)
        approx = betweenness_centrality(g, sources=30, normalized=True, seed=2)
        # top-ranked vertex should be near the top of the estimate
        top = int(np.argmax(exact))
        assert approx[top] >= 0.5 * exact[top]

    def test_invalid_sources(self):
        with pytest.raises(ValueError):
            betweenness_centrality(chain(4), sources=0)
        with pytest.raises(ValueError):
            betweenness_centrality(chain(4), sources=5)

    def test_empty(self):
        assert len(betweenness_centrality(CSRGraph.from_edges(0, []))) == 0


class TestSimulatedBetweenness:
    def test_prices_forward_sweeps(self, tiny_machine):
        g = erdos_renyi(200, 800, seed=4)
        r = simulate_betweenness(g, 4, sources=3, config=tiny_machine,
                                 cache_scale=0.05, seed=1)
        assert r.n_sources == 3
        assert r.total_cycles > 0
        assert len(r.scores) == g.n_vertices
