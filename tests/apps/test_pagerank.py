"""PageRank application (validated against networkx)."""

import numpy as np
import pytest

from repro.apps.pagerank import pagerank, simulate_pagerank
from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, star


class TestPageRank:
    def test_ranks_sum_to_one(self):
        g = erdos_renyi(60, 200, seed=3)
        r = pagerank(g)
        assert r.converged
        assert r.ranks.sum() == pytest.approx(1.0)
        assert np.all(r.ranks > 0)

    def test_symmetric_graph_uniform(self):
        """On a vertex-transitive graph all ranks are equal."""
        g = complete(8)
        r = pagerank(g)
        assert np.allclose(r.ranks, 1 / 8)

    def test_hub_ranks_highest(self):
        g = star(12)
        r = pagerank(g)
        assert np.argmax(r.ranks) == 0

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = erdos_renyi(50, 150, seed=5)
        ours = pagerank(g, damping=0.85, tol=1e-12).ranks
        ng = nx.Graph(list(map(tuple, g.edge_array())))
        ng.add_nodes_from(range(g.n_vertices))
        theirs = nx.pagerank(ng, alpha=0.85, tol=1e-12)
        for v in range(g.n_vertices):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-6)

    def test_dangling_vertices_handled(self):
        g = CSRGraph.from_edges(4, [(0, 1)])  # 2 and 3 isolated
        r = pagerank(g)
        assert r.ranks.sum() == pytest.approx(1.0)
        assert r.converged

    def test_empty_graph(self):
        r = pagerank(CSRGraph.from_edges(0, []))
        assert r.converged and len(r.ranks) == 0

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(chain(3), damping=1.0)

    def test_non_convergence_reported(self):
        g = erdos_renyi(60, 200, seed=3)
        r = pagerank(g, tol=0.0, max_iterations=3)
        assert not r.converged
        assert r.iterations == 3


class TestSimulatedPageRank:
    def test_sim_prices_and_computes(self, tiny_machine):
        g = erdos_renyi(300, 1200, seed=6)
        r = simulate_pagerank(g, 4, iterations=5, config=tiny_machine,
                              cache_scale=0.05)
        assert r.total_cycles > 0
        assert r.ranks.sum() == pytest.approx(1.0)
        # same ranks as the direct computation at the same iteration count
        direct = pagerank(g, max_iterations=5, tol=0.0)
        assert np.allclose(r.ranks, direct.ranks)
