"""Task-graph phase scheduling via colouring (§I application)."""

import numpy as np
import pytest

from repro.apps.task_scheduling import phase_schedule, schedule_makespan
from repro.graph.csr import CSRGraph
from repro.graph.generators import chain, complete, erdos_renyi, star


class TestPhaseSchedule:
    def test_phases_are_independent_sets(self):
        g = erdos_renyi(50, 200, seed=2)
        sched = phase_schedule(g)
        for phase in sched.phases:
            phase_set = set(phase.tolist())
            for v in phase:
                assert not (set(g.neighbors(v).tolist()) & phase_set)

    def test_every_task_scheduled_once(self):
        g = erdos_renyi(40, 120, seed=3)
        sched = phase_schedule(g)
        all_tasks = np.concatenate(sched.phases)
        assert sorted(all_tasks) == list(range(40))

    def test_independent_tasks_one_phase(self):
        g = CSRGraph.from_edges(5, [])
        sched = phase_schedule(g)
        assert sched.n_phases == 1
        assert sched.n_synchronizations == 0

    def test_all_conflicting_tasks_serialise(self):
        sched = phase_schedule(complete(6))
        assert sched.n_phases == 6

    def test_rejects_improper_coloring(self):
        g = chain(3)
        with pytest.raises(ValueError, match="proper"):
            phase_schedule(g, colors=np.array([1, 1, 1]))

    def test_explicit_coloring_used(self):
        g = chain(4)
        sched = phase_schedule(g, colors=np.array([1, 2, 3, 4]))
        assert sched.n_phases == 4  # wasteful but proper


class TestMakespan:
    def test_single_worker_is_total_work(self):
        g = star(9)
        sched = phase_schedule(g)
        assert schedule_makespan(sched, 1, task_cost=2.0) == 9 * 2.0

    def test_many_workers_bounded_by_phases(self):
        g = erdos_renyi(60, 200, seed=4)
        sched = phase_schedule(g)
        assert schedule_makespan(sched, 1000) == sched.n_phases

    def test_fewer_colors_fewer_syncs(self):
        """§I: minimising colours decreases synchronisation points."""
        g = chain(10)  # 2-colourable
        good = phase_schedule(g)
        bad = phase_schedule(g, colors=np.arange(1, 11))
        barrier = 5.0
        assert good.n_synchronizations < bad.n_synchronizations
        assert schedule_makespan(good, 8, barrier_cost=barrier) < \
            schedule_makespan(bad, 8, barrier_cost=barrier)

    def test_invalid_args(self):
        sched = phase_schedule(chain(4))
        with pytest.raises(ValueError):
            schedule_makespan(sched, 0)
        with pytest.raises(ValueError):
            schedule_makespan(sched, 2, task_cost=-1.0)
