"""The SMT roofline companion model."""

import pytest

from repro.machine.config import KNF
from repro.models.smt_model import (saturation_threads, smt_speedup,
                                    smt_speedup_curve)


class TestSmtSpeedup:
    def test_single_thread_is_one(self):
        assert smt_speedup(100, 400, 1, KNF) == pytest.approx(1.0)

    def test_memory_bound_linear(self):
        """stall >> compute: linear up to the full SMT thread count."""
        t = KNF.max_threads
        assert smt_speedup(1, 1e9, t, KNF) == pytest.approx(t)

    def test_compute_bound_caps_at_cores(self):
        s = smt_speedup(1000, 0, KNF.max_threads, KNF)
        assert s == pytest.approx(KNF.n_cores)

    def test_mixed_regime(self):
        # stall = compute: cap = 2 * cores
        s = smt_speedup(100, 100, KNF.max_threads, KNF)
        assert s == pytest.approx(2 * KNF.n_cores * 124 / 124, rel=0.05)

    def test_monotone_until_saturation(self):
        curve = smt_speedup_curve(100, 300, range(1, 32), KNF)
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_saturation_point(self):
        assert saturation_threads(100, 300, KNF) == pytest.approx(4 * 31)
        assert saturation_threads(100, 0, KNF) == pytest.approx(31)

    def test_invalid(self):
        with pytest.raises(ValueError):
            smt_speedup(0, 1, 1, KNF)
        with pytest.raises(ValueError):
            smt_speedup(1, -1, 1, KNF)
        with pytest.raises(ValueError):
            smt_speedup(1, 1, 0, KNF)
        with pytest.raises(ValueError):
            smt_speedup(1, 1, KNF.max_threads + 1, KNF)
        with pytest.raises(ValueError):
            saturation_threads(0, 1, KNF)
