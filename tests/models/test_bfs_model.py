"""The paper's analytic layered-BFS model (§III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import chain, tube_mesh
from repro.models.bfs_model import (bfs_model_curve, bfs_model_level_cost,
                                    bfs_model_speedup,
                                    bfs_model_speedup_for_graph)


class TestLevelCost:
    def test_small_level_costs_itself(self):
        """x_l < b: a single thread processes the partial block: c = x_l."""
        assert bfs_model_level_cost([5], n_threads=8, block=32) == [5.0]

    def test_large_level_rounds_of_blocks(self):
        """x_l >= b: ceil(x/(t*b)) rounds of b time units."""
        c = bfs_model_level_cost([1000], n_threads=4, block=32)
        assert c[0] == np.ceil(1000 / (4 * 32)) * 32  # 8 rounds * 32

    def test_exact_fit(self):
        assert bfs_model_level_cost([128], n_threads=4, block=32) == [32.0]

    def test_boundary_x_equals_b(self):
        c = bfs_model_level_cost([32], n_threads=4, block=32)
        assert c[0] == 32.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bfs_model_level_cost([1], 0, 32)
        with pytest.raises(ValueError):
            bfs_model_level_cost([1], 1, 0)
        with pytest.raises(ValueError):
            bfs_model_level_cost([-1], 1, 1)


class TestSpeedup:
    def test_single_thread_never_above_one(self):
        """At t=1 the model only loses to padding: speedup <= 1."""
        for widths in ([10, 20, 33], [100], [1, 1, 1]):
            assert bfs_model_speedup(widths, 1, 32) <= 1.0 + 1e-12

    def test_chain_has_no_parallelism(self):
        widths = np.ones(100)
        s1 = bfs_model_speedup(widths, 1, 32)
        s128 = bfs_model_speedup(widths, 128, 32)
        assert s1 == s128 == 1.0

    def test_wide_levels_scale(self):
        widths = np.full(10, 32 * 64)
        assert bfs_model_speedup(widths, 64, 32) == pytest.approx(64.0)

    def test_parallelism_capped_by_blocks_per_level(self):
        """x_l/b blocks bound the useful threads (the Fig 4 slope break)."""
        widths = np.full(20, 4 * 32)  # four blocks per level
        assert bfs_model_speedup(widths, 4, 32) == \
            bfs_model_speedup(widths, 100, 32) == pytest.approx(4.0)

    def test_monotone_in_threads(self):
        widths = [50, 300, 700, 300, 50]
        curve = bfs_model_curve(widths, range(1, 40), block=16)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_speedup_never_exceeds_threads(self):
        widths = [100, 200, 400]
        for t in (1, 2, 7, 33):
            assert bfs_model_speedup(widths, t, 8) <= t + 1e-12

    def test_zero_widths(self):
        assert bfs_model_speedup([], 4, 32) == 0.0

    def test_for_graph_wrapper(self):
        g = tube_mesh(1000, 50, 8, 1.0, 3, seed=1)
        s = bfs_model_speedup_for_graph(g, 8, block=8)
        assert 0 < s <= 8

    def test_deep_graph_lower_model_ceiling(self):
        """pwtk vs inline_1 mechanism: deeper tube -> lower model peak."""
        deep = tube_mesh(2000, 20, 6, 1.0, 3, seed=1)
        shallow = tube_mesh(2000, 200, 6, 1.0, 3, seed=1)
        s_deep = bfs_model_speedup_for_graph(deep, 31, block=8)
        s_shallow = bfs_model_speedup_for_graph(shallow, 31, block=8)
        assert s_shallow > 1.5 * s_deep


@given(st.lists(st.integers(0, 5000), min_size=1, max_size=60),
       st.integers(1, 128), st.integers(1, 64))
@settings(max_examples=80, deadline=None)
def test_property_model_bounds(widths, t, b):
    s = bfs_model_speedup(widths, t, b)
    assert 0 <= s <= t + 1e-9
    # cost per level is at least the ideal parallel cost
    costs = bfs_model_level_cost(widths, t, b)
    ideal = np.asarray(widths, dtype=float) / t
    assert np.all(costs >= ideal - 1e-9)
