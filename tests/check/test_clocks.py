"""Vector-clock primitives (repro.check.clocks)."""

from repro.check.clocks import VectorClock, ordered_before


def test_fresh_clock_reads_zero_everywhere():
    vc = VectorClock()
    assert vc.get(0) == 0
    assert vc.get(("loop", 7)) == 0


def test_tick_advances_one_component():
    vc = VectorClock()
    vc.tick(3)
    vc.tick(3)
    assert vc.get(3) == 2
    assert vc.get(4) == 0


def test_copy_is_independent():
    vc = VectorClock()
    vc.tick(1)
    snap = vc.copy()
    vc.tick(1)
    assert snap.get(1) == 1
    assert vc.get(1) == 2


def test_join_takes_componentwise_max():
    a, b = VectorClock(), VectorClock()
    a.tick(1)
    a.tick(1)
    b.tick(1)
    b.tick(2)
    a.join(b)
    assert a.get(1) == 2
    assert a.get(2) == 1


def test_dominates():
    a, b = VectorClock(), VectorClock()
    a.tick(1)
    a.tick(2)
    b.tick(1)
    assert a.dominates(b)
    assert not b.dominates(a)
    b.tick(3)
    assert not a.dominates(b)


def test_tuple_components_do_not_collide():
    # Separate loops use (loop, tid) components: epoch 1 of (0, 2) must
    # never order against epoch 1 of (1, 2).
    vc = VectorClock()
    vc.tick((0, 2))
    assert vc.get((1, 2)) == 0


def test_ordered_before_snapshot_semantics():
    # Event A snapshots before ticking; anything causally after A sees a
    # strictly greater epoch on A's component.
    owner = VectorClock()
    owner.tick(1)
    snap_a = owner.copy()   # A's snapshot: comp 1 at epoch 1
    owner.tick(1)           # A committed
    other = VectorClock()
    other.join(owner)       # synchronised-after A
    assert ordered_before(snap_a, 1, other)
    concurrent = VectorClock()
    concurrent.tick(2)
    assert not ordered_before(snap_a, 1, concurrent)
