"""Shipped kernels under the checker: clean, benign-only, unperturbed."""

import numpy as np
import pytest

from repro import check
from repro.check.checker import Checker
from repro.graph.generators import complete, erdos_renyi
from repro.kernels.bfs.layered import BFS_VARIANTS, simulate_bfs
from repro.kernels.coloring.parallel import parallel_coloring
from repro.kernels.irregular import simulate_irregular
from repro.machine.config import KNF
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule)

CFG = KNF.with_(name="check-kernels", n_cores=4, smt_per_core=2)

SPECS = {
    "openmp": RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                          chunk=8),
    "cilk": RuntimeSpec(ProgrammingModel.CILK, chunk=8),
    "tbb": RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE,
                       chunk=8),
}


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 480, seed=7)


@pytest.mark.parametrize("runtime", sorted(SPECS))
def test_coloring_clean_and_unperturbed(graph, runtime):
    spec = SPECS[runtime]
    base = parallel_coloring(graph, 4, spec=spec, config=CFG, seed=1)
    with check.checking() as c:
        inst = parallel_coloring(graph, 4, spec=spec, config=CFG, seed=1)
    report = c.finalize()
    assert report.ok, report.format()
    # Zero perturbation: identical simulated time AND identical semantics.
    assert inst.total_cycles == base.total_cycles
    assert np.array_equal(inst.colors, base.colors)
    # The speculative race is annotated and, with 4 threads, realised.
    assert report.benign["colors"].pairs > 0


@pytest.mark.parametrize("variant", BFS_VARIANTS)
@pytest.mark.parametrize("relaxed", [True, False])
def test_bfs_clean_and_unperturbed(graph, variant, relaxed):
    base = simulate_bfs(graph, 4, variant=variant, relaxed=relaxed,
                        config=CFG, seed=2)
    with check.checking() as c:
        inst = simulate_bfs(graph, 4, variant=variant, relaxed=relaxed,
                            config=CFG, seed=2)
    report = c.finalize()
    assert report.ok, report.format()
    assert inst.total_cycles == base.total_cycles
    assert np.array_equal(inst.dist, base.dist)
    assert "dist" in report.benign


def test_irregular_clean_and_unperturbed(graph):
    base = simulate_irregular(graph, 4, iterations=2, config=CFG, seed=3)
    with check.checking() as c:
        inst = simulate_irregular(graph, 4, iterations=2, config=CFG, seed=3)
    report = c.finalize()
    assert report.ok, report.format()
    assert inst.total_cycles == base.total_cycles
    assert report.benign["state"].pairs > 0


def test_seeded_bug_coloring_detected(graph):
    """Dropping the tentative->conflict region join (launching conflict
    detection without waiting for the colouring pass) must surface as an
    unannotated race on ``colors``."""
    with check.checking(Checker(drop_edges={"region-join"})) as c:
        parallel_coloring(graph, 4, config=CFG, seed=1)
    report = c.finalize()
    assert not report.ok
    assert any(f.kind == "race" and f.array == "colors"
               for f in report.errors)


def test_seeded_bug_bfs_detected():
    # Complete graph: same-level vertices are mutually adjacent, so a
    # missing inter-level join races level L's writes with L+1's reads.
    with check.checking(Checker(drop_edges={"region-join"})) as c:
        simulate_bfs(complete(12), 4, variant="openmp-block", config=CFG,
                     seed=2)
    report = c.finalize()
    assert not report.ok
    assert any(f.array == "dist" for f in report.errors)


def test_checker_does_not_leak_across_context_exit(graph):
    with check.checking():
        parallel_coloring(graph, 2, config=CFG, seed=1)
    assert check.active() is None
    # And an unchecked run afterwards behaves normally.
    run = parallel_coloring(graph, 2, config=CFG, seed=1)
    assert run.n_colors > 0


def test_single_thread_runs_are_trivially_clean(graph):
    with check.checking() as c:
        parallel_coloring(graph, 1, config=CFG, seed=1)
        simulate_bfs(graph, 1, config=CFG, seed=2)
    report = c.finalize()
    assert report.ok
    assert not report.findings


def test_obs_counters_emitted_alongside():
    from repro.obs import metrics as obs_metrics
    from repro.obs.metrics import MetricsRegistry

    g = erdos_renyi(60, 240, seed=9)
    registry = MetricsRegistry()
    obs_metrics.install(registry)
    try:
        with check.checking() as c:
            parallel_coloring(g, 4, config=CFG, seed=1)
        c.finalize()
    finally:
        obs_metrics.uninstall()
    assert "check.loops" in registry.snapshot()


def test_race_fraction_env_override(graph, monkeypatch):
    from repro.kernels.coloring.parallel import color_race_fraction

    monkeypatch.setenv("REPRO_COLOR_RACE_FRACTION", "0.5")
    assert color_race_fraction() == 0.5
    monkeypatch.setenv("REPRO_COLOR_RACE_FRACTION", "1.5")
    with pytest.raises(ValueError, match="REPRO_COLOR_RACE_FRACTION"):
        color_race_fraction()
    monkeypatch.setenv("REPRO_COLOR_RACE_FRACTION", "nope")
    with pytest.raises(ValueError, match="REPRO_COLOR_RACE_FRACTION"):
        color_race_fraction()
    monkeypatch.delenv("REPRO_COLOR_RACE_FRACTION")
    from repro.kernels.coloring.parallel import COLOR_RACE_FRACTION
    assert color_race_fraction() == COLOR_RACE_FRACTION


def test_race_fraction_zero_eliminates_conflicts(graph, monkeypatch):
    """The fraction bounds realised speculation: at 0 every clash behaves
    as if the concurrent commit was seen, so no conflict rounds occur."""
    monkeypatch.setenv("REPRO_COLOR_RACE_FRACTION", "0")
    run = parallel_coloring(graph, 4, config=CFG, seed=1)
    assert sum(run.conflicts_per_round) == 0
    assert run.rounds == 1
