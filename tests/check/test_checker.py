"""Checker core: activation protocol, HB edges, race classification."""

import numpy as np
import pytest

from repro import check
from repro.check.checker import Checker
from repro.kernels.base import AccessSet, BenignRace
from repro.machine.config import KNF
from repro.machine.costs import WorkCosts
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule)

CFG = KNF.with_(name="check-test", n_cores=4, smt_per_core=2)


def _work(n=64, cycles=50.0):
    return WorkCosts(compute=np.full(n, cycles), stall=np.zeros(n),
                     volume=np.ones(n))


def _omp(chunk=8):
    return RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                       chunk=chunk)


# --- activation protocol (mirrors repro.obs) -----------------------------

def test_no_checker_by_default():
    assert check.active() is None


def test_install_uninstall_roundtrip():
    c = Checker()
    check.install(c)
    try:
        assert check.active() is c
    finally:
        check.uninstall()
    assert check.active() is None


def test_double_install_rejected():
    with check.checking():
        with pytest.raises(RuntimeError):
            check.install(Checker())


def test_install_requires_checker_type():
    with pytest.raises(TypeError):
        check.install(object())


def test_unknown_drop_edge_rejected():
    with pytest.raises(ValueError, match="unknown drop_edges"):
        Checker(drop_edges={"no-such-edge"})


# --- access-set API ------------------------------------------------------

def test_benign_race_requires_reason():
    with pytest.raises(ValueError, match="reason"):
        BenignRace("arr", "")


def test_benign_race_rejects_negative_bound():
    with pytest.raises(ValueError, match="bound"):
        BenignRace("arr", "why", bound=-1.0)


def test_footprint_dedupes_and_drops_empty():
    acc = (AccessSet("t")
           .writes("a", lambda lo, hi: np.array([3, 3, 1]))
           .reads("b", lambda lo, hi: np.array([], dtype=np.int64)))
    fp = acc.footprint(0, 4)
    assert list(fp) == ["a"]
    kind, cells, guard = fp["a"][0]
    assert kind == "write" and guard is None
    assert cells.tolist() == [1, 3]


# --- race detection ------------------------------------------------------

def test_overlapping_writes_race():
    acc = AccessSet("bad").writes("shared", lambda lo, hi: np.array([0]))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    report = c.finalize()
    assert not report.ok
    assert report.errors[0].kind == "race"
    assert report.errors[0].array == "shared"


def test_disjoint_writes_clean():
    acc = AccessSet("ok").writes("arr", lambda lo, hi: np.arange(lo, hi))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    report = c.finalize()
    assert report.ok and not report.findings


def test_read_read_overlap_is_not_a_race():
    acc = AccessSet("ro").reads("arr", lambda lo, hi: np.array([0]))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    assert c.finalize().ok


def test_same_guard_is_synchronized():
    acc = AccessSet("locked").writes("arr", lambda lo, hi: np.array([0]),
                                    guard="per-cell-lock")
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    assert c.finalize().ok


def test_annotated_race_is_tallied_not_reported():
    acc = (AccessSet("spec").writes("arr", lambda lo, hi: np.array([0]))
           .benign_race("arr", "intentional", expect=True))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    report = c.finalize()
    assert report.ok
    tally = report.benign["arr"]
    assert tally.pairs > 0 and tally.writes > 0
    assert tally.reason == "intentional"


def test_expected_benign_race_absent_warns():
    # Disjoint cells: the annotation promises races that never occur.
    acc = (AccessSet("spec").writes("arr", lambda lo, hi: np.arange(lo, hi))
           .benign_race("arr", "promised", expect=True))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    report = c.finalize()
    assert report.ok  # warning, not error
    assert any(f.kind == "benign-missing" for f in report.findings)


def test_benign_bound_violation_is_error():
    acc = (AccessSet("spec").writes("arr", lambda lo, hi: np.array([0]))
           .benign_race("arr", "capped", bound=0.001))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=acc)
    report = c.finalize()
    assert not report.ok
    assert report.errors[0].kind == "benign-bound"


def test_loops_without_access_sets_are_skipped():
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work())
    report = c.finalize()
    assert report.ok
    assert report.counters["chunks"] > 0


# --- happens-before edges ------------------------------------------------

def test_region_join_orders_consecutive_loops():
    wr = AccessSet("w").writes("arr", lambda lo, hi: np.arange(lo, hi))
    rd = AccessSet("r").reads("arr", lambda lo, hi: np.arange(lo, hi))
    with check.checking() as c:
        _omp().parallel_for(CFG, 4, _work(), access=wr)
        _omp().parallel_for(CFG, 4, _work(), access=rd)
    assert c.finalize().ok


def test_drop_region_join_surfaces_cross_loop_race():
    wr = AccessSet("w").writes("arr", lambda lo, hi: np.arange(lo, hi))
    rd = AccessSet("r").reads("arr", lambda lo, hi: np.arange(lo, hi))
    with check.checking(Checker(drop_edges={"region-join"})) as c:
        _omp().parallel_for(CFG, 4, _work(), access=wr)
        _omp().parallel_for(CFG, 4, _work(), access=rd)
    report = c.finalize()
    assert not report.ok
    assert all(f.kind == "race" for f in report.errors)


def test_annotation_does_not_excuse_cross_loop_races():
    # benign_race covers races within its own region; a missing join
    # between two annotated regions must still be an error.
    def mk():
        return (AccessSet("w").writes("arr", lambda lo, hi: np.arange(lo, hi))
                .benign_race("arr", "intra-region only"))
    with check.checking(Checker(drop_edges={"region-join"})) as c:
        _omp().parallel_for(CFG, 4, _work(), access=mk())
        _omp().parallel_for(CFG, 4, _work(), access=mk())
    assert not c.finalize().ok


def test_steal_edges_cover_work_stealing_runtimes():
    # Disjoint per-item writes under TBB: pops/steals must keep the
    # shadow deques aligned and produce no false positives.
    acc = AccessSet("ok").writes("arr", lambda lo, hi: np.arange(lo, hi))
    spec = RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE,
                       chunk=4)
    with check.checking() as c:
        spec.parallel_for(CFG, 8, _work(128), access=acc, seed=5)
    report = c.finalize()
    assert report.ok
    assert report.counters.get("steal_edges", 0) > 0


def test_deterministic_across_runs():
    acc = AccessSet("bad").writes("shared", lambda lo, hi: np.array([0]))
    reports = []
    for _ in range(2):
        with check.checking() as c:
            _omp().parallel_for(CFG, 4, _work(), access=acc)
        reports.append(c.finalize().to_dict())
    assert reports[0] == reports[1]


# --- synthetic lock anomalies --------------------------------------------

def _lock_scenario(order_ba: bool):
    """Two threads nesting two TicketLocks; opposite order iff order_ba."""
    from repro.sim.engine import Engine
    from repro.sim.resources import TicketLock

    engine = Engine()
    chk = check.active()
    chk.begin_loop("lock-test", 2, None)
    la = TicketLock(2.0, label="lock-a")
    lb = TicketLock(2.0, label="lock-b")

    def thread(tid, first, second):
        done = first.acquire(engine.now, hold=20.0, tid=tid)
        inner_done = second.acquire(engine.now + 5.0, hold=5.0, tid=tid)
        yield max(done, inner_done) - engine.now

    engine.spawn(thread(0, la, lb), tid=0)
    engine.spawn(thread(1, lb if order_ba else la, la if order_ba else lb),
                 tid=1)
    engine.run()
    chk.end_loop()


def test_lock_order_cycle_detected():
    with check.checking() as c:
        _lock_scenario(order_ba=True)
    report = c.finalize()
    assert any(f.kind == "lock-order" for f in report.errors)


def test_consistent_lock_order_clean():
    with check.checking() as c:
        _lock_scenario(order_ba=False)
    report = c.finalize()
    assert not any(f.kind == "lock-order" for f in report.findings)


def test_double_barrier_warns():
    from repro.sim.engine import Barrier, Engine

    with check.checking() as c:
        chk = check.active()
        engine = Engine()
        chk.begin_loop("bar-test", 2, None)
        bar = Barrier(engine, 2)

        def thread(tid):
            yield bar
            yield bar  # no work between the two trips

        engine.spawn(thread(0), tid=0)
        engine.spawn(thread(1), tid=1)
        engine.run()
        chk.end_loop()
    report = c.finalize()
    assert any(f.kind == "double-barrier" for f in report.findings)
    assert report.ok  # warning severity
