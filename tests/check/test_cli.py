"""``repro check`` CLI: exit codes, JSON output, seeded bugs."""

import json

import pytest

from repro.check.cli import main as check_main
from repro.experiments.cli import main as top_main


def test_clean_cell_exits_zero(capsys):
    rc = check_main(["--kernel", "coloring", "--runtime", "openmp",
                     "--graph", "er120", "-q"])
    assert rc == 0


def test_dispatch_through_top_level_cli():
    rc = top_main(["check", "--kernel", "irregular", "--runtime", "tbb",
                   "--graph", "grid8x6", "-q"])
    assert rc == 0


def test_seeded_bug_exits_nonzero():
    rc = check_main(["--kernel", "coloring", "--runtime", "openmp",
                     "--graph", "er120", "--seed-bug", "drop-region-join",
                     "-q"])
    assert rc == 1


def test_seeded_bug_bfs_exits_nonzero():
    rc = check_main(["--kernel", "bfs", "--runtime", "openmp",
                     "--graph", "complete16", "--seed-bug",
                     "drop-region-join", "-q"])
    assert rc == 1


def test_json_report(tmp_path):
    out = tmp_path / "report.json"
    rc = check_main(["--kernel", "bfs", "--runtime", "cilk",
                     "--graph", "complete16", "--json", str(out), "-q"])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["ok"] is True
    assert len(doc["loops"]) > 0
    assert "dist" in doc["benign"]


def test_json_to_stdout(capsys):
    rc = check_main(["--kernel", "coloring", "--runtime", "tbb",
                     "--graph", "grid8x6", "--json", "-"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True


def test_assert_unperturbed_clean():
    rc = check_main(["--kernel", "coloring", "--runtime", "openmp",
                     "--graph", "grid8x6", "--assert-unperturbed", "-q"])
    assert rc == 0


@pytest.mark.parametrize("runtime", ["openmp", "cilk", "tbb"])
def test_all_runtimes_clean_on_tiny_graph(runtime):
    assert check_main(["--kernel", "coloring", "--runtime", runtime,
                       "--graph", "complete16", "-q"]) == 0


def test_unknown_seed_bug_rejected():
    with pytest.raises(SystemExit):
        check_main(["--kernel", "coloring", "--seed-bug", "drop-everything"])


def test_human_readable_report_mentions_benign(capsys):
    rc = check_main(["--kernel", "coloring", "--runtime", "openmp",
                     "--graph", "er120"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "BENIGN" in out
    assert "colors" in out
