"""Benchmark helpers.

Every benchmark regenerates one of the paper's tables/figures end-to-end
(workload generation, simulation sweep, aggregation) exactly once —
``benchmark.pedantic(rounds=1)`` — because a sweep is minutes, not
microseconds, and its interesting output is the table itself, which is
printed and attached to ``benchmark.extra_info``.

Run with ``pytest benchmarks/ --benchmark-only``.  Set ``REPRO_FAST=1``
(or ``REPRO_GRAPHS``/``REPRO_THREADS``) to shrink the sweeps.
"""

import pytest


@pytest.fixture
def run_once(benchmark, capsys):
    """Run fn() once under the benchmark clock; print + record its output."""

    def _run(fn, describe=None):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        if describe is not None:
            text = describe(result)
            with capsys.disabled():
                print()
                print(text)
            benchmark.extra_info["result"] = text.splitlines()[:40]
        return result

    return _run

