"""Figure 2 — colouring on randomly ordered graphs.

Paper findings asserted: destroying locality makes the kernel purely
memory-bound; SMT plus the chip's aggregate cache yield *super-linear*
speedups (OpenMP 153 > TBB 121 > Cilk 98 at 121 threads)."""

from repro.experiments.fig2_shuffled import run_fig2
from repro.experiments.report import format_panel


def test_fig2_shuffled(run_once):
    panel = run_once(run_fig2, describe=format_panel)
    top = panel.thread_counts[-1]
    omp = panel.at("OpenMP-dynamic", top)
    tbb = panel.at("TBB-simple", top)
    cilk = panel.at("CilkPlus-holder", top)
    assert omp > top          # super-linear, as in the paper
    assert omp > tbb > cilk   # the paper's model ordering
    # monotone scaling all the way up (Fig 2 shows no rollover)
    s = panel.series["OpenMP-dynamic"]
    assert all(b >= a for a, b in zip(s, s[1:]))
