"""Table I — properties of the test graphs."""

import pytest

from repro.experiments.table1 import format_table1, table1_rows


def test_table1(run_once):
    rows = run_once(lambda: table1_rows(), describe=lambda _: format_table1())
    assert len(rows) == 7
    # the paper's headline structural facts hold at scale
    by_name = {r[0]: r for r in rows}
    assert by_name["pwtk"][9] == max(r[9] for r in rows)       # deepest BFS
    assert by_name["auto"][7] == min(r[7] for r in rows)       # fewest colours
    for r in rows:
        assert r[9] == pytest.approx(r[10], rel=0.08)          # levels ~ paper
