"""Figure 4 — layered BFS speedups against the analytic model.

One bench per panel (a: pwtk, b: inline_1, c: all graphs on MIC,
d: all graphs on the host CPU).  Panels c and d sweep the full suite; a
and b reuse nothing, so each bench times its own sweep.

Paper findings asserted: measured block-queue speedup tracks (slightly
exceeds) the model up to the core count, then declines; pwtk peaks at
roughly half of inline_1; the pennant bag performs poorly on the MIC; on
the host CPU the block queue beats both SNAP's TLS queues and the bag;
relaxed queues beat locked ones throughout."""

import pytest

from repro.experiments.fig4_bfs import run_fig4_panel
from repro.experiments.harness import panel_graphs
from repro.experiments.report import format_panel
from repro.machine.config import HOST_XEON, KNF

_cache = {}


def _panel_a():
    if "a" not in _cache:
        _cache["a"] = run_fig4_panel(
            "Fig 4(a): BFS speedup, pwtk on Intel MIC",
            ["OpenMP-Block-relaxed", "OpenMP-Block"], ["pwtk"], KNF)
    return _cache["a"]


def _panel_b():
    if "b" not in _cache:
        _cache["b"] = run_fig4_panel(
            "Fig 4(b): BFS speedup, inline_1 on Intel MIC",
            ["OpenMP-Block-relaxed", "OpenMP-Block"], ["inline_1"], KNF)
    return _cache["b"]


def test_fig4a_pwtk(run_once):
    panel = run_once(_panel_a, describe=format_panel)
    # relaxed beats locked; measured ~ model at the core count
    assert panel.at("OpenMP-Block-relaxed", 31) > panel.at("OpenMP-Block", 31)
    assert panel.at("OpenMP-Block-relaxed", 31) == \
        pytest.approx(panel.at("Model", 31), rel=0.6)
    # decline past the cores (the paper's >37-threads regime)
    top = panel.thread_counts[-1]
    assert panel.at("OpenMP-Block-relaxed", top) < \
        panel.at("OpenMP-Block-relaxed", 31)


def test_fig4b_inline1(run_once):
    panel = run_once(_panel_b, describe=format_panel)
    # "the peak speedup on the inline_1 graph is about twice the speedup
    # achieved on pwtk" (§V-D)
    peak_b = panel.best("OpenMP-Block-relaxed")[1]
    peak_a = _panel_a().best("OpenMP-Block-relaxed")[1]
    assert peak_b > 1.5 * peak_a
    assert panel.at("OpenMP-Block-relaxed", 31) > panel.at("OpenMP-Block", 31)


def test_fig4c_all_mic(run_once):
    panel = run_once(
        lambda: run_fig4_panel(
            "Fig 4(c): BFS speedup, all graphs on Intel MIC",
            ["OpenMP-Block-relaxed", "TBB-Block-relaxed",
             "CilkPlus-Bag-relaxed"], panel_graphs(), KNF),
        describe=format_panel)
    # the bag "performs poorly on Intel MIC whereas the implementation
    # based on the blocked queue performs better" (§V-D)
    assert panel.best("CilkPlus-Bag-relaxed")[1] < \
        0.7 * panel.best("OpenMP-Block-relaxed")[1]
    assert "Model" in panel.series


def test_fig4d_all_cpu(run_once):
    panel = run_once(
        lambda: run_fig4_panel(
            "Fig 4(d): BFS speedup, all graphs on host CPU",
            ["OpenMP-Block-relaxed", "TBB-Block-relaxed", "OpenMP-TLS",
             "CilkPlus-Bag-relaxed"], panel_graphs(), HOST_XEON),
        describe=format_panel)
    top = panel.thread_counts[-1]
    # "the Bag and TLS based implementation perform significantly slower
    # than our Block queue implementation" (§V-D)
    assert panel.at("OpenMP-Block-relaxed", top) > panel.at("OpenMP-TLS", top)
    assert panel.best("OpenMP-Block-relaxed")[1] > \
        panel.best("CilkPlus-Bag-relaxed")[1]
