"""Figure 1 — colouring speedups per programming model (natural order).

One bench per panel, as in the paper.  The three panels share the same
sweep (and per-graph baselines), computed once per benchmark session.

Paper findings asserted: OpenMP reaches the highest speedups and keeps
scaling to 121 threads (72 in the paper); TBB's simple partitioner is the
best TBB variant (peak ~45); Cilk peaks lowest (~32); the two Cilk TLS
variants are nearly identical.
"""

import numpy as np
import pytest

from repro.experiments.fig1_coloring import run_fig1
from repro.experiments.report import format_panel

_cache = {}


def _results():
    if "fig1" not in _cache:
        _cache["fig1"] = run_fig1()
    return _cache["fig1"]


def _panel(key):
    return next(p for title, p in _results().items() if key in title)


def test_fig1a_openmp(run_once):
    panel = run_once(lambda: _panel("OpenMP"), describe=format_panel)
    top = panel.thread_counts[-1]
    # memory-bound colouring keeps scaling past the 31 cores (SMT)
    assert panel.at("OpenMP-dynamic", top) > 40
    assert panel.at("OpenMP-dynamic", top) > 1.3 * panel.at("OpenMP-dynamic", 31)


def test_fig1b_cilkplus(run_once):
    panel = run_once(lambda: _panel("Cilk"), describe=format_panel)
    a, b = panel.series["CilkPlus"], panel.series["CilkPlus-holder"]
    # §V-B: "the performance of both variants are very close"
    assert np.all(np.abs(a - b) <= 0.15 * np.maximum(a, b) + 0.5)
    # Cilk is the weakest model (paper peak 32 vs OpenMP 72)
    assert panel.best("CilkPlus-holder")[1] < \
        0.75 * _panel("OpenMP").best("OpenMP-dynamic")[1]


def test_fig1c_tbb(run_once):
    panel = run_once(lambda: _panel("TBB"), describe=format_panel)
    top = panel.thread_counts[-1]
    assert panel.at("TBB-simple", top) > panel.at("TBB-auto", top)
    # TBB lands between OpenMP and Cilk (paper: 45 between 72 and 32)
    assert _panel("Cilk").best("CilkPlus-holder")[1] \
        < panel.best("TBB-simple")[1] \
        < _panel("OpenMP").best("OpenMP-dynamic")[1]
