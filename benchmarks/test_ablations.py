"""Ablation benches for the design choices DESIGN.md calls out."""

import numpy as np

from repro.experiments.ablations import (run_bandwidth_ablation,
                                         run_block_size_ablation,
                                         run_cache_ablation,
                                         run_relaxed_ablation,
                                         run_smt_ablation)
from repro.experiments.report import format_panel


def test_ablation_block_size(run_once):
    """§IV-C tradeoff: small blocks balance better, too small spends
    atomics; at suite scale the optimum is the scaled block (8)."""
    panel = run_once(run_block_size_ablation, describe=format_panel)
    peaks = {label: panel.best(label)[1] for label in panel.series}
    assert peaks["b=8"] > peaks["b=64"]
    assert peaks["b=8"] > peaks["b=128"]


def test_ablation_relaxed(run_once):
    panel = run_once(run_relaxed_ablation, describe=format_panel)
    s_rel = panel.series["OpenMP-Block-relaxed"]
    s_lock = panel.series["OpenMP-Block"]
    assert np.all(s_rel[1:] >= s_lock[1:])  # relaxed wins at every t > 1


def test_ablation_smt(run_once):
    """The headline: without SMT the speedup stops at the core count."""
    panel = run_once(run_smt_ablation, describe=format_panel)
    with_smt = panel.best("SMT 4-way")[1]
    without = panel.best("SMT 1-way")[1]
    # 1-way caps near the core count (cache residency allows a little
    # super-linearity even then); 4-way SMT goes well beyond it
    assert without <= 1.35 * 31
    assert with_smt > 1.3 * without


def test_ablation_cache(run_once):
    """Without the chip-residency benefit, Fig 2's super-linearity dies."""
    panel = run_once(run_cache_ablation, describe=format_panel)
    top = panel.thread_counts[-1]
    with_cache = panel.at("with chip cache", top)
    without = panel.at("without chip cache", top)
    assert with_cache > 1.15 * without
    assert without <= top + 1


def test_ablation_bandwidth(run_once):
    """A starved DRAM channel breaks the linear scaling the KNF showed."""
    panel = run_once(run_bandwidth_ablation, describe=format_panel)
    top = panel.thread_counts[-1]
    assert panel.at("banks=16", top) > 1.2 * panel.at("banks=1", top)


def test_chunk_size_sweep(run_once):
    """§V-B tuning: sweep the OpenMP dynamic chunk size (paper: 40-150,
    best 100; scaled here by ~1/8)."""
    from repro.experiments.chunk_sweep import run_chunk_sweep

    panel = run_once(run_chunk_sweep, describe=format_panel)
    top = panel.thread_counts[-1]
    values = {label: panel.at(label, top) for label in panel.series}
    best = max(values, key=values.get)
    # the optimum is interior-ish: the largest chunk quantises too
    # coarsely at full thread count
    assert values[best] > values[f"chunk={max(int(k.split('=')[1]) for k in values)}"]


def test_extension_rmat_bfs(run_once):
    """Graph500-style extension: BFS on R-MAT graphs.  Wide frontiers make
    the analytic model predict near-linear scaling; the measured block
    queue is *hub-limited* (a 1500-degree vertex's chunk bounds each
    level's span — the per-vertex parallelism of §III that block queues
    do not exploit), an honest gap the bench asserts."""
    from repro.experiments.rmat_bfs import run_rmat_bfs

    panel = run_once(run_rmat_bfs, describe=format_panel)
    top = panel.thread_counts[-1]
    assert panel.at("Model", top) > 0.6 * top
    assert panel.at("OpenMP-Block-relaxed", top) < 0.5 * panel.at("Model", top)
    assert panel.best("CilkPlus-Bag-relaxed")[1] < \
        0.6 * panel.best("OpenMP-Block-relaxed")[1]
