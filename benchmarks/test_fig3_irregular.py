"""Figure 3 — irregular-computation microbenchmark speedups.

Paper findings asserted: OpenMP/TBB speedups decrease as the computation
grows (pipeline saturates, SMT helps less); Cilk's increase (overheads
amortise); at 10 iterations the three models converge (~49 at 121
threads in the paper)."""

from repro.experiments.fig3_irregular import run_fig3
from repro.experiments.report import format_panel


def test_fig3_irregular(run_once):
    panels = run_once(run_fig3,
                      describe=lambda r: "\n\n".join(format_panel(p)
                                                     for p in r.values()))
    omp = next(p for t, p in panels.items() if "OpenMP" in t)
    cilk = next(p for t, p in panels.items() if "Cilk" in t)
    tbb = next(p for t, p in panels.items() if "TBB" in t)
    top = omp.thread_counts[-1]

    # §V-C directions
    assert omp.at("1 iteration", top) > omp.at("10 iterations", top)
    assert tbb.at("1 iteration", top) > tbb.at("10 iterations", top)
    assert cilk.at("10 iterations", top) > cilk.at("1 iteration", top)

    # convergence at 10 iterations
    at10 = [p.at("10 iterations", top) for p in panels.values()]
    assert max(at10) < 1.45 * min(at10)

    # SMT still matters for the compute-heavy case (§V-C: "speedup is
    # almost double on 121 than it is on 31 threads" is the memory case;
    # at iter=10 the gain past 31 threads is positive but modest)
    assert omp.at("10 iterations", top) > omp.at("10 iterations", 31)
