"""Simulated Cilk Plus ``cilk_for`` (§II-B, §IV-A2).

``cilk_for`` unfolds the iteration range as a spawn tree executed under
randomised work stealing.  Two variants of thread-local scratch access
from the paper:

* **worker-ID** — every worker eagerly initialises a scratch array at
  region entry, indexed by ``__cilkrts_get_worker_number()`` (discouraged
  by Intel; may initialise more memory than necessary),
* **holder** — a view is allocated and initialised lazily the first time a
  worker touches it, i.e. *during* the computation, "potentially
  increasing load imbalance" (§IV-A2).
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.machine.costs import WorkCosts
from repro.runtime.base import LoopContext, TlsMode
from repro.runtime.stealing import run_work_stealing
from repro.sim.stats import LoopStats

__all__ = ["cilk_parallel_for"]


def cilk_parallel_for(
    config: MachineConfig,
    n_threads: int,
    work: WorkCosts,
    grain: int = 100,
    tls_mode: TlsMode = TlsMode.HOLDER,
    tls_entries: int = 0,
    fork: bool = True,
    seed: int = 0,
    faults=None,
    access=None,
) -> LoopStats:
    """Simulate a ``cilk_for`` over *work* with the given grain size."""
    if grain < 1:
        raise ValueError(f"grain must be >= 1, got {grain}")
    ctx = LoopContext(config, n_threads, work, faults=faults, access=access)
    run_work_stealing(
        ctx,
        split_threshold=grain,
        task_cycles=config.spawn_cycles,
        tls_entries=tls_entries,
        lazy_tls=tls_mode is TlsMode.HOLDER,
        seed=seed,
        prefix="cilk",
    )
    if tls_entries and tls_mode is TlsMode.WORKER_ID:
        def record_tls():
            ctx.stats.tls_inits = n_threads
        ctx.post_run(record_tls)
    return ctx.finish(fork)
