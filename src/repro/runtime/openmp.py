"""Simulated OpenMP ``parallel for`` with static / dynamic / guided
scheduling (§II-A).

* **static** — chunks are dealt round-robin at region entry; fetching the
  next chunk is pure bookkeeping (no shared state).
* **dynamic** — a shared chunk counter advanced with atomic fetch-and-add;
  contention on that one cache line grows with the thread count, which is
  the overhead the paper weighs against dynamic's better load balance.
* **guided** — the same shared counter, but each fetch takes
  ``max(chunk, remaining / (2t))`` iterations, geometrically shrinking.

Per-thread scratch state (``localFC``) is initialised at region entry by
each thread (the paper's worker-ID indexing, §IV-A1).

Counter totals (atomic ops, waits, scheduler cycles) are folded into the
:class:`~repro.sim.stats.LoopStats` through :meth:`LoopContext.post_run`
hooks, so they are already in place when the telemetry frame is cut.
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.machine.costs import WorkCosts
from repro.obs import metrics as _obs_metrics
from repro.runtime.base import LoopContext, Schedule
from repro.sim.resources import AtomicVar
from repro.sim.stats import LoopStats

__all__ = ["openmp_parallel_for"]


def openmp_parallel_for(
    config: MachineConfig,
    n_threads: int,
    work: WorkCosts,
    schedule: Schedule = Schedule.DYNAMIC,
    chunk: int = 100,
    tls_entries: int = 0,
    fork: bool = True,
    faults=None,
    access=None,
) -> LoopStats:
    """Simulate ``#pragma omp parallel for schedule(...)`` over *work*."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    ctx = LoopContext(config, n_threads, work, faults=faults, access=access)

    if schedule is Schedule.STATIC:
        _spawn_static(ctx, chunk, tls_entries)
    elif schedule is Schedule.DYNAMIC:
        _spawn_shared_counter(ctx, chunk, tls_entries, guided=False)
    elif schedule is Schedule.GUIDED:
        _spawn_shared_counter(ctx, chunk, tls_entries, guided=True)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown schedule {schedule!r}")

    def record_tls():
        ctx.stats.tls_inits = n_threads if tls_entries else 0

    ctx.post_run(record_tls)
    return ctx.finish(fork)


def _fold_counter(ctx: LoopContext, counter: AtomicVar) -> None:
    """Register the fold of the shared chunk counter's totals."""

    def fold():
        stats = ctx.stats
        stats.atomic_operations += counter.operations
        stats.atomic_wait_cycles += counter.wait_cycles
        stats.sched_cycles += counter.operations * counter.latency
        registry = _obs_metrics.active()
        if registry is not None:
            registry.counter("atomic.ops", var=counter.label).inc(
                counter.operations)
            registry.counter("atomic.wait_cycles", var=counter.label).inc(
                counter.wait_cycles)

    ctx.post_run(fold)


def _spawn_static(ctx: LoopContext, chunk: int, tls_entries: int) -> None:
    """Round-robin chunk deal: thread k runs chunks k, k+t, k+2t, ..."""
    n, t = len(ctx.work), ctx.n_threads
    starts = list(range(0, n, chunk))

    def body(tid: int):
        yield from ctx.init_tls(tid, tls_entries, lazy=False)
        for s in starts[tid::t]:
            # A killed thread dies here: its remaining pre-dealt chunks
            # are lost — static scheduling cannot redistribute them.
            ctx.fault_point(tid)
            yield ctx.config.sched_chunk_cycles
            ctx.stats.sched_cycles += ctx.config.sched_chunk_cycles
            yield from ctx.execute_chunk(tid, s, min(s + chunk, n))
        yield from ctx.join(tid)

    ctx.spawn_workers(body, "omp-static")


def _spawn_shared_counter(ctx: LoopContext, chunk: int, tls_entries: int,
                          guided: bool) -> AtomicVar:
    """Dynamic/guided scheduling: chunks fetched off one atomic counter.

    The engine delivers RMWs in simulated-time order, so advancing a plain
    Python cursor inside each granted fetch reproduces FIFO semantics.
    """
    counter = AtomicVar(ctx.config.atomic_cycles, label="omp-chunk-counter")
    cursor = [0]
    n, t = len(ctx.work), ctx.n_threads

    def body(tid: int):
        yield from ctx.init_tls(tid, tls_entries, lazy=False)
        while True:
            # A killed thread dies before fetching, so no granted chunk
            # is ever lost — survivors drain the shared counter.
            ctx.fault_point(tid)
            done = counter.rmw(ctx.engine.now, tid=tid)
            yield done - ctx.engine.now
            lo = cursor[0]
            if lo >= n:
                break
            size = max(chunk, (n - lo) // (2 * t)) if guided else chunk
            hi = min(lo + size, n)
            cursor[0] = hi
            yield from ctx.execute_chunk(tid, lo, hi)
        yield from ctx.join(tid)

    ctx.spawn_workers(body, "omp-guided" if guided else "omp-dynamic")
    _fold_counter(ctx, counter)
    return counter
