"""Simulated TBB ``parallel_for`` with the three native partitioners
(§II-C, §IV-A3).

* **simple** — recursively splits every range down to the minimum chunk
  size: the most tasks, the finest load balance (the paper's best TBB
  variant at 31+ threads).
* **auto** — splits until roughly ``4 × threads`` subranges exist, then
  only splits further when a range gets stolen: fewer tasks, coarser
  balance.
* **affinity** — auto-style granularity, but subranges are pre-dealt
  round-robin to the workers (modelling the iteration-to-thread replay
  mailboxes) and every executed leaf pays an extra mailbox lookup — the
  bookkeeping that made it "consistently slower than the auto partitioner"
  in the paper's Figure 1(c).

Thread-local scratch uses ``enumerable_thread_specific``: lazily created
per worker on first touch, like a Cilk holder.  TBB task objects are heap
entities, so a split costs slightly more than a Cilk spawn.
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.machine.costs import WorkCosts
from repro.runtime.base import LoopContext, Partitioner
from repro.runtime.stealing import run_work_stealing
from repro.sim.stats import LoopStats

__all__ = ["tbb_parallel_for"]

#: TBB task allocation/refcount overhead relative to a bare Cilk spawn.
TASK_OVERHEAD_FACTOR = 1.6
#: Affinity-partitioner mailbox lookup per executed leaf, in units of the
#: machine's per-chunk dispatch cost.
MAILBOX_FACTOR = 12.0


def tbb_parallel_for(
    config: MachineConfig,
    n_threads: int,
    work: WorkCosts,
    partitioner: Partitioner = Partitioner.SIMPLE,
    chunk: int = 100,
    tls_entries: int = 0,
    fork: bool = True,
    seed: int = 0,
    faults=None,
    access=None,
) -> LoopStats:
    """Simulate ``tbb::parallel_for(blocked_range(0, n, chunk), body, p)``."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    n = len(work)
    ctx = LoopContext(config, n_threads, work, faults=faults, access=access)
    task_cycles = config.spawn_cycles * TASK_OVERHEAD_FACTOR

    prefix = f"tbb-{partitioner.value}"
    if partitioner is Partitioner.SIMPLE:
        run_work_stealing(ctx, split_threshold=chunk, task_cycles=task_cycles,
                          tls_entries=tls_entries, lazy_tls=True, seed=seed,
                          prefix=prefix)
    elif partitioner is Partitioner.AUTO:
        threshold = max(chunk, -(-n // (4 * n_threads)) if n else chunk)
        run_work_stealing(ctx, split_threshold=threshold,
                          task_cycles=task_cycles,
                          tls_entries=tls_entries, lazy_tls=True, seed=seed,
                          prefix=prefix)
    elif partitioner is Partitioner.AFFINITY:
        threshold = max(chunk, -(-n // (4 * n_threads)) if n else chunk)
        ranges = [(lo, min(lo + threshold, n)) for lo in range(0, n, threshold)]
        run_work_stealing(ctx, split_threshold=threshold,
                          task_cycles=task_cycles,
                          per_chunk_cycles=MAILBOX_FACTOR * config.sched_chunk_cycles,
                          tls_entries=tls_entries, lazy_tls=True,
                          initial_ranges=ranges, deal_round_robin=True,
                          seed=seed, prefix=prefix)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown partitioner {partitioner!r}")

    return ctx.finish(fork)
