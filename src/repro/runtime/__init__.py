"""Simulated programming-model runtimes: OpenMP, Cilk Plus, TBB."""

from repro.runtime.base import (
    ProgrammingModel,
    Schedule,
    Partitioner,
    TlsMode,
    RuntimeSpec,
    LoopContext,
)
from repro.runtime.openmp import openmp_parallel_for
from repro.runtime.cilk import cilk_parallel_for
from repro.runtime.tbb import tbb_parallel_for

__all__ = [
    "ProgrammingModel",
    "Schedule",
    "Partitioner",
    "TlsMode",
    "RuntimeSpec",
    "LoopContext",
    "openmp_parallel_for",
    "cilk_parallel_for",
    "tbb_parallel_for",
]
