"""Shared machinery for the simulated programming-model runtimes.

Each runtime executes a ``parallel_for`` over ``len(work)`` items on a
simulated :class:`~repro.machine.core.Chip`: software threads are event
processes that fetch chunks according to the model's scheduling policy,
execute them on their SMT context (costs from
:class:`~repro.machine.costs.WorkCosts`), and join at a barrier.  The
returned :class:`~repro.sim.stats.LoopStats` carries the elapsed simulated
cycles *and* the chunk schedule — `(lo, hi, thread, start, end)` per chunk
— which the kernels replay to compute time-faithful semantics (speculative
colouring conflicts, relaxed-queue duplicates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable


from repro._util import env_float, env_int
from repro.machine.config import MachineConfig
from repro.machine.core import Chip
from repro.machine.costs import WorkCosts
from repro.obs import metrics as _obs_metrics
from repro.obs.metrics import MetricsFrame
from repro.obs.tracer import PID_ENGINE, PID_THREADS
from repro.sim.engine import Barrier, Engine
from repro.sim.stats import ChunkExec, LoopStats

#: Watchdog default: engine events per parallel region.  Far above any
#: legitimate run (events scale with chunk count), so it only trips on
#: runaway/livelocked simulations.  Override with REPRO_MAX_EVENTS
#: (0 disables); REPRO_MAX_SIM_CYCLES bounds simulated time (default off).
DEFAULT_MAX_EVENTS = 100_000_000


def _watchdog_budgets() -> tuple[int | None, float | None]:
    """(max_events, max_time) for a region engine, from the environment."""
    ev = env_int("REPRO_MAX_EVENTS", lo=0)
    max_events = DEFAULT_MAX_EVENTS if ev is None else (ev or None)
    max_time = env_float("REPRO_MAX_SIM_CYCLES", lo=0.0)
    return max_events, max_time or None

__all__ = ["ProgrammingModel", "Schedule", "Partitioner", "TlsMode",
           "RuntimeSpec", "LoopContext"]


class ProgrammingModel(enum.Enum):
    """The three models the paper compares (§II)."""

    OPENMP = "openmp"
    CILK = "cilkplus"
    TBB = "tbb"


class Schedule(enum.Enum):
    """OpenMP loop scheduling policies (§II-A)."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


class Partitioner(enum.Enum):
    """TBB range partitioners (§II-C)."""

    SIMPLE = "simple"
    AUTO = "auto"
    AFFINITY = "affinity"


class TlsMode(enum.Enum):
    """How per-thread scratch state (the ``localFC`` array) is obtained
    (§IV-A2): pre-allocated by worker ID, or lazily via a holder/view."""

    WORKER_ID = "worker_id"
    HOLDER = "holder"


@dataclass(frozen=True)
class RuntimeSpec:
    """A fully-specified runtime variant, e.g. "OpenMP dynamic, chunk 100".

    ``chunk`` is the OpenMP chunk size / Cilk grain / TBB minimum range
    size.  ``tls_entries`` (set per call) models the per-thread scratch
    array the kernel needs (colouring: Δ+1 forbidden-colour slots).
    """

    model: ProgrammingModel
    schedule: Schedule = Schedule.DYNAMIC
    partitioner: Partitioner = Partitioner.SIMPLE
    tls_mode: TlsMode = TlsMode.HOLDER
    chunk: int = 100

    @property
    def tls_access_cycles(self) -> float:
        """Issue cycles per *access* to thread-local scratch state.

        OpenMP code indexes a preallocated array through a raw pointer
        (§IV-A1, ~free); a Cilk holder resolves the view through the
        runtime's hash map on each access (§IV-A2); TBB's
        ``enumerable_thread_specific::local()`` is cheaper but not free
        (§IV-A3).  On the in-order KNF pipeline these extra instructions
        consume issue slots, which — as the paper's conclusion notes — both
        slows the sequential run and *dampens scalability* once SMT
        saturates the pipeline.  This constant is the main calibrated
        lever behind the OpenMP > TBB > Cilk ordering of Figure 1.
        """
        if self.model is ProgrammingModel.OPENMP:
            return 1.0
        if self.model is ProgrammingModel.TBB:
            return 30.0
        # Cilk: holder view lookup, or __cilkrts_get_worker_number indexing
        # ("the performance of both variants are very close", §V-B).  Most
        # of Cilk's measured per-item cost sits in the outlined loop body
        # (see ``body_overhead``), not the view lookup itself.
        return 4.0 if self.tls_mode is TlsMode.HOLDER else 3.5

    @property
    def body_overhead(self) -> tuple[float, float]:
        """(per-item, per-edge) issue-cycle overhead of the outlined loop
        body.

        OpenMP loop bodies compile to straight-line code; ``cilk_for`` and
        ``tbb::parallel_for`` invoke the body through an outlined function
        object / lambda whose captures defeat some inlining — a small
        per-iteration and per-neighbour-access tax that, like the TLS
        lookups, "increases in-core pressure" (paper §VI) and therefore
        caps scalability once SMT saturates the in-order pipeline.
        Calibrated jointly with the other constants (EXPERIMENTS.md).
        """
        if self.model is ProgrammingModel.OPENMP:
            return (0.0, 0.0)
        if self.model is ProgrammingModel.TBB:
            if self.partitioner is Partitioner.AFFINITY:
                # Mailbox replay bookkeeping per task plus affinity-miss
                # rescheduling ("consistently slower than the auto
                # partitioner", §V-B).
                return (40.0, 14.0)
            return (15.0, 5.0)
        # Calibrated against Fig. 1(b)/3(b): the paper's Cilk runs imply a
        # per-neighbour-access cost several times OpenMP's, consistent
        # with icc failing to optimise the gather loop inside the outlined
        # cilk_for body.  Because it is charged per edge (not per
        # repetition), it amortises as the computation grows — producing
        # Fig. 3(b)'s *rising* Cilk curve.
        return (30.0, 36.0)

    @property
    def label(self) -> str:
        """Figure-legend style name, e.g. ``OpenMP-dynamic``."""
        if self.model is ProgrammingModel.OPENMP:
            return f"OpenMP-{self.schedule.value}"
        if self.model is ProgrammingModel.TBB:
            return f"TBB-{self.partitioner.value}"
        suffix = "-holder" if self.tls_mode is TlsMode.HOLDER else ""
        return f"CilkPlus{suffix}"

    def parallel_for(self, config: MachineConfig, n_threads: int,
                     work: WorkCosts, *, tls_entries: int = 0,
                     fork: bool = True, seed: int = 0,
                     faults=None, access=None) -> LoopStats:
        """Run one simulated parallel loop; returns its :class:`LoopStats`.

        ``faults`` is an optional
        :class:`~repro.sim.faults.FaultInjector`; pass the same instance
        to every loop of a kernel so fault windows span the whole run.
        ``access`` is an optional :class:`~repro.kernels.base.AccessSet`
        declaring the loop's per-chunk memory footprint for the
        concurrency checker (:mod:`repro.check`); it is ignored when no
        checker is installed.
        """
        from repro.runtime.openmp import openmp_parallel_for
        from repro.runtime.cilk import cilk_parallel_for
        from repro.runtime.tbb import tbb_parallel_for

        if self.model is ProgrammingModel.OPENMP:
            return openmp_parallel_for(config, n_threads, work,
                                       schedule=self.schedule, chunk=self.chunk,
                                       tls_entries=tls_entries, fork=fork,
                                       faults=faults, access=access)
        if self.model is ProgrammingModel.CILK:
            return cilk_parallel_for(config, n_threads, work, grain=self.chunk,
                                     tls_mode=self.tls_mode,
                                     tls_entries=tls_entries, fork=fork,
                                     seed=seed, faults=faults, access=access)
        return tbb_parallel_for(config, n_threads, work,
                                partitioner=self.partitioner, chunk=self.chunk,
                                tls_entries=tls_entries, fork=fork, seed=seed,
                                faults=faults, access=access)


@dataclass
class LoopContext:
    """Per-loop simulation state shared by the runtime implementations.

    ``faults`` (a :class:`~repro.sim.faults.FaultInjector` or None) plugs
    the fault layer into the region: kill events are armed on the region
    engine, SMT hangs delay chunk starts, and the chip applies
    throttle/stall/jitter inside :meth:`execute_chunk`.  Runtime worker
    bodies must call :meth:`fault_point` at every chunk-fetch boundary and
    join via :meth:`join` so a killed thread stops at a scheduling point
    and never strands the barrier.
    """

    config: MachineConfig
    n_threads: int
    work: WorkCosts
    stats: LoopStats = field(default_factory=LoopStats)
    faults: object = None
    access: object = None  # AccessSet for the checker, or None

    def __post_init__(self):
        max_events, max_time = _watchdog_budgets()
        self.engine = Engine(max_events=max_events, max_time=max_time)
        self.chip = Chip(self.config, self.n_threads, faults=self.faults)
        self.barrier = Barrier(self.engine, self.n_threads,
                               cost_fn=self.config.barrier_cost)
        self.procs: dict[int, object] = {}
        self.label = ""
        # Telemetry (repro.obs) and checking (repro.check): handles
        # captured once per loop and null-checked per use, so
        # uninstrumented runs pay nothing more.
        self.trace = self.engine.trace
        self.check = self.engine.check
        self._post_run: list[Callable] = []

    def post_run(self, hook: Callable) -> None:
        """Register *hook* to run after the event loop, before the loop's
        stats are considered final (runtimes fold counter totals here so
        the telemetry frame sees the complete accounting)."""
        self._post_run.append(hook)

    def spawn_workers(self, body: Callable, prefix: str) -> None:
        """Spawn ``body(tid)`` for every thread, then arm fault injection.

        Workers get stable names (``"<prefix>-w<tid>"``) so deadlock and
        timeout diagnostics identify the stuck thread.  Kill events are
        armed after all workers exist so every victim is addressable.
        """
        self.label = prefix
        if self.trace is not None:
            self.trace.begin(f"loop:{prefix}", PID_ENGINE, 0, 0.0,
                             threads=self.n_threads, items=len(self.work))
        if self.check is not None:
            self.check.begin_loop(prefix, self.n_threads, self.access)
        for tid in range(self.n_threads):
            self.procs[tid] = self.engine.spawn(body(tid),
                                                name=f"{prefix}-w{tid}",
                                                tid=tid)
        if self.faults is not None:
            self.faults.begin_loop(self.engine, self.barrier, self.procs)

    def fault_point(self, tid: int) -> None:
        """Scheduling point: a killed thread dies here (raises ThreadKilled)."""
        if self.faults is not None:
            self.faults.check_kill(tid, self.engine.now)

    def join(self, tid: int):
        """Generator fragment: arrive at the region barrier.

        The kill check precedes the arrival, so a dead thread never
        occupies a barrier slot its :meth:`Barrier.drop_party` released.
        """
        self.fault_point(tid)
        yield self.barrier

    def execute_chunk(self, tid: int, lo: int, hi: int):
        """Generator fragment: run items ``[lo, hi)`` on thread *tid*.

        Yields the chunk duration; records the :class:`ChunkExec`.  With
        fault injection, a hung SMT context first waits out its freeze
        window.
        """
        if self.faults is not None:
            hang = self.faults.hang_delay(tid, self.engine.now)
            if hang > 0:
                self.stats.hang_cycles += hang
                self.stats.hangs.append((tid, self.engine.now,
                                         self.engine.now + hang))
                if self.trace is not None:
                    self.trace.span("hang", PID_THREADS, tid, self.engine.now,
                                    self.engine.now + hang)
                yield hang
        compute, stall, volume = self.work.range_cost(lo, hi)
        core = self.chip.core_of(tid)
        core.begin()
        start = self.engine.now
        duration = self.chip.execute(start, tid, compute, stall, volume)
        yield duration
        core.finish()
        self.stats.busy_cycles += duration
        self.stats.chunks.append(ChunkExec(lo, hi, tid, start, self.engine.now))
        if self.trace is not None:
            self.trace.span("chunk", PID_THREADS, tid, start, self.engine.now,
                            lo=lo, hi=hi)
        if self.check is not None:
            self.check.on_chunk(tid, lo, hi, start, self.engine.now)

    def init_tls(self, tid: int, tls_entries: int, lazy: bool):
        """Generator fragment: pay a thread's scratch-state first touch.

        Accounts the time in ``LoopStats.tls_cycles`` (a component of the
        telemetry frame's cycle breakdown) and traces it as a span; the
        ``tls_inits`` *count* stays runtime-specific (eager runtimes set
        it per region, lazy runtimes per first touch).
        """
        cycles = self.tls_first_touch_cycles(tls_entries, lazy)
        if cycles:
            self.stats.tls_cycles += cycles
            if self.trace is not None:
                self.trace.span("tls-init", PID_THREADS, tid, self.engine.now,
                                self.engine.now + cycles, lazy=lazy)
            if self.check is not None:
                self.check.on_tls(tid)
            yield cycles

    def tls_first_touch_cycles(self, tls_entries: int, lazy: bool) -> float:
        """Cycles to materialise a thread's scratch state.

        Lazy (holder/ETS) initialisation also pays a heap allocation —
        the cost the paper attributes to Cilk views and TBB
        ``enumerable_thread_specific``.
        """
        cycles = tls_entries * self.config.tls_init_cycles_per_entry
        if lazy and tls_entries:
            cycles += self.config.alloc_cycles
        return cycles

    def finish(self, fork: bool) -> LoopStats:
        """Run the event loop to completion and finalise the stats.

        After the engine drains, registered :meth:`post_run` hooks fold
        runtime-held counters into the stats; only then is the telemetry
        frame cut, so exported totals always match the returned
        :class:`~repro.sim.stats.LoopStats`.
        """
        end = self.engine.run()
        self.stats.span = end + (self.config.fork_cycles if fork else 0.0)
        if self.faults is not None:
            self.stats.killed_threads = self.faults.loop_kills
            self.faults.end_loop(self.stats.span)
        for hook in self._post_run:
            hook()
        if self.check is not None:
            self.check.end_loop(self.stats.span)
        if self.trace is not None:
            self.trace.end(f"loop:{self.label}", PID_ENGINE, 0, end)
            self.trace.advance(self.stats.span)
        self._emit_frame()
        return self.stats

    def _emit_frame(self) -> None:
        """Snapshot this loop into the active metrics registry (if any)."""
        registry = _obs_metrics.active()
        if registry is None:
            return
        stats, ch = self.stats, self.chip.channel
        bank_budget = stats.span * ch.n_banks
        channel = {
            "transfers": ch.transfers,
            "lines": ch.lines,
            "wait_cycles": ch.wait_cycles,
            "busy_cycles": ch.busy_cycles,
            "n_banks": ch.n_banks,
            "saturation": ch.busy_cycles / bank_budget if bank_budget > 0
            else 0.0,
        }
        registry.counter("channel.transfers").inc(ch.transfers)
        registry.counter("channel.lines").inc(ch.lines)
        registry.counter("channel.busy_cycles").inc(ch.busy_cycles)
        registry.counter("channel.wait_cycles").inc(ch.wait_cycles)
        frame = MetricsFrame.from_stats(
            stats, n_threads=self.n_threads, label=self.label,
            channel=channel, counters=registry.loop_delta())
        frame.index = len(registry.frames)
        frame.cell = registry.current_cell()
        registry.add_frame(frame)
