"""Shared machinery for the simulated programming-model runtimes.

Each runtime executes a ``parallel_for`` over ``len(work)`` items on a
simulated :class:`~repro.machine.core.Chip`: software threads are event
processes that fetch chunks according to the model's scheduling policy,
execute them on their SMT context (costs from
:class:`~repro.machine.costs.WorkCosts`), and join at a barrier.  The
returned :class:`~repro.sim.stats.LoopStats` carries the elapsed simulated
cycles *and* the chunk schedule — `(lo, hi, thread, start, end)` per chunk
— which the kernels replay to compute time-faithful semantics (speculative
colouring conflicts, relaxed-queue duplicates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.machine.config import MachineConfig
from repro.machine.core import Chip
from repro.machine.costs import WorkCosts
from repro.sim.engine import Barrier, Engine
from repro.sim.stats import ChunkExec, LoopStats

__all__ = ["ProgrammingModel", "Schedule", "Partitioner", "TlsMode",
           "RuntimeSpec", "LoopContext"]


class ProgrammingModel(enum.Enum):
    """The three models the paper compares (§II)."""

    OPENMP = "openmp"
    CILK = "cilkplus"
    TBB = "tbb"


class Schedule(enum.Enum):
    """OpenMP loop scheduling policies (§II-A)."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


class Partitioner(enum.Enum):
    """TBB range partitioners (§II-C)."""

    SIMPLE = "simple"
    AUTO = "auto"
    AFFINITY = "affinity"


class TlsMode(enum.Enum):
    """How per-thread scratch state (the ``localFC`` array) is obtained
    (§IV-A2): pre-allocated by worker ID, or lazily via a holder/view."""

    WORKER_ID = "worker_id"
    HOLDER = "holder"


@dataclass(frozen=True)
class RuntimeSpec:
    """A fully-specified runtime variant, e.g. "OpenMP dynamic, chunk 100".

    ``chunk`` is the OpenMP chunk size / Cilk grain / TBB minimum range
    size.  ``tls_entries`` (set per call) models the per-thread scratch
    array the kernel needs (colouring: Δ+1 forbidden-colour slots).
    """

    model: ProgrammingModel
    schedule: Schedule = Schedule.DYNAMIC
    partitioner: Partitioner = Partitioner.SIMPLE
    tls_mode: TlsMode = TlsMode.HOLDER
    chunk: int = 100

    @property
    def tls_access_cycles(self) -> float:
        """Issue cycles per *access* to thread-local scratch state.

        OpenMP code indexes a preallocated array through a raw pointer
        (§IV-A1, ~free); a Cilk holder resolves the view through the
        runtime's hash map on each access (§IV-A2); TBB's
        ``enumerable_thread_specific::local()`` is cheaper but not free
        (§IV-A3).  On the in-order KNF pipeline these extra instructions
        consume issue slots, which — as the paper's conclusion notes — both
        slows the sequential run and *dampens scalability* once SMT
        saturates the pipeline.  This constant is the main calibrated
        lever behind the OpenMP > TBB > Cilk ordering of Figure 1.
        """
        if self.model is ProgrammingModel.OPENMP:
            return 1.0
        if self.model is ProgrammingModel.TBB:
            return 30.0
        # Cilk: holder view lookup, or __cilkrts_get_worker_number indexing
        # ("the performance of both variants are very close", §V-B).  Most
        # of Cilk's measured per-item cost sits in the outlined loop body
        # (see ``body_overhead``), not the view lookup itself.
        return 4.0 if self.tls_mode is TlsMode.HOLDER else 3.5

    @property
    def body_overhead(self) -> tuple[float, float]:
        """(per-item, per-edge) issue-cycle overhead of the outlined loop
        body.

        OpenMP loop bodies compile to straight-line code; ``cilk_for`` and
        ``tbb::parallel_for`` invoke the body through an outlined function
        object / lambda whose captures defeat some inlining — a small
        per-iteration and per-neighbour-access tax that, like the TLS
        lookups, "increases in-core pressure" (paper §VI) and therefore
        caps scalability once SMT saturates the in-order pipeline.
        Calibrated jointly with the other constants (EXPERIMENTS.md).
        """
        if self.model is ProgrammingModel.OPENMP:
            return (0.0, 0.0)
        if self.model is ProgrammingModel.TBB:
            if self.partitioner is Partitioner.AFFINITY:
                # Mailbox replay bookkeeping per task plus affinity-miss
                # rescheduling ("consistently slower than the auto
                # partitioner", §V-B).
                return (40.0, 14.0)
            return (15.0, 5.0)
        # Calibrated against Fig. 1(b)/3(b): the paper's Cilk runs imply a
        # per-neighbour-access cost several times OpenMP's, consistent
        # with icc failing to optimise the gather loop inside the outlined
        # cilk_for body.  Because it is charged per edge (not per
        # repetition), it amortises as the computation grows — producing
        # Fig. 3(b)'s *rising* Cilk curve.
        return (30.0, 36.0)

    @property
    def label(self) -> str:
        """Figure-legend style name, e.g. ``OpenMP-dynamic``."""
        if self.model is ProgrammingModel.OPENMP:
            return f"OpenMP-{self.schedule.value}"
        if self.model is ProgrammingModel.TBB:
            return f"TBB-{self.partitioner.value}"
        suffix = "-holder" if self.tls_mode is TlsMode.HOLDER else ""
        return f"CilkPlus{suffix}"

    def parallel_for(self, config: MachineConfig, n_threads: int,
                     work: WorkCosts, *, tls_entries: int = 0,
                     fork: bool = True, seed: int = 0) -> LoopStats:
        """Run one simulated parallel loop; returns its :class:`LoopStats`."""
        from repro.runtime.openmp import openmp_parallel_for
        from repro.runtime.cilk import cilk_parallel_for
        from repro.runtime.tbb import tbb_parallel_for

        if self.model is ProgrammingModel.OPENMP:
            return openmp_parallel_for(config, n_threads, work,
                                       schedule=self.schedule, chunk=self.chunk,
                                       tls_entries=tls_entries, fork=fork)
        if self.model is ProgrammingModel.CILK:
            return cilk_parallel_for(config, n_threads, work, grain=self.chunk,
                                     tls_mode=self.tls_mode,
                                     tls_entries=tls_entries, fork=fork,
                                     seed=seed)
        return tbb_parallel_for(config, n_threads, work,
                                partitioner=self.partitioner, chunk=self.chunk,
                                tls_entries=tls_entries, fork=fork, seed=seed)


@dataclass
class LoopContext:
    """Per-loop simulation state shared by the runtime implementations."""

    config: MachineConfig
    n_threads: int
    work: WorkCosts
    stats: LoopStats = field(default_factory=LoopStats)

    def __post_init__(self):
        self.engine = Engine()
        self.chip = Chip(self.config, self.n_threads)
        self.barrier = Barrier(self.engine, self.n_threads,
                               cost_fn=self.config.barrier_cost)

    def execute_chunk(self, tid: int, lo: int, hi: int):
        """Generator fragment: run items ``[lo, hi)`` on thread *tid*.

        Yields the chunk duration; records the :class:`ChunkExec`.
        """
        compute, stall, volume = self.work.range_cost(lo, hi)
        core = self.chip.core_of(tid)
        core.begin()
        start = self.engine.now
        duration = self.chip.execute(start, tid, compute, stall, volume)
        yield duration
        core.finish()
        self.stats.busy_cycles += duration
        self.stats.chunks.append(ChunkExec(lo, hi, tid, start, self.engine.now))

    def tls_first_touch_cycles(self, tls_entries: int, lazy: bool) -> float:
        """Cycles to materialise a thread's scratch state.

        Lazy (holder/ETS) initialisation also pays a heap allocation —
        the cost the paper attributes to Cilk views and TBB
        ``enumerable_thread_specific``.
        """
        cycles = tls_entries * self.config.tls_init_cycles_per_entry
        if lazy and tls_entries:
            cycles += self.config.alloc_cycles
        return cycles

    def finish(self, fork: bool) -> LoopStats:
        """Run the event loop to completion and finalise the stats."""
        end = self.engine.run()
        self.stats.span = end + (self.config.fork_cycles if fork else 0.0)
        return self.stats
