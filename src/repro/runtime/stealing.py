"""Generic work-stealing loop execution (shared by Cilk Plus and TBB).

Workers keep a deque of index ranges.  A worker repeatedly pops the
*bottom* (most recently pushed) range; ranges larger than the split
threshold are halved — the right half is pushed back, costing one task
spawn — until an executable leaf remains (lazy binary splitting, which is
how both ``cilk_for`` (§II-B) and TBB's partitioners (§II-C) unfold a
loop).  An idle worker steals the *top* (oldest, largest) range of a
random victim, paying a ring round-trip.  Work therefore spreads through
a binary steal chain, reaching full parallelism after ~log2(t) steal
latencies — the distribution behaviour that separates these runtimes from
OpenMP's flat chunk counter in the paper's Figure 1.
"""

from __future__ import annotations

from collections import deque as _deque

import numpy as np

from repro.obs import metrics as _obs_metrics
from repro.obs.tracer import PID_THREADS
from repro.runtime.base import LoopContext
from repro.sim.engine import Condition

__all__ = ["run_work_stealing"]


def run_work_stealing(
    ctx: LoopContext,
    *,
    split_threshold: int,
    task_cycles: float,
    per_chunk_cycles: float = 0.0,
    tls_entries: int = 0,
    lazy_tls: bool = True,
    initial_ranges: list[tuple[int, int]] | None = None,
    deal_round_robin: bool = False,
    seed: int = 0,
    prefix: str = "steal",
) -> None:
    """Spawn the worker processes for one stolen-loop execution.

    Parameters
    ----------
    split_threshold:
        Ranges strictly larger than this are split before execution.
    task_cycles:
        Cost of one split (task allocation + deque push).
    per_chunk_cycles:
        Extra dispatch cost per executed leaf (e.g. TBB affinity mailbox
        checks).
    tls_entries / lazy_tls:
        Thread-local scratch size; lazy (holder/ETS) init happens right
        before a worker's first leaf and includes a heap allocation,
        eager (worker-ID) init happens at region entry on every worker.
    initial_ranges / deal_round_robin:
        Starting distribution: by default the whole range sits on worker 0
        (stealing spreads it); the affinity partitioner pre-deals ranges
        round-robin.
    prefix:
        Worker-name / loop-label prefix, so traces and diagnostics name
        the runtime that owns the loop (``cilk``, ``tbb-auto``, ...).
    """
    if split_threshold < 1:
        raise ValueError(f"split_threshold must be >= 1, got {split_threshold}")
    n, t = len(ctx.work), ctx.n_threads
    rng = np.random.default_rng(seed)

    deques: list[_deque] = [_deque() for _ in range(t)]
    if initial_ranges is None:
        initial_ranges = [(0, n)] if n else []
    if deal_round_robin:
        for i, rng_item in enumerate(initial_ranges):
            deques[i % t].append(rng_item)
    else:
        for rng_item in initial_ranges:
            deques[0].append(rng_item)

    remaining = [sum(hi - lo for lo, hi in initial_ranges)]
    # Idle workers with nothing to steal sleep on a generation condition
    # instead of polling: it fires whenever a deque turns non-empty (or all
    # work finishes), which keeps the event count proportional to the task
    # count rather than to idle time.
    signal = [Condition(ctx.engine)]

    def notify(wid: int):
        fired, signal[0] = signal[0], Condition(ctx.engine)
        fired.fire(tid=wid)

    # Telemetry (repro.obs): captured once per loop, null-checked per use.
    registry = _obs_metrics.active()

    def body(wid: int):
        my = deques[wid]
        tls_done = False
        if tls_entries and not lazy_tls:
            yield from ctx.init_tls(wid, tls_entries, lazy=False)
            tls_done = True
        while True:
            # A killed worker dies between chunks, before popping: its
            # deque stays intact as plain data, so survivors steal the
            # stranded ranges and no work is lost.
            ctx.fault_point(wid)
            if my:
                lo, hi = my.pop()
                if ctx.check is not None:
                    ctx.check.on_pop(wid)
                while hi - lo > split_threshold:
                    mid = (lo + hi) // 2
                    was_empty = not my
                    my.append((mid, hi))
                    if ctx.check is not None:
                        ctx.check.on_push(wid)
                    ctx.stats.tasks_spawned += 1
                    ctx.stats.sched_cycles += task_cycles
                    if was_empty:
                        notify(wid)
                    yield task_cycles
                    hi = mid
                if tls_entries and lazy_tls and not tls_done:
                    yield from ctx.init_tls(wid, tls_entries, lazy=True)
                    ctx.stats.tls_inits += 1
                    tls_done = True
                if per_chunk_cycles:
                    ctx.stats.sched_cycles += per_chunk_cycles
                    yield per_chunk_cycles
                yield from ctx.execute_chunk(wid, lo, hi)
                remaining[0] -= hi - lo
                if remaining[0] <= 0:
                    notify(wid)
                continue
            if remaining[0] <= 0:
                break
            gen = signal[0]  # capture before scanning (lost-wakeup safety)
            victims = [w for w in range(t) if w != wid and deques[w]]
            if victims:
                victim = victims[int(rng.integers(len(victims)))]
                yield ctx.config.steal_cycles
                ctx.stats.sched_cycles += ctx.config.steal_cycles
                if deques[victim]:  # may have drained during the steal RTT
                    was_empty = not my
                    my.append(deques[victim].popleft())
                    ctx.stats.steals += 1
                    if ctx.check is not None:
                        ctx.check.on_steal(wid, victim)
                    if registry is not None:
                        registry.counter("steals", victim=str(victim)).inc(1)
                    if ctx.trace is not None:
                        ctx.trace.instant("steal", PID_THREADS, wid,
                                          ctx.engine.now, victim=victim)
                    if was_empty and len(my) > 1:
                        notify(wid)
                else:
                    ctx.stats.failed_steals += 1
                    if registry is not None:
                        registry.counter("steals.failed").inc(1)
            else:
                ctx.stats.failed_steals += 1
                if registry is not None:
                    registry.counter("steals.failed").inc(1)
                yield gen
        yield from ctx.join(wid)

    ctx.spawn_workers(body, prefix)
    if ctx.check is not None:
        # Mirror the initial deal into the checker's shadow deques (the
        # deques are only consumed once the engine runs, so order holds).
        for w, dq in enumerate(deques):
            for _ in dq:
                ctx.check.on_deal(w)
