"""Minimal asyncio HTTP/1.1 layer over :class:`CampaignService`.

No framework: requests are parsed off an ``asyncio.start_server``
stream, routed by ``(method, path)``, and answered with JSON.  Every
endpoint is instrumented (null-checked, :mod:`repro.obs` style): a
``serve.requests{method,route,status}`` counter when a metrics registry
is active, and a wall-clock span per request when a tracer is.

Endpoints::

    GET  /healthz             server/queue/store/cache health document
    POST /jobs                submit {"spec": {...}, "priority"?, "client"?}
                              (a bare CampaignSpec object also works)
    GET  /jobs                all jobs' status summaries
    GET  /jobs/<id>           one job's status + progress + ETA
    GET  /jobs/<id>/results   the results document (409 until done) —
                              byte-identical to `repro campaign run
                              --output` of the same spec
    GET  /jobs/<id>/stream    NDJSON event stream: one line per settled
                              cell, a final {"event": "done"} line
    POST /drain               stop accepting jobs; server exits once the
                              queue and in-flight batches are empty

Submissions name their client via the ``X-Repro-Client`` header or a
``"client"`` body field (quotas are per client); error responses are
JSON ``{"error": ...}`` with conventional status codes (400 invalid
spec, 404 unknown job/route, 409 results-not-ready, 429 over quota,
503 draining).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Callable

from repro.serve.queue import QuotaExceeded
from repro.serve.service import (CampaignService, ServiceDraining,
                                 UnknownJob)

__all__ = ["serve", "BackgroundServer"]

_MAX_BODY = 8 * 1024 * 1024


class _BadRequest(Exception):
    """Malformed HTTP or JSON (mapped to 400)."""


async def _read_request(
        reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request: ``(method, path, headers, body)``."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise _BadRequest("malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length") from None
    if length < 0 or length > _MAX_BODY:
        raise _BadRequest(f"body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _response(status: int, payload: bytes,
              content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + payload


def _json_body(status: int, document: object) -> tuple[int, bytes]:
    return status, (json.dumps(document, sort_keys=True) + "\n") \
        .encode("utf-8")


def _error(status: int, message: str) -> tuple[int, bytes]:
    return _json_body(status, {"error": message})


class _Server:
    """Routes requests to one :class:`CampaignService`."""

    def __init__(self, service: CampaignService):
        self.service = service
        self.requests = 0

    # ----- instrumentation (null-checked, repro.obs idiom) -----------------

    def _count(self, method: str, route: str, status: int) -> None:
        from repro.obs import metrics as _obs_metrics
        registry = _obs_metrics.active()
        if registry is not None:
            registry.incr("serve.requests", method=method, route=route,
                          status=str(status))

    def _span(self, route: str, start: float, end: float) -> None:
        from repro.obs import tracer as _obs_tracer
        trace = _obs_tracer.active()
        if trace is not None:
            trace.span(f"serve:{route}", 0, "serve", start, end)

    # ----- routing ---------------------------------------------------------

    def route(self, method: str, path: str, headers: dict,
              body: bytes) -> tuple[int, bytes, str]:
        """Dispatch one non-streaming request; returns
        ``(status, payload, route-label)``."""
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return (*_json_body(200, self.service.health()), "healthz")
        if parts[:1] == ["jobs"]:
            if len(parts) == 1:
                if method == "POST":
                    return (*self._submit(headers, body), "submit")
                if method == "GET":
                    return (*self._list_jobs(), "jobs")
                return (*_error(405, f"{method} not allowed"), "jobs")
            try:
                job = self.service.job(parts[1])
            except UnknownJob:
                return (*_error(404, f"unknown job {parts[1]!r}"), "job")
            if len(parts) == 2 and method == "GET":
                return (*_json_body(200, job.status_dict(
                    time.time(), self.service.rate)), "job")
            if parts[2:] == ["results"] and method == "GET":
                if not job.done.is_set():
                    return (*_error(
                        409, f"job {job.job_id} has "
                        f"{len(job.pending)} pending cell(s)"), "results")
                return 200, job.results_bytes(), "results"
            return (*_error(404, f"no route {path!r}"), "job")
        if path == "/drain" and method == "POST":
            return (*_json_body(202, self.service.drain()), "drain")
        return (*_error(404, f"no route {path!r}"), "none")

    def _submit(self, headers: dict, body: bytes) -> tuple[int, bytes]:
        try:
            document = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError) as exc:
            return _error(400, f"request body is not valid JSON: {exc}")
        if not isinstance(document, dict):
            return _error(400, "request body must be a JSON object")
        # Either an envelope {"spec": ..., "client": ..., "priority": ...}
        # or a bare CampaignSpec document.
        spec = document.get("spec", document)
        client = document.get("client") if "spec" in document else None
        client = client or headers.get("x-repro-client") or "anonymous"
        priority = document.get("priority", 0) if "spec" in document else 0
        if not isinstance(priority, int):
            return _error(400, f"priority must be an integer, "
                               f"got {priority!r}")
        try:
            job = self.service.submit(spec, client=str(client),
                                      priority=priority)
        except QuotaExceeded as exc:
            return _error(429, str(exc))
        except ServiceDraining as exc:
            return _error(503, str(exc))
        except ValueError as exc:
            return _error(400, str(exc))
        return _json_body(202, job.status_dict(time.time(),
                                               self.service.rate))

    def _list_jobs(self) -> tuple[int, bytes]:
        now = time.time()
        rate = self.service.rate
        return _json_body(200, {
            "jobs": [job.status_dict(now, rate)
                     for job in self.service.jobs_list()]})

    # ----- connection handler ----------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        start = time.time()
        method, route = "?", "none"
        status = 500
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            parts = [p for p in path.split("/") if p]
            if method == "GET" and len(parts) == 3 \
                    and parts[0] == "jobs" and parts[2] == "stream":
                route = "stream"
                status = await self._stream(writer, parts[1])
                return
            status, payload, route = self.route(method, path, headers, body)
            writer.write(_response(status, payload))
            await writer.drain()
        except _BadRequest as exc:
            status = 400
            writer.write(_response(400, _error(400, str(exc))[1]))
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except Exception as exc:  # noqa: BLE001 — a handler bug must not
            # take the server down with it; the client gets a 500.
            status = 500
            try:
                writer.write(_response(
                    500, _error(500, f"{type(exc).__name__}: {exc}")[1]))
            except ConnectionError:
                pass
        finally:
            self.requests += 1
            self._count(method, route, status)
            self._span(route, start, time.time())
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _stream(self, writer: asyncio.StreamWriter,
                      job_id: str) -> int:
        """NDJSON per-cell progress stream for one job."""
        try:
            # repro: ignore[async-blocking] service.job is an in-memory
            # dict lookup; the Journal.job edge is unique-name fallback
            # imprecision in the call graph (documented in DESIGN.md).
            job = self.service.job(job_id)
        except UnknownJob:
            writer.write(_response(
                404, _error(404, f"unknown job {job_id!r}")[1]))
            await writer.drain()
            return 404
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n")

        def line(document: object) -> bytes:
            return (json.dumps(document, sort_keys=True) + "\n") \
                .encode("utf-8")

        queue = job.watch()
        try:
            writer.write(line(job.status_dict(time.time(),
                                              self.service.rate)))
            await writer.drain()
            while True:
                event = await queue.get()
                if event is None:
                    writer.write(line({"event": "done", "job": job.job_id,
                                       "failed": job.failed,
                                       "total": job.total}))
                    await writer.drain()
                    return 200
                writer.write(line(event))
                await writer.drain()
        except ConnectionError:
            return 200
        finally:
            job.unwatch(queue)


async def serve(service: CampaignService, host: str, port: int, *,
                ready: Callable[[str, int], None] | None = None) -> None:
    """Run the HTTP server until the service drains (or cancellation).

    *ready* (``callable(host, port)``) fires once the socket is bound —
    with ``port=0`` it receives the ephemeral port the OS picked.
    """
    handler = _Server(service)
    await service.start()
    try:
        server = await asyncio.start_server(handler.handle, host, port)
        bound = server.sockets[0].getsockname()
        if ready is not None:
            ready(bound[0], bound[1])
        async with server:
            await service.drained.wait()
    finally:
        await service.stop()


class BackgroundServer:
    """A live server on an ephemeral port, hosted in a daemon thread.

    The harness tests and benchmarks use to exercise the real socket
    path::

        with BackgroundServer(lambda: CampaignService(store)) as url:
            client.submit_job(url, spec_dict)

    The context manager waits for the socket to bind before yielding the
    base URL, and drains the service + joins the thread on exit.
    """

    def __init__(self, service_factory: Callable[[], CampaignService],
                 host: str = "127.0.0.1"):
        self._factory = service_factory
        self.host = host
        self.port: int | None = None
        self.service: CampaignService | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready: threading.Event | None = None
        self._error: BaseException | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> str:
        ready_evt = threading.Event()
        self._ready = ready_evt

        def main() -> None:
            try:
                asyncio.run(self._run())
            except BaseException as exc:  # noqa: BLE001 — surfaced on exit
                self._error = exc
                ready_evt.set()

        self._thread = threading.Thread(target=main, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not ready_evt.wait(timeout=30) or self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error or 'timeout'}")
        return self.url

    async def _run(self) -> None:
        self._loop = asyncio.get_running_loop()
        service = self._factory()
        self.service = service
        ready_evt = self._ready
        assert ready_evt is not None     # set in __enter__

        def ready(host: str, port: int) -> None:
            self.port = port
            ready_evt.set()

        await serve(service, self.host, 0, ready=ready)

    def __exit__(self, *exc: object) -> None:
        loop, service = self._loop, self.service
        if loop is not None and service is not None:
            try:
                loop.call_soon_threadsafe(service.drain)
            except RuntimeError:
                pass    # loop already closed: the server drained itself
        if self._thread is not None:
            self._thread.join(timeout=30)
        if self._error is not None:
            raise RuntimeError(f"server thread died: {self._error}")
