"""``repro.serve`` — a long-running asyncio campaign service.

The campaign layer (:mod:`repro.campaign`) runs sweeps as batch CLI
processes; this package turns it into a *service*: a stdlib-``asyncio``
HTTP/JSON server that accepts :class:`~repro.campaign.spec.CampaignSpec`
submissions as jobs, executes their cells through the supervised process
pool, and serves results whose bytes are identical to what ``repro
campaign run --output`` would have written.

The moving parts, one module each:

* :mod:`repro.serve.config` — every ``REPRO_SERVE_*`` knob, read through
  the validated :mod:`repro._util` env parsers.
* :mod:`repro.serve.shards` — the content-addressed
  :class:`~repro.campaign.store.ResultStore` sharded by cell-key prefix,
  fronted by a bounded read-through LRU cache with eviction stats.
* :mod:`repro.serve.queue` — the priority work queue: deterministic
  ``(priority, submission-seq)`` ordering, per-client quota accounting.
* :mod:`repro.serve.service` — :class:`~repro.serve.service.CampaignService`,
  the framework-free core: job table, cell dedup (overlapping
  submissions attach to in-flight computations), dispatch to the
  supervised executor via ``run_in_executor``, and job-level journaling
  through :mod:`repro.campaign.journal` so a killed server resumes its
  queue on restart.
* :mod:`repro.serve.http` — the minimal HTTP/1.1 request/response layer
  (no framework) routing to the service, plus a background-thread
  harness used by tests and benchmarks.
* :mod:`repro.serve.client` — a small urllib client for the CLI and CI.
* :mod:`repro.serve.cli` — ``repro serve start|submit|status|drain``.
"""

from repro.serve.config import ServeConfig
from repro.serve.queue import PriorityWorkQueue, QuotaExceeded
from repro.serve.service import CampaignService, Job
from repro.serve.shards import ShardedResultStore

__all__ = ["ServeConfig", "PriorityWorkQueue", "QuotaExceeded",
           "CampaignService", "Job", "ShardedResultStore"]
