"""The result store, sharded by cell-key prefix, behind an LRU cache.

A single :class:`~repro.campaign.store.ResultStore` keeps every object
under one ``objects/`` tree; a long-running server hammering it from
many concurrent submissions wants the keyspace spread over independent
shard roots (separate directory trees, separate quarantines — one
corrupt shard never blocks the others) and a bounded in-memory
read-through cache in front, so warm resubmissions are served without
touching the filesystem at all.

Layout::

    <root>/shards/00/objects/...   # shard 0: its own ResultStore tree
    <root>/shards/01/objects/...
    ...
    <root>/journals/serve/         # the server's job journal (not a shard)

Shard selection hashes the store *key* (already a SHA-256 over spec +
code fingerprint): ``int(key[:4], 16) % n_shards``.  All shards share
one code fingerprint, so a key computed by any shard is valid for the
whole store, and the value served for a spec is byte-for-byte the value
a flat store would have served — sharding is a layout property only.

The LRU keeps ``key -> value`` pairs (results are single floats, so
memory per entry is tiny) with hit/miss/eviction stats; capacity 0
disables it.  When a :mod:`repro.obs.metrics` registry is active, cache
traffic is also counted as ``serve.cache{event=hit|miss|evict}`` —
null-checked per use, so the uninstrumented cost is one comparison.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.campaign.store import (ResultStore, StoreStats, VerifyReport,
                                  code_fingerprint)

__all__ = ["ShardedResultStore", "CacheStats"]


@dataclass
class CacheStats:
    """Read-through LRU accounting for one :class:`ShardedResultStore`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": self.size,
                "capacity": self.capacity}


class ShardedResultStore:
    """Content-addressed result store over *n_shards* independent roots.

    Implements the store interface the campaign executor consumes
    (``get``/``put``/``contains``/``stats``/``fingerprint``/``root``)
    plus the maintenance surface (``entries``/``gc``/``clear``/
    ``verify``) fanned out across shards.  Safe for concurrent use from
    the event loop and the dispatch thread: the LRU and aggregate stats
    sit behind one lock; the underlying per-shard file operations are
    already atomic.
    """

    def __init__(self, root: str | os.PathLike, *, shards: int | None = None,
                 cache_size: int | None = None,
                 fingerprint: str | None = None):
        from repro.serve.config import serve_cache_size, serve_shards
        self.root = os.path.expanduser(os.fspath(root))
        self.n_shards = shards if shards is not None else serve_shards()
        if self.n_shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.n_shards}")
        capacity = cache_size if cache_size is not None else serve_cache_size()
        if capacity < 0:
            raise ValueError(f"cache_size must be >= 0, got {capacity}")
        self.fingerprint = fingerprint or code_fingerprint()
        self.shards = [
            ResultStore(os.path.join(self.root, "shards", f"{i:02d}"),
                        fingerprint=self.fingerprint)
            for i in range(self.n_shards)]
        self._lock = threading.Lock()
        self._lru: OrderedDict[str, float] = OrderedDict()
        self.cache = CacheStats(capacity=capacity)
        #: Per-shard object-file counts for :meth:`health`, invalidated
        #: by any mutation (put/gc/clear/verify) — health checks on a
        #: quiet store must not walk every shard's objects/ tree on the
        #: event loop.
        self._counts: list[int] | None = None

    # ----- keys and shard routing ------------------------------------------

    def key(self, spec: dict) -> str:
        """The store key for *spec* (identical across all shards)."""
        return self.shards[0].key(spec)

    def shard_for(self, key: str) -> ResultStore:
        """The shard owning *key* (stable prefix hash)."""
        return self.shards[int(key[:4], 16) % self.n_shards]

    # ----- cache internals -------------------------------------------------

    def _count_cache(self, event: str) -> None:
        from repro.obs import metrics as _obs_metrics
        registry = _obs_metrics.active()
        if registry is not None:
            registry.incr("serve.cache", event=event)

    def _cache_get(self, key: str) -> float | None:
        with self._lock:
            if key in self._lru:
                self._lru.move_to_end(key)
                self.cache.hits += 1
                value = self._lru[key]
            else:
                self.cache.misses += 1
                value = None
            self.cache.size = len(self._lru)
        self._count_cache("hit" if value is not None else "miss")
        return value

    def _cache_put(self, key: str, value: float) -> None:
        if self.cache.capacity <= 0:
            return
        evicted = 0
        with self._lock:
            self._lru[key] = value
            self._lru.move_to_end(key)
            while len(self._lru) > self.cache.capacity:
                self._lru.popitem(last=False)
                self.cache.evictions += 1
                evicted += 1
            self.cache.size = len(self._lru)
        for _ in range(evicted):
            self._count_cache("evict")

    # ----- read/write ------------------------------------------------------

    def get(self, spec: dict) -> float | None:
        """Cached value for *spec* (LRU first, then the owning shard)."""
        key = self.key(spec)
        value = self._cache_get(key)
        if value is not None:
            # Keep the shard's hit/miss ledger authoritative even when
            # the disk read is skipped: an LRU hit is a store hit.
            with self._lock:
                self.shard_for(key).stats.hits += 1
            return value
        shard = self.shard_for(key)
        quarantined = shard.stats.quarantined
        value = shard.get(spec)
        if shard.stats.quarantined != quarantined:
            self._counts = None      # a corrupt object was moved aside
        if value is not None:
            self._cache_put(key, value)
        return value

    def put(self, spec: dict, value: float) -> str | None:
        """Store *value* for *spec*; returns the key (None if skipped)."""
        key = self.shard_for(self.key(spec)).put(spec, value)
        if key is not None:
            self._cache_put(key, float(value))
            self._counts = None
        return key

    def contains(self, spec: dict) -> bool:
        """Whether a current-fingerprint result exists (stats untouched)."""
        key = self.key(spec)
        with self._lock:
            if key in self._lru:
                return True
        return self.shard_for(key).contains(spec)

    # ----- stats -----------------------------------------------------------

    @property
    def stats(self) -> StoreStats:
        """Aggregated hit/miss stats across every shard."""
        total = StoreStats()
        for shard in self.shards:
            total.hits += shard.stats.hits
            total.misses += shard.stats.misses
            total.puts += shard.stats.puts
            total.corrupt += shard.stats.corrupt
            total.quarantined += shard.stats.quarantined
            total.skipped_nonfinite += shard.stats.skipped_nonfinite
        return total

    def object_counts(self) -> list[int]:
        """Per-shard object-file counts (cached between mutations).

        The walk (listdir only — files are counted, never parsed) runs
        at most once per mutation; on a quiet store repeated health
        checks are served from the cache without touching the
        filesystem at all.
        """
        counts = self._counts
        if counts is None:
            counts = [shard.count_objects() for shard in self.shards]
            self._counts = counts
        return list(counts)

    def health(self) -> dict:
        """The store block of the server's health report."""
        per_shard = self.object_counts()
        return {"root": self.root, "fingerprint": self.fingerprint,
                "shards": self.n_shards, "objects": sum(per_shard),
                "objects_per_shard": per_shard,
                "cache": self.cache.to_dict(), **self.stats.to_dict()}

    # ----- maintenance (fan-out) -------------------------------------------

    def entries(self) -> list:
        """Every readable object across all shards, shard-major order."""
        out = []
        for shard in self.shards:
            out.extend(shard.entries())
        return out

    def gc(self, max_age_days: float | None = None,
           stale_only: bool = False) -> tuple[int, int]:
        """Fan ``gc`` out across shards; returns ``(removed, kept)``.

        Like the flat store's gc, this only ever touches objects under
        each shard's ``objects/`` tree — quarantined files and journals
        (including the server's job journal under
        ``<root>/journals/serve/``) are never visited.
        """
        removed = kept = 0
        for shard in self.shards:
            r, k = shard.gc(max_age_days=max_age_days, stale_only=stale_only)
            removed += r
            kept += k
        with self._lock:
            self._lru.clear()
            self.cache.size = 0
        self._counts = None
        return removed, kept

    def clear(self) -> int:
        """Remove every object in every shard (directories are kept)."""
        removed = sum(shard.clear() for shard in self.shards)
        with self._lock:
            self._lru.clear()
            self.cache.size = 0
        self._counts = None
        return removed

    def verify(self, repair: bool = False) -> VerifyReport:
        """Audit every shard's objects; one merged report."""
        report = VerifyReport()
        for shard in self.shards:
            part = shard.verify(repair=repair)
            report.checked += part.checked
            report.ok += part.ok
            report.corrupt.extend(part.corrupt)
            report.quarantined.extend(part.quarantined)
        if repair:
            self._counts = None
        return report

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)
