"""A tiny stdlib client for the campaign service's HTTP API.

Every helper returns ``(status, document)`` — 4xx/5xx responses are
*data*, not exceptions (a 409 results-not-ready is how polling works),
so :class:`urllib.error.HTTPError` is caught and unwrapped.  Connection
failures (server not up yet, killed mid-request) raise ``OSError`` and
are the caller's problem — the CLI retries them, tests assert on them.

Used by ``repro serve submit|status|drain`` and by the test/bench
harnesses; the only non-JSON response in the API is ``/jobs/<id>/
results``, fetched raw by :func:`results` because its *bytes* are the
contract (byte-identical to a serial ``repro campaign run --output``).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["request", "submit_job", "job_status", "job_results",
           "server_health", "drain_server", "wait_for_job"]

_TIMEOUT = 30.0


def request(url: str, *, method: str = "GET", body: dict | None = None,
            headers: dict | None = None,
            timeout: float = _TIMEOUT) -> tuple[int, bytes]:
    """One HTTP exchange: ``(status, raw body)``; 4xx/5xx don't raise."""
    data = None
    send_headers = dict(headers or {})
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        send_headers.setdefault("Content-Type", "application/json")
    req = urllib.request.Request(url, data=data, headers=send_headers,
                                 method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read()


def _json(url: str, **kwargs) -> tuple[int, dict]:
    status, raw = request(url, **kwargs)
    try:
        return status, json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return status, {"error": f"non-JSON response: {raw[:200]!r}"}


def submit_job(base_url: str, spec: dict, *, client: str | None = None,
               priority: int = 0) -> tuple[int, dict]:
    """POST a campaign spec; 202 + job status on acceptance."""
    envelope: dict = {"spec": spec, "priority": priority}
    if client is not None:
        envelope["client"] = client
    return _json(f"{base_url}/jobs", method="POST", body=envelope)


def job_status(base_url: str, job_id: str) -> tuple[int, dict]:
    return _json(f"{base_url}/jobs/{job_id}")


def job_results(base_url: str, job_id: str) -> tuple[int, bytes]:
    """The results document, raw (its bytes are the contract)."""
    return request(f"{base_url}/jobs/{job_id}/results")


def server_health(base_url: str) -> tuple[int, dict]:
    return _json(f"{base_url}/healthz")


def drain_server(base_url: str) -> tuple[int, dict]:
    return _json(f"{base_url}/drain", method="POST")


def wait_for_job(base_url: str, job_id: str, *, timeout: float = 120.0,
                 interval: float = 0.05) -> dict:
    """Poll until the job reports done; returns its final status dict.

    Raises ``TimeoutError`` after *timeout* seconds and ``RuntimeError``
    if the server forgets the job (404 after a restart that lost it —
    exactly the condition the journal exists to prevent).
    """
    import time
    deadline = time.time() + timeout
    while True:
        status, document = job_status(base_url, job_id)
        if status == 404:
            raise RuntimeError(f"server lost job {job_id}: {document}")
        if status == 200 and document.get("done"):
            return document
        if time.time() >= deadline:
            raise TimeoutError(
                f"job {job_id} not done after {timeout}s: {document}")
        time.sleep(interval)
