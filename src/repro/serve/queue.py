"""Priority work queue with per-client quota accounting.

The queue holds *cell ids* (the unit of computation and dedup), ordered
by ``(priority, submission sequence)`` — lower priority numbers run
first, ties run in submission order, so dispatch order is deterministic
for a given submission history.  One cell appears at most once no matter
how many jobs subscribe to it; the service's cell-task table owns that
dedup and the queue only orders what it is given.

Quota accounting is part of the queue because admission control is a
queueing concern: a client's *load* is the number of cells it currently
has pending (queued, attached to an in-flight computation, or running),
and :meth:`PriorityWorkQueue.reserve` rejects a submission that would
push the load past the quota **before** anything is enqueued — a
rejected job has no partial footprint to unwind.
"""

from __future__ import annotations

import asyncio
import heapq

__all__ = ["PriorityWorkQueue", "QuotaExceeded"]


class QuotaExceeded(Exception):
    """A submission would exceed its client's pending-cell quota."""

    def __init__(self, client: str, load: int, requested: int, quota: int):
        self.client = client
        self.load = load
        self.requested = requested
        self.quota = quota
        super().__init__(
            f"client {client!r} has {load} pending cell(s); submitting "
            f"{requested} more would exceed the quota of {quota}")


class PriorityWorkQueue:
    """Deterministic priority queue of cell ids + per-client quotas.

    Not thread-safe: every method runs on the event loop (the service
    marshals executor-thread completions back onto the loop before
    touching the queue).
    """

    def __init__(self, quota: int):
        if quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        self.quota = quota
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        self._load: dict[str, int] = {}
        self._event = asyncio.Event()
        self.pushed = 0
        self.popped = 0

    # ----- quota accounting ------------------------------------------------

    def load(self, client: str) -> int:
        """The client's current pending-cell count."""
        return self._load.get(client, 0)

    def reserve(self, client: str, cells: int) -> None:
        """Charge *cells* pending cells to *client* (all or nothing)."""
        held = self.load(client)
        if held + cells > self.quota:
            raise QuotaExceeded(client, held, cells, self.quota)
        self.charge(client, cells)

    def charge(self, client: str, cells: int) -> None:
        """Charge quota without the admission check.

        Used when a restarted server requeues journal-replayed jobs:
        they were admitted under quota once and must not be dropped just
        because their combined load exceeds it now.
        """
        if cells:
            self._load[client] = self.load(client) + cells

    def release(self, client: str, cells: int = 1) -> None:
        """Return *cells* of quota to *client* (floored at zero)."""
        held = self.load(client) - cells
        if held > 0:
            self._load[client] = held
        else:
            self._load.pop(client, None)

    def loads(self) -> dict[str, int]:
        """Per-client pending-cell counts (health endpoint)."""
        return dict(sorted(self._load.items()))

    # ----- queueing --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Cells currently queued (not yet drained for dispatch)."""
        return len(self._heap)

    def push(self, cell_id: str, priority: int = 0) -> None:
        """Enqueue *cell_id*; lower *priority* numbers dispatch first."""
        heapq.heappush(self._heap, (priority, self._seq, cell_id))
        self._seq += 1
        self.pushed += 1
        self._event.set()

    async def drain(self, max_items: int) -> list[str]:
        """Wait for work, then pop up to *max_items* cells in order."""
        while not self._heap:
            self._event.clear()
            await self._event.wait()
        out = []
        while self._heap and len(out) < max_items:
            out.append(heapq.heappop(self._heap)[2])
        self.popped += len(out)
        return out

    def kick(self) -> None:
        """Wake a parked :meth:`drain` (shutdown paths)."""
        self._event.set()
