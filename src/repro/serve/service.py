"""The campaign service core: jobs, dedup, dispatch, persistence.

:class:`CampaignService` is the framework-free heart of ``repro serve``
— the HTTP layer (:mod:`repro.serve.http`) is a thin adapter over it,
and the test suite drives it directly.  One service owns:

* a **job table** — every accepted :class:`~repro.campaign.spec.CampaignSpec`
  becomes a :class:`Job` with a deterministic id
  (``<spec-hash[:8]>-<seq>``, the same shape as journal run ids);
* a **cell-task table** keyed by cell id — the dedup point.  A submitted
  cell that hashes to an already-queued or running computation *attaches*
  to it instead of enqueueing a duplicate; every subscribed job receives
  the one result.  Cells whose result is already in the sharded store
  are served as warm hits at submit time and never touch the queue;
* the **priority work queue** (:class:`~repro.serve.queue.PriorityWorkQueue`)
  with per-client quota admission control;
* a **dispatcher** coroutine that drains cell batches and hands them to
  the supervised campaign executor
  (:func:`repro.campaign.executor.execute` — the
  :class:`~repro.campaign.supervise.Supervisor` process pool when
  ``jobs > 1``) on a dedicated thread via ``run_in_executor``, so the
  event loop keeps serving requests while cells compute;
* the **journal** — every accepted job and every settled cell is
  write-ahead-logged through :class:`repro.campaign.journal.Journal`
  into ``<store>/journals/serve/``.  A SIGKILL'd server replays it on
  restart: unfinished jobs are requeued under their original ids (zero
  lost jobs), finished cells are served from the store/journal without
  recomputation.

Determinism contract: cells run through the exact executor/runner path
``repro campaign run`` uses, and :meth:`Job.results_bytes` serialises
through :func:`repro.campaign.cli.campaign_results_dict` with the same
``sort_keys``/``indent`` — a job's results are byte-identical to the
``--output`` file of a serial CLI run of the same spec.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro._util import canonical_json, sha256_hex
from repro.campaign.journal import (JOURNAL_FILENAME, Journal, JournalError,
                                    JournalState, encode_record)
from repro.campaign.spec import CampaignSpec
from repro.serve.queue import PriorityWorkQueue, QuotaExceeded

__all__ = ["CampaignService", "Job", "ServiceDraining", "UnknownJob",
           "serve_journal_dir", "QuotaExceeded"]

#: The service journal lives beside campaign run journals but under a
#: name the campaign CLI's run-id regex never matches, so ``repro
#: campaign resume`` does not offer it.
SERVE_JOURNAL_NAME = "serve"


class ServiceDraining(Exception):
    """The server is draining and no longer accepts submissions."""


class UnknownJob(KeyError):
    """No job with the requested id."""


def serve_journal_dir(store_root: str) -> str:
    """The server's journal directory under *store_root*."""
    from repro.campaign.journal import journal_dir
    return journal_dir(store_root, SERVE_JOURNAL_NAME)


class Job:
    """One accepted campaign submission and its per-cell progress."""

    def __init__(self, job_id: str, spec: CampaignSpec, cells: list,
                 client: str, priority: int, created: float):
        self.job_id = job_id
        self.spec = spec
        self.cells = cells
        self.client = client
        self.priority = priority
        self.created = created
        self.finished: float | None = None
        self.values: dict[str, float] = {}    # cell-id -> cycles (NaN=failed)
        self.errors: dict[str, str] = {}      # cell-id -> error string
        self.pending: set[str] = set()        # cell-ids not yet settled
        self.hits = 0          # served from the sharded store at submit
        self.resumed = 0       # served from the journal replay at submit
        self.attached = 0      # deduped onto an in-flight computation
        self.computed = 0      # settled by a dispatch this job subscribed to
        self.failed = 0        # settled as NaN after retries
        self.done = asyncio.Event()
        self._watchers: list[asyncio.Queue] = []

    # ----- progress --------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def completed(self) -> int:
        return len(self.values)

    def watch(self) -> asyncio.Queue:
        """Subscribe to this job's event stream (None = end of stream)."""
        queue: asyncio.Queue = asyncio.Queue()
        if self.done.is_set():
            queue.put_nowait(None)
        else:
            self._watchers.append(queue)
        return queue

    def unwatch(self, queue: asyncio.Queue) -> None:
        if queue in self._watchers:
            self._watchers.remove(queue)

    def _emit(self, event: dict) -> None:
        for queue in self._watchers:
            queue.put_nowait(event)

    def _close_watchers(self) -> None:
        for queue in self._watchers:
            queue.put_nowait(None)
        self._watchers.clear()

    # ----- rendering -------------------------------------------------------

    def status_dict(self, now: float, rate: float) -> dict:
        """The job's live status (poll endpoint)."""
        pending = len(self.pending)
        if self.done.is_set():
            eta = 0.0
        elif rate > 0:
            eta = pending / rate
        else:
            eta = None
        elapsed = (self.finished if self.finished is not None else now) \
            - self.created
        return {
            "job": self.job_id,
            "campaign": self.spec.name,
            "client": self.client,
            "priority": self.priority,
            "done": self.done.is_set(),
            "elapsed_seconds": max(0.0, elapsed),
            "eta_seconds": eta,
            "cells": {
                "total": self.total,
                "completed": self.completed,
                "pending": pending,
                "hits": self.hits,
                "resumed": self.resumed,
                "attached": self.attached,
                "computed": self.computed,
                "failed": self.failed,
            },
        }

    def results_bytes(self) -> bytes:
        """The results document, byte-identical to ``repro campaign run
        --output`` for the same spec and code fingerprint."""
        from repro.campaign.cli import campaign_results_dict
        from repro.campaign.executor import ExecutionReport
        report = ExecutionReport()
        for cell in self.cells:
            cid = cell.cell_id
            if cid in self.values:
                report.values[cell] = self.values[cid]
            if cid in self.errors:
                report.errors[cell] = self.errors[cid]
        payload = campaign_results_dict(self.spec, self.cells, report)
        return (json.dumps(payload, sort_keys=True, indent=1) + "\n") \
            .encode("utf-8")


class _CellTask:
    """One queued-or-running cell and the jobs subscribed to it."""

    __slots__ = ("cell", "state", "jobs")

    def __init__(self, cell):
        self.cell = cell
        self.state = "queued"       # -> "running"
        self.jobs: list[str] = []   # subscriber job ids, in attach order


class CampaignService:
    """The campaign service core (see module docstring).

    All state mutation happens on the owning event loop; the dispatch
    thread reports completions back via ``call_soon_threadsafe``.

    Parameters
    ----------
    store
        A store with the executor's store interface — normally a
        :class:`~repro.serve.shards.ShardedResultStore`.
    jobs
        Compute width handed to the campaign executor per batch
        (1 = serial in the dispatch thread, N = supervised fork pool).
    quota
        Per-client pending-cell admission limit
        (default ``REPRO_SERVE_QUOTA``).
    retries
        Per-cell retry budget (default ``REPRO_RETRIES``, like the CLI).
    runner
        ``cell -> cycles`` (default the campaign runner registry's
        :func:`~repro.campaign.runners.run_cell`; injectable for tests).
    batch
        Maximum cells drained per dispatch round (default
        ``max(8, 4 * jobs)``) — smaller batches settle jobs sooner,
        larger ones amortise pool startup.
    journal_root
        Directory for the service journal (default
        ``<store.root>/journals/serve/``; None disables journaling).
    retain_done
        Keep at most this many finished jobs — in memory and through the
        startup journal compaction (default ``REPRO_SERVE_RETAIN``;
        0 = keep everything forever).  Unfinished jobs are never evicted.
    """

    def __init__(self, store, *, jobs: int | None = None,
                 quota: int | None = None, retries: int | None = None,
                 runner=None, batch: int | None = None,
                 journal_root: str | None = None,
                 retain_done: int | None = None, clock=time.time):
        from repro._util import env_int
        from repro.serve.config import serve_jobs, serve_quota, serve_retain

        self.store = store
        self.jobs = jobs if jobs is not None else serve_jobs()
        self.retries = retries if retries is not None \
            else (env_int("REPRO_RETRIES", 1, lo=0) or 0)
        if runner is None:
            from repro.campaign.runners import run_cell
            runner = run_cell
        self._runner = runner
        self.batch = batch if batch is not None else max(8, 4 * self.jobs)
        self.queue = PriorityWorkQueue(quota if quota is not None
                                       else serve_quota())
        self._journal_root = journal_root if journal_root is not None \
            else (serve_journal_dir(store.root)
                  if getattr(store, "root", None) else None)
        self.retain_done = retain_done if retain_done is not None \
            else serve_retain()
        self._clock = clock
        self._journal: Journal | None = None
        self._tasks: dict[str, _CellTask] = {}
        self._jobs: dict[str, Job] = {}
        self._resume_values: dict[str, float] = {}
        self._ended_in_journal: set[str] = set()
        self._seq = 0
        self._rate = 0.0            # EMA of computed cells/second
        self._dispatcher: asyncio.Task | None = None
        self._inflight = 0          # cells inside the current batch
        self._pool: ThreadPoolExecutor | None = None
        self.draining = False
        self.drained = asyncio.Event()
        self.started_at = clock()
        self.requeued_jobs: list[str] = []  # journal-replayed on startup

    # ----- lifecycle -------------------------------------------------------

    # repro: ignore[async-blocking] startup runs before the server
    # accepts traffic: journal replay, compaction and requeue journaling
    # block the loop deliberately — nothing is concurrent with them yet.
    async def start(self, *, dispatch: bool = True) -> None:
        """Open/replay the journal, requeue unfinished jobs, start the
        dispatcher.

        ``dispatch=False`` accepts and journals jobs but never computes
        a cell — the crash-simulation seam the resume tests use to model
        a server killed between acknowledgement and dispatch.
        """
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch")
        state = self._open_journal()
        if state is not None:
            self._resume(state)
        if dispatch:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())

    async def stop(self) -> None:
        """Cancel the dispatcher and release the compute pool."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def _open_journal(self) -> JournalState | None:
        """Replay, sanitize, and compact the service journal on startup.

        The journal is long-lived across restarts, so opening it is not
        a bare append:

        * **stale fingerprints** — completions journaled under a
          different code fingerprint are discarded (serving them would
          break byte-identity with a fresh run; the campaign CLI's
          resume refuses the same case).  The jobs themselves survive:
          they requeue and recompute under the current code.
        * **compaction** — the file is atomically rewritten from the
          replayed state: a fresh ``begin`` under the current
          fingerprint, the completions still worth caching, and the job
          records (live ones, plus the last :attr:`retain_done` finished
          ones).  Rewriting also discards any torn tail or mid-file
          corruption replay stopped at, so appends never land after
          partial bytes, and bounds restart replay time.
        * an unreplayable file (``kill -9`` tore the ``begin`` record
          itself) is set aside as ``journal.jsonl.corrupt`` rather than
          wedging every future startup.
        """
        if self._journal_root is None:
            return None
        path = os.path.join(self._journal_root, JOURNAL_FILENAME)
        fingerprint = getattr(self.store, "fingerprint", "")
        state: JournalState | None = None
        if os.path.isfile(path):
            try:
                state = Journal.open(self._journal_root).replay()
            except JournalError as exc:
                print(f"repro serve: journal unreplayable ({exc}); "
                      f"setting it aside", file=sys.stderr)
                os.replace(path, path + ".corrupt")
        if state is None:
            self._journal = Journal.create(
                self._journal_root, run_id=SERVE_JOURNAL_NAME,
                campaign="__serve__", spec={"service": "repro.serve"},
                fingerprint=fingerprint)
            return None
        if state.fingerprint != fingerprint:
            print(f"repro serve: journal fingerprint {state.fingerprint} "
                  f"!= code fingerprint {fingerprint}; discarding "
                  f"{len(state.completed)} journaled completion(s) — "
                  f"replayed jobs will recompute", file=sys.stderr)
            state.completed.clear()
            state.failed.clear()
        self._retire_old_jobs(state)
        self._compact_journal(state, fingerprint)
        self._journal = Journal.open(self._journal_root)
        return state

    def _retire_old_jobs(self, state: JournalState) -> None:
        """Apply the :attr:`retain_done` retention policy to *state*.

        Finished jobs beyond the cap are dropped oldest-first (journal
        order); completions that no surviving job's cells can use are
        dropped with them, so the compacted journal and the in-memory
        resume table stay bounded together.  Unfinished jobs always
        survive — zero lost jobs is the contract retention must not
        bend.
        """
        cap = self.retain_done
        ended = [jid for jid in state.jobs if jid in state.ended_jobs]
        if cap and len(ended) > cap:
            for jid in ended[:-cap]:
                del state.jobs[jid]
                state.ended_jobs.discard(jid)
        keep: set[str] = set()
        for record in state.jobs.values():
            try:
                cells = CampaignSpec.from_dict(record["spec"]).expand()
            except (ValueError, KeyError, TypeError):
                continue
            keep.update(cell.cell_id for cell in cells)
        for cid in [c for c in state.completed if c not in keep]:
            del state.completed[cid]

    def _compact_journal(self, state: JournalState,
                         fingerprint: str) -> None:
        """Atomically rewrite the journal file from replayed *state*."""
        lines = [encode_record({"type": "begin", "run": SERVE_JOURNAL_NAME,
                                "campaign": "__serve__",
                                "spec": {"service": "repro.serve"},
                                "fingerprint": fingerprint})]
        for cid, value in state.completed.items():
            lines.append(encode_record({"type": "completed", "cell": cid,
                                        "value": float(value)}))
        for job_id, record in state.jobs.items():
            lines.append(encode_record(
                {"type": "job", "job": job_id,
                 "campaign": record.get("campaign"),
                 "spec": record.get("spec"),
                 "client": record.get("client", "anonymous"),
                 "priority": int(record.get("priority", 0))}))
            if job_id in state.ended_jobs:
                lines.append(encode_record({"type": "job-end",
                                            "job": job_id}))
        path = os.path.join(self._journal_root, JOURNAL_FILENAME)
        tmp = f"{path}.compact"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("".join(lines))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _resume(self, state: JournalState) -> None:
        """Rebuild the job table from a replayed journal.

        Jobs without a ``job-end`` record are requeued under their
        original ids; ended jobs are rebuilt too (their cells come back
        as store/journal hits) so clients can still poll and fetch them
        after a restart.  Journaled cell completions serve as a fallback
        value source when the store misses.
        """
        self._resume_values = dict(state.completed)
        self._ended_in_journal = set(state.ended_jobs)
        for job_id, record in state.jobs.items():
            suffix = job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                self._seq = max(self._seq, int(suffix))
            try:
                spec = CampaignSpec.from_dict(record["spec"])
            except (ValueError, KeyError, TypeError):
                continue  # stale spec from an older code version
            job = self._admit(spec, client=record.get("client", "anonymous"),
                              priority=record.get("priority", 0),
                              job_id=job_id, journal_record=False)
            self.requeued_jobs.append(job.job_id)

    # ----- submission ------------------------------------------------------

    def new_job_id(self, spec: CampaignSpec) -> str:
        """Deterministic job id: ``<spec-hash[:8]>-<seq>``."""
        self._seq += 1
        prefix = sha256_hex(canonical_json(spec.to_dict()))[:8]
        return f"{prefix}-{self._seq}"

    def submit(self, spec_data: dict | CampaignSpec, *,
               client: str = "anonymous", priority: int = 0) -> Job:
        """Accept one campaign submission; returns its :class:`Job`.

        Raises :class:`ValueError` on an invalid spec,
        :class:`~repro.serve.queue.QuotaExceeded` over quota, and
        :class:`ServiceDraining` while draining — the HTTP layer maps
        these to 400/429/503.
        """
        if self.draining:
            raise ServiceDraining("server is draining; submit rejected")
        spec = spec_data if isinstance(spec_data, CampaignSpec) \
            else CampaignSpec.from_dict(spec_data)
        return self._admit(spec, client=client, priority=priority)

    def _admit(self, spec: CampaignSpec, *, client: str, priority: int,
               job_id: str | None = None, journal_record: bool = True) -> Job:
        cells = spec.expand()
        # Plan first (no queue mutation): which cells are warm, which
        # attach to in-flight work, which need computing.  A spec with
        # duplicate axis values expands to the same cell twice; it is
        # one unit of work and one result, so the plan dedupes by id.
        plan = []           # (cell, disposition, value)
        planned: set[str] = set()
        pending_cells = 0
        for cell in cells:
            cid = cell.cell_id
            if cid in planned:
                continue
            planned.add(cid)
            if cid in self._tasks:
                plan.append((cell, "attach", None))
                pending_cells += 1
                continue
            value = self.store.get(cell.to_dict()) \
                if self.store is not None else None
            if value is not None:
                plan.append((cell, "hit", value))
                continue
            if cid in self._resume_values:
                plan.append((cell, "resume", self._resume_values[cid]))
                continue
            plan.append((cell, "queue", None))
            pending_cells += 1
        # Admission control before any mutation: a rejected submission
        # leaves no partial footprint.  Journal-replayed jobs were
        # admitted under quota once, so resume charges without the cap.
        if journal_record:
            self.queue.reserve(client, pending_cells)
        else:
            self.queue.charge(client, pending_cells)
        if job_id is None:
            job_id = self.new_job_id(spec)
        if journal_record and self._journal is not None:
            self._journal.job(job_id, campaign=spec.name,
                              spec=spec.to_dict(), client=client,
                              priority=priority)
        job = Job(job_id, spec, cells, client, priority, self._clock())
        self._jobs[job_id] = job
        for cell, disposition, value in plan:
            cid = cell.cell_id
            if disposition == "hit":
                job.values[cid] = value
                job.hits += 1
                self._count_cell("hit")
            elif disposition == "resume":
                job.values[cid] = value
                job.resumed += 1
                self._count_cell("resumed")
            elif disposition == "attach":
                task = self._tasks.get(cid)
                if task is None:    # settled between plan and commit
                    job.pending.add(cid)
                    self._enqueue(cell, job_id, priority)
                else:
                    task.jobs.append(job_id)
                    job.pending.add(cid)
                    job.attached += 1
                    self._count_cell("attached")
            else:
                job.pending.add(cid)
                self._enqueue(cell, job_id, priority)
        if not job.pending:
            self._finish_job(job)
        return job

    def _enqueue(self, cell, job_id: str, priority: int) -> None:
        task = _CellTask(cell)
        task.jobs.append(job_id)
        self._tasks[cell.cell_id] = task
        self.queue.push(cell.cell_id, priority)
        self._count_cell("queued")

    def _count_cell(self, status: str) -> None:
        from repro.obs import metrics as _obs_metrics
        registry = _obs_metrics.active()
        if registry is not None:
            registry.incr("serve.cells", status=status)

    # ----- dispatch --------------------------------------------------------

    # repro: ignore[async-blocking] durability-before-acknowledgement by
    # design: settle-path journal appends fsync on the loop so a crash
    # can never acknowledge a cell the journal has not yet seen; batch
    # compute itself runs in the executor.
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            self._check_drained()
            drained = await self.queue.drain(self.batch)
            cells = []
            for cid in drained:
                task = self._tasks.get(cid)
                if task is not None and task.state == "queued":
                    task.state = "running"
                    cells.append(task.cell)
            if not cells:
                continue
            self._inflight = len(cells)
            try:
                report = await loop.run_in_executor(
                    self._pool, self._run_batch, cells, loop)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — a broken batch
                # (store OSError, runner import failure, pool breakage)
                # must not kill the dispatcher silently: settle its
                # cells as failed so jobs finish with errors instead of
                # hanging forever, then keep dispatching.
                self._inflight = 0
                self._fail_batch(cells, exc)
                continue
            try:
                self._finalize_batch(cells, report)
            finally:
                self._inflight = 0

    def _run_batch(self, cells, loop):
        """Execute one batch on the dispatch thread (supervised pool
        when ``jobs > 1``); per-cell progress is marshalled back onto
        the event loop as cells settle."""
        from repro.campaign.executor import execute

        def on_cell(cell, value):
            loop.call_soon_threadsafe(self._progress, cell, value)

        return execute(
            self._runner, cells, jobs=self.jobs, retries=self.retries,
            store=self.store, spec_for=lambda c: c.to_dict(),
            key_id=lambda c: c.cell_id, family_for=lambda c: c.experiment,
            on_cell=on_cell, desc="cells (serve)")

    def _fail_batch(self, cells, exc: BaseException) -> None:
        """Settle a batch whose *dispatch* blew up (not a cell failure —
        the executor turns those into NaN values inside the report)."""
        message = f"dispatch failed: {type(exc).__name__}: {exc}"
        print(f"repro serve: {message}", file=sys.stderr)
        from repro.obs import metrics as _obs_metrics
        registry = _obs_metrics.active()
        if registry is not None:
            registry.incr("serve.dispatch_errors")
        for cell in cells:
            self._settle_cell(cell, float("nan"), message)
        self._check_drained()

    def _progress(self, cell, value) -> None:
        """Per-cell completion from inside a running batch (loop thread).

        Finite values settle immediately — subscribers see the cell the
        moment it computes, not at batch end.  NaN (failed) cells wait
        for the batch report, which carries their error strings.
        """
        if math.isfinite(value):
            self._settle_cell(cell, float(value), None)

    def _finalize_batch(self, cells, report) -> None:
        """Settle whatever the per-cell progress path did not."""
        for cell in cells:
            if cell.cell_id not in self._tasks:
                continue
            value = report.values.get(cell, float("nan"))
            self._settle_cell(cell, float(value), report.errors.get(cell))
        worked = report.computed + report.failed
        if worked and report.elapsed > 0:
            rate = worked / report.elapsed
            self._rate = rate if self._rate == 0.0 \
                else 0.5 * self._rate + 0.5 * rate
        self._check_drained()

    def _settle_cell(self, cell, value: float, error: str | None) -> None:
        cid = cell.cell_id
        task = self._tasks.pop(cid, None)
        if task is None:
            return
        failed = error is not None or not math.isfinite(value)
        if self._journal is not None:
            if failed:
                self._journal.failed(cid, error or "failed")
            else:
                self._journal.completed(cid, value)
        self._count_cell("failed" if failed else "computed")
        for job_id in task.jobs:
            job = self._jobs.get(job_id)
            if job is None:
                continue
            job.values[cid] = value
            if failed:
                job.errors[cid] = error or "failed"
                job.failed += 1
            else:
                job.computed += 1
            job.pending.discard(cid)
            self.queue.release(job.client, 1)
            event = {"event": "cell", "job": job_id, "cell": cid,
                     "completed": job.completed, "total": job.total}
            if failed:
                event["error"] = job.errors[cid]
            else:
                event["value"] = value
            job._emit(event)
            if not job.pending:
                self._finish_job(job)

    def _finish_job(self, job: Job) -> None:
        job.finished = self._clock()
        job.done.set()
        if self._journal is not None \
                and job.job_id not in self._ended_in_journal:
            self._journal.job_end(job.job_id)
            self._ended_in_journal.add(job.job_id)
        job._emit({"event": "done", "job": job.job_id,
                   "failed": job.failed, "total": job.total})
        job._close_watchers()
        self._evict_done()

    def _evict_done(self) -> None:
        """Drop the oldest finished jobs beyond :attr:`retain_done`.

        Keeps a long-running server's job table (and the journal it
        compacts to on the next restart) bounded; an evicted job's
        status/results return 404, exactly as after a restart beyond
        the retention window.  Unfinished jobs are never evicted.
        """
        cap = self.retain_done
        if not cap:
            return
        done = [job for job in self._jobs.values() if job.done.is_set()]
        for job in done[:max(0, len(done) - cap)]:
            del self._jobs[job.job_id]
            self._ended_in_journal.discard(job.job_id)

    # ----- inspection ------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def jobs_list(self) -> list[Job]:
        """Every known job, oldest first."""
        return list(self._jobs.values())

    @property
    def rate(self) -> float:
        """Smoothed compute throughput (cells/second; 0 = unknown)."""
        return self._rate

    def health(self) -> dict:
        """The server/store health document (``GET /healthz``)."""
        now = self._clock()
        jobs = self._jobs.values()
        active = sum(not j.done.is_set() for j in jobs)
        store_block = self.store.health() if hasattr(self.store, "health") \
            else {"root": getattr(self.store, "root", None),
                  **self.store.stats.to_dict()}
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": max(0.0, now - self.started_at),
            "jobs": {"total": len(self._jobs), "active": active,
                     "done": len(self._jobs) - active,
                     "requeued_on_start": len(self.requeued_jobs)},
            "queue": {"depth": self.queue.depth,
                      "inflight": self._inflight,
                      "pushed": self.queue.pushed,
                      "popped": self.queue.popped,
                      "quota": self.queue.quota,
                      "loads": self.queue.loads()},
            "dispatch": {"jobs": self.jobs, "batch": self.batch,
                         "retries": self.retries,
                         "rate_cells_per_second": self._rate},
            "store": store_block,
            "graphs": self._graphs_block(),
            "journal": {"path": self._journal.path
                        if self._journal is not None else None},
        }

    @staticmethod
    def _graphs_block() -> dict | None:
        """Graph-registry health (None when ``REPRO_GRAPH_DIR`` unset).

        ``count_objects`` is a single listdir — cheap enough to poll —
        and the stats come from the process-wide registry the dispatch
        path shares, so warm traffic shows up as mmap hits here.
        """
        from repro.graphstore.registry import registry_from_env
        registry = registry_from_env()
        if registry is None:
            return None
        return {"root": registry.root,
                # repro: ignore[async-blocking] health-poll listdir over
                # a flat object directory: documented-cheap, and /health
                # is an operator endpoint, not the dispatch hot path.
                "objects": registry.count_objects(),
                **registry.stats.to_dict()}

    # ----- drain -----------------------------------------------------------

    def drain(self) -> dict:
        """Stop accepting submissions; report what is left to finish."""
        self.draining = True
        self._check_drained()
        return {"draining": True, "queued": self.queue.depth,
                "inflight": self._inflight,
                "active_jobs": sum(not j.done.is_set()
                                   for j in self._jobs.values())}

    def _check_drained(self) -> None:
        if self.draining and not self._tasks and self.queue.depth == 0 \
                and self._inflight == 0:
            self.drained.set()
