"""Command line for the campaign service: ``repro serve <command>``.

::

    repro serve start [--host H] [--port P] [--store DIR] [--jobs N]
                      [--shards N] [--cache N] [--quota N]
    repro serve submit SPEC.json [--url URL] [--client NAME]
                      [--priority N] [--wait] [--output PATH]
    repro serve status [JOB-ID] [--url URL]
    repro serve drain [--url URL]

``start`` runs the server in the foreground until drained (or killed —
a killed server's accepted jobs survive in the journal and requeue on
the next start against the same store).  The other three are thin
wrappers over :mod:`repro.serve.client`; they default the server URL
from ``REPRO_SERVE_URL`` / ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT``.

``submit --wait --output results.json`` is the full round trip: POST
the spec, poll to completion, fetch the results document — whose bytes
equal a serial ``repro campaign run --output`` of the same spec.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

__all__ = ["main"]


def _cmd_start(args) -> int:
    import os

    from repro.campaign.store import DEFAULT_STORE_ROOT, default_store_root
    from repro.serve.config import ServeConfig, serve_graph_dir
    from repro.serve.http import serve
    from repro.serve.service import CampaignService
    from repro.serve.shards import ShardedResultStore

    config = ServeConfig.from_env(host=args.host, port=args.port,
                                  jobs=args.jobs, quota=args.quota,
                                  cache_size=args.cache, shards=args.shards,
                                  retain=args.retain)
    if args.graph_dir:
        # Propagated through the environment so campaign worker forks
        # resolve suite graphs through the same registry.
        os.environ["REPRO_GRAPH_DIR"] = args.graph_dir
    graph_dir = serve_graph_dir()
    root = args.store or default_store_root() or DEFAULT_STORE_ROOT
    store = ShardedResultStore(root, shards=config.shards,
                               cache_size=config.cache_size)

    def service_factory() -> CampaignService:
        return CampaignService(store, jobs=config.jobs, quota=config.quota,
                               retries=args.retries, batch=args.batch,
                               retain_done=config.retain)

    def ready(host: str, port: int) -> None:
        print(f"repro serve: listening on http://{host}:{port}", flush=True)
        print(f"repro serve: store {store.root} "
              f"({store.n_shards} shards, cache {store.cache.capacity})",
              flush=True)
        if graph_dir:
            print(f"repro serve: graph registry {graph_dir}", flush=True)

    service = service_factory()
    try:
        asyncio.run(serve(service, config.host, config.port, ready=ready))
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
        return 130
    requeued = len(service.requeued_jobs)
    if requeued:
        print(f"repro serve: requeued {requeued} journaled job(s) "
              f"on startup", flush=True)
    print("repro serve: drained, exiting", flush=True)
    return 0


def _url(args) -> str:
    from repro.serve.config import serve_url
    return args.url or serve_url()


def _cmd_submit(args) -> int:
    from repro.serve import client

    with open(args.spec, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    status, document = client.submit_job(_url(args), spec,
                                         client=args.client,
                                         priority=args.priority)
    if status != 202:
        print(f"repro serve: submit rejected ({status}): "
              f"{document.get('error', document)}", file=sys.stderr)
        return 1
    job_id = document["job"]
    print(f"job {job_id}: {document['cells']['total']} cell(s), "
          f"{document['cells']['pending']} pending")
    if not args.wait and args.output is None:
        return 0
    final = client.wait_for_job(_url(args), job_id, timeout=args.timeout)
    cells = final["cells"]
    print(f"job {job_id}: done — {cells['completed']} completed "
          f"({cells['hits']} store hits, {cells['computed']} computed, "
          f"{cells['failed']} failed)")
    if args.output is not None:
        status, raw = client.job_results(_url(args), job_id)
        if status != 200:
            print(f"repro serve: results fetch failed ({status})",
                  file=sys.stderr)
            return 1
        # repro: ignore[crash-bare-write] args.output is a user-chosen
        # export path, not a store/journal object; a torn write here is
        # the user's file to re-fetch, not service state to recover.
        with open(args.output, "wb") as out:
            out.write(raw)
        print(f"results -> {args.output}")
    return 1 if cells["failed"] else 0


def _cmd_status(args) -> int:
    from repro.serve import client
    if args.job_id:
        status, document = client.job_status(_url(args), args.job_id)
    else:
        status, document = client.server_health(_url(args))
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0 if status == 200 else 1


def _cmd_drain(args) -> int:
    from repro.serve import client
    status, document = client.drain_server(_url(args))
    if status != 202:
        print(f"repro serve: drain failed ({status}): {document}",
              file=sys.stderr)
        return 1
    print(f"draining: {document['queued']} queued, "
          f"{document['inflight']} in flight, "
          f"{document['active_jobs']} active job(s)")
    return 0


def main(argv=None) -> int:
    """Entry point for ``repro serve ...`` (returns the exit code)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Campaign service: submit sweep specs over HTTP, "
                    "poll progress, fetch byte-deterministic results.")
    sub = parser.add_subparsers(dest="command", required=True)

    start_p = sub.add_parser("start", help="run the server (foreground)")
    start_p.add_argument("--host", default=None,
                         help="bind address (default REPRO_SERVE_HOST "
                              "or 127.0.0.1)")
    start_p.add_argument("--port", type=int, default=None,
                         help="bind port (default REPRO_SERVE_PORT; "
                              "0 = ephemeral)")
    start_p.add_argument("--store", default=None, metavar="DIR",
                         help="store root (default $REPRO_STORE or "
                              "~/.cache/repro)")
    start_p.add_argument("--jobs", type=int, default=None,
                         help="compute processes per batch (default "
                              "REPRO_SERVE_JOBS or 1; 0 = one per CPU)")
    start_p.add_argument("--quota", type=int, default=None,
                         help="per-client pending-cell quota (default "
                              "REPRO_SERVE_QUOTA)")
    start_p.add_argument("--shards", type=int, default=None,
                         help="store shard count (default "
                              "REPRO_SERVE_SHARDS)")
    start_p.add_argument("--cache", type=int, default=None,
                         help="result LRU capacity (default "
                              "REPRO_SERVE_CACHE; 0 disables)")
    start_p.add_argument("--retries", type=int, default=None,
                         help="per-cell retry budget (default "
                              "REPRO_RETRIES)")
    start_p.add_argument("--batch", type=int, default=None,
                         help="max cells per dispatch round")
    start_p.add_argument("--retain", type=int, default=None,
                         help="finished jobs kept in memory and through "
                              "journal compaction (default "
                              "REPRO_SERVE_RETAIN; 0 = keep all)")
    start_p.add_argument("--graph-dir", default=None, metavar="DIR",
                         help="graph registry root (sets REPRO_GRAPH_DIR; "
                              "suite graphs are built once and "
                              "memory-mapped by every dispatch batch)")

    submit_p = sub.add_parser("submit", help="POST a campaign spec")
    submit_p.add_argument("spec", help="campaign spec JSON file")
    submit_p.add_argument("--client", default=None,
                          help="client name for quota accounting")
    submit_p.add_argument("--priority", type=int, default=0,
                          help="dispatch priority (lower runs first)")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job finishes")
    submit_p.add_argument("--output", default=None, metavar="PATH",
                          help="fetch the results document when done "
                               "(implies --wait)")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          help="--wait deadline in seconds")

    status_p = sub.add_parser("status", help="server health or one job")
    status_p.add_argument("job_id", nargs="?", default=None,
                          metavar="JOB-ID",
                          help="job to inspect (omit for /healthz)")

    drain_p = sub.add_parser("drain", help="stop accepting; finish + exit")

    for p in (submit_p, status_p, drain_p):
        p.add_argument("--url", default=None,
                       help="server base URL (default REPRO_SERVE_URL or "
                            "http://REPRO_SERVE_HOST:REPRO_SERVE_PORT)")

    args = parser.parse_args(argv)
    try:
        if args.command == "start":
            return _cmd_start(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_drain(args)
    except (OSError, ValueError, TimeoutError, RuntimeError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
