"""Campaign-service configuration: the ``REPRO_SERVE_*`` surface.

Every knob is read through the validated env parsers in
:mod:`repro._util` (enforced by the ``env-raw-read`` lint rule), so a
typo'd value fails loudly with the variable's name instead of silently
running the server with a default.  CLI flags override the environment;
the environment overrides the defaults below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import env_int, env_str

__all__ = ["ServeConfig", "serve_host", "serve_port", "serve_url",
           "serve_jobs", "serve_quota", "serve_cache_size", "serve_shards",
           "serve_retain", "serve_graph_dir", "DEFAULT_PORT"]

#: Default TCP port (an unassigned IANA port; override with
#: ``REPRO_SERVE_PORT`` or ``--port``; 0 = pick a free ephemeral port).
DEFAULT_PORT = 8642


def serve_host() -> str:
    """Bind/connect host from ``REPRO_SERVE_HOST`` (default loopback)."""
    return env_str("REPRO_SERVE_HOST", "127.0.0.1") or "127.0.0.1"


def serve_port() -> int:
    """TCP port from ``REPRO_SERVE_PORT`` (0 = ephemeral)."""
    value = env_int("REPRO_SERVE_PORT", DEFAULT_PORT, lo=0, hi=65535)
    return DEFAULT_PORT if value is None else value


def serve_url() -> str:
    """Client-side base URL from ``REPRO_SERVE_URL`` (or host:port)."""
    url = env_str("REPRO_SERVE_URL")
    if url is not None:
        return url.rstrip("/")
    return f"http://{serve_host()}:{serve_port()}"


def serve_jobs() -> int:
    """Compute-pool width from ``REPRO_SERVE_JOBS`` (default 1 = serial).

    Mirrors ``REPRO_JOBS`` semantics: ``0`` means one worker per CPU;
    ``1`` keeps cell execution serial in the dispatch thread, which is
    the deterministic default the byte-identity guarantee is stated for
    (parallel runs are bitwise identical too, via the supervised pool).
    """
    import os
    jobs = env_int("REPRO_SERVE_JOBS", 1, lo=0)
    return jobs or (os.cpu_count() or 1)


def serve_quota() -> int:
    """Per-client pending-cell quota from ``REPRO_SERVE_QUOTA``.

    The maximum number of cells one client may have queued or in flight
    at once; a submission that would exceed it is rejected with HTTP 429
    before anything is enqueued.
    """
    value = env_int("REPRO_SERVE_QUOTA", 1024, lo=1)
    return 1024 if value is None else value


def serve_cache_size() -> int:
    """Read-through LRU capacity (entries) from ``REPRO_SERVE_CACHE``.

    ``0`` disables the in-memory cache entirely (every read goes to the
    sharded on-disk store).
    """
    value = env_int("REPRO_SERVE_CACHE", 4096, lo=0)
    return 4096 if value is None else value


def serve_shards() -> int:
    """On-disk shard count from ``REPRO_SERVE_SHARDS`` (default 16).

    Shards are selected by cell-key prefix, so the count is a layout
    property of the store directory: changing it re-homes keys to
    different shard roots (old entries simply miss and are recomputed).
    """
    value = env_int("REPRO_SERVE_SHARDS", 16, lo=1, hi=256)
    return 16 if value is None else value


def serve_retain() -> int:
    """Finished-job retention cap from ``REPRO_SERVE_RETAIN``.

    The server keeps at most this many finished jobs — in the in-memory
    job table *and* in the startup-compacted journal (a long-running
    server would otherwise grow its job table, its journal file, and
    its restart replay time without bound).  Older finished jobs are
    evicted (polling them returns 404); unfinished jobs are never
    evicted.  ``0`` disables retention and keeps everything forever.
    """
    value = env_int("REPRO_SERVE_RETAIN", 512, lo=0)
    return 512 if value is None else value


def serve_graph_dir() -> str | None:
    """Graph-registry root from ``REPRO_GRAPH_DIR`` (None = disabled).

    When set, every suite graph the dispatch loop (and its worker
    forks) touches resolves through :mod:`repro.graphstore`: one
    ``.rgr`` file on disk, memory-mapped read-only by every batch
    instead of regenerated per process.
    """
    return env_str("REPRO_GRAPH_DIR")


@dataclass(frozen=True)
class ServeConfig:
    """Resolved server configuration (env defaults + CLI overrides)."""

    host: str
    port: int
    jobs: int
    quota: int
    cache_size: int
    shards: int
    retain: int

    @classmethod
    def from_env(cls, *, host: str | None = None, port: int | None = None,
                 jobs: int | None = None, quota: int | None = None,
                 cache_size: int | None = None,
                 shards: int | None = None,
                 retain: int | None = None) -> "ServeConfig":
        """Build a config, with explicit (CLI) values taking precedence."""
        return cls(
            host=host if host is not None else serve_host(),
            port=port if port is not None else serve_port(),
            jobs=jobs if jobs is not None else serve_jobs(),
            quota=quota if quota is not None else serve_quota(),
            cache_size=cache_size if cache_size is not None
            else serve_cache_size(),
            shards=shards if shards is not None else serve_shards(),
            retain=retain if retain is not None else serve_retain(),
        )
