"""Happens-before race detector over the simulated machine (``repro.check``).

A :class:`Checker` is an opt-in observer, activated exactly like the
:mod:`repro.obs` tracer: instrumentation sites in the engine, the
resources and the runtimes capture ``active()`` once at construction and
null-check it per use, so an unchecked run pays one ``is not None`` test
per potential event and a checked run perturbs **zero simulated cycles**
(the checker never feeds back into the simulation — a property the tests
and CI assert).

Shadow state:

* one :class:`~repro.check.clocks.VectorClock` per simulated software
  thread, with components keyed ``(loop_index, tid)`` so separate
  parallel regions never share epochs — cross-region ordering exists
  *only* through the region join (the edge the seeded-bug mode drops);
* one clock per synchronisation object (atomic variables, ticket locks,
  conditions), joined acquire/release style on every reservation;
* barrier trips join all arrivals all-to-all;
* work-stealing deques are mirrored, so a stolen range hands the thief
  the victim's clock *at push time* — not the victim's current clock,
  which would hide races against work the victim did in between.

Each executed chunk snapshots its thread's clock; at region end the
checker intersects the declared read/write footprints
(:class:`~repro.kernels.base.AccessSet`) of every concurrent —
not-happens-before-ordered — chunk pair.  Overlaps on arrays annotated
``benign_race`` on *both* sides are tallied and bound-checked; anything
else is an unannotated race finding.

``drop_edges`` removes classes of happens-before edges to *seed*
synchronisation bugs (e.g. ``region-join`` models launching the
colouring conflict pass without waiting for the tentative pass): the
checker must then report races, which is how CI proves the detector
actually depends on every minted edge.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.check.clocks import VectorClock, ordered_before
from repro.check.report import (SEV_ERROR, SEV_WARNING, CheckReport,
                                Finding)
from repro.obs import metrics as _obs_metrics

__all__ = ["Checker", "active", "install", "uninstall", "checking",
           "DROP_EDGE_KINDS"]

#: Happens-before edge classes that ``drop_edges`` can remove (the
#: seeded-bug mechanism; see module docstring).
DROP_EDGE_KINDS = frozenset(
    {"region-join", "barrier", "atomic", "lock", "steal", "cond"})

#: Cap on emitted findings — aggregation keys findings per (array, loop
#: pair), so this only trips on pathologically broken runs.
MAX_FINDINGS = 500

#: The active checker (None = checking disabled; the common case).
_ACTIVE: "Checker | None" = None


def active() -> "Checker | None":
    """The installed checker, or None when checking is off."""
    return _ACTIVE


def install(checker: "Checker") -> None:
    """Make *checker* the active checker (fails if one already is)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a checker is already installed")
    if not isinstance(checker, Checker):
        raise TypeError(f"expected a Checker, got {checker!r}")
    _ACTIVE = checker


def uninstall() -> None:
    """Deactivate the active checker (no-op when none is installed)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def checking(checker: "Checker | None" = None):
    """Context manager: install a (new by default) checker, yield it."""
    checker = checker if checker is not None else Checker()
    install(checker)
    try:
        yield checker
    finally:
        uninstall()


@dataclass
class _ChunkRecord:
    """One executed chunk with its happens-before snapshot."""

    loop: int
    label: str
    tid: int
    lo: int
    hi: int
    comp: tuple             # vector-clock component, (loop, tid)
    snap: VectorClock       # thread clock when the chunk executed
    access: object          # the loop's AccessSet (or None)
    fp: dict | None = None  # footprint cache, computed on demand

    def footprint(self) -> dict:
        """``{array: [(kind, cells, guard), ...]}`` for this chunk."""
        if self.fp is None:
            self.fp = self.access.footprint(self.lo, self.hi) \
                if self.access is not None else {}
        return self.fp

    def where(self) -> str:
        """Human-readable location, e.g. ``omp-dynamic#1[0,8)@t2``."""
        return f"{self.label}#{self.loop}[{self.lo},{self.hi})@t{self.tid}"


@dataclass
class _LoopState:
    """Shadow state of the parallel region currently executing."""

    index: int
    label: str
    n_threads: int
    access: object
    fork: VectorClock
    clocks: dict = field(default_factory=dict)   # tid -> VectorClock
    objs: dict = field(default_factory=dict)     # id(sync obj) -> VectorClock
    shadow: dict = field(default_factory=dict)   # wid -> deque of snapshots
    chunks: list = field(default_factory=list)   # [_ChunkRecord]
    holds: dict = field(default_factory=dict)    # tid -> [(label, start, done)]
    last_trip: tuple | None = None
    chunks_since_trip: int = 0

    def comp(self, tid: int) -> tuple:
        """This loop's vector-clock component for thread *tid*."""
        return (self.index, tid)


class Checker:
    """Dynamic happens-before + lockset checker (see module docstring)."""

    def __init__(self, drop_edges=(), max_findings: int = MAX_FINDINGS):
        drop = frozenset(drop_edges)
        unknown = drop - DROP_EDGE_KINDS
        if unknown:
            raise ValueError(
                f"unknown drop_edges {sorted(unknown)}; "
                f"choose from {sorted(DROP_EDGE_KINDS)}")
        self.drop_edges = drop
        self.max_findings = max_findings
        self.report = CheckReport()
        self._master = VectorClock()     # joined clocks of finished regions
        self._carry: list = []           # prior chunks not ordered before now
        self._loop: _LoopState | None = None
        self._next_index = 0
        self._lock_pairs: dict = {}      # (outer, inner) -> reported flag
        self._bound_flagged: set = set()

    # ----- region lifecycle -------------------------------------------------

    def begin_loop(self, label: str, n_threads: int, access=None) -> None:
        """A parallel region is starting; fork the thread clocks."""
        if self._loop is not None:
            # A region died mid-flight (watchdog/deadlock); fold what we saw.
            self.end_loop()
        fork = self._master.copy()
        st = _LoopState(index=self._next_index, label=label,
                        n_threads=n_threads, access=access, fork=fork)
        self._next_index += 1
        for tid in range(n_threads):
            vc = fork.copy()
            vc.tick(st.comp(tid))
            st.clocks[tid] = vc
            st.shadow[tid] = deque()
        # Prior-region chunks already ordered before this fork can never
        # race with anything later; with every join intact this empties.
        self._carry = [r for r in self._carry
                       if not ordered_before(r.snap, r.comp, fork)]
        self._loop = st
        self.report.count("loops")
        self.report.loops.append(label)

    def end_loop(self, span: float = 0.0) -> None:
        """The region's engine drained; analyse and absorb its clocks."""
        st = self._loop
        if st is None:
            return
        self._loop = None
        self._tally_writes(st)
        races = self._detect(st)
        self._emit(races)
        if "region-join" not in self.drop_edges:
            for vc in st.clocks.values():
                self._master.join(vc)
        # Chunks the next fork won't dominate stay eligible to race.
        self._carry.extend(st.chunks)
        registry = _obs_metrics.active()
        if registry is not None:
            registry.counter("check.loops").inc(1)
            if races:
                n_err = sum(1 for k in races if not k[0])
                if n_err:
                    registry.counter("check.races").inc(n_err)

    def finalize(self) -> CheckReport:
        """Close any open region, evaluate annotations, return the report."""
        self.end_loop()
        for array in sorted(self.report.benign):
            tally = self.report.benign[array]
            if tally.expected and tally.pairs == 0:
                self.report.add(Finding(
                    kind="benign-missing", severity=SEV_WARNING, array=array,
                    message=f"annotation expects races on '{array}' but the "
                            "schedule produced none (speculation never "
                            "exercised)"))
        return self.report

    # ----- engine events ----------------------------------------------------

    def on_barrier(self, obj, tids: list, now: float) -> None:
        """A barrier released *tids* together (all-to-all join)."""
        st = self._loop
        if st is None or not tids:
            return
        self.report.count("barrier_trips")
        trip = (id(obj), tuple(sorted(tids)))
        if st.last_trip == trip and st.chunks_since_trip == 0:
            self.report.add(Finding(
                kind="double-barrier", severity=SEV_WARNING,
                where=(st.label,),
                message=f"barrier tripped twice for threads "
                        f"{list(trip[1])} with no intervening work"))
        st.last_trip = trip
        st.chunks_since_trip = 0
        if "barrier" in self.drop_edges:
            return
        joined = VectorClock()
        for tid in tids:
            vc = st.clocks.get(tid)
            if vc is not None:
                joined.join(vc)
        for tid in tids:
            if tid in st.clocks:
                vc = joined.copy()
                vc.tick(st.comp(tid))
                st.clocks[tid] = vc

    def on_cond_fire(self, obj, tid: int | None) -> None:
        """A condition fired; waiters happen-after the firer."""
        st = self._loop
        if st is None or "cond" in self.drop_edges:
            return
        vc = st.clocks.get(tid)
        if vc is None:
            return
        o = st.objs.setdefault(id(obj), VectorClock())
        o.join(vc)
        vc.tick(st.comp(tid))

    def on_cond_wake(self, obj, tid: int | None) -> None:
        """A process resumed from a condition wait."""
        st = self._loop
        if st is None or "cond" in self.drop_edges:
            return
        vc = st.clocks.get(tid)
        o = st.objs.get(id(obj))
        if vc is not None and o is not None:
            vc.join(o)

    def on_kill(self, tid: int | None) -> None:
        """A simulated thread was killed (fault injection)."""
        if self._loop is None:
            return
        self.report.count("kills")

    # ----- resource events --------------------------------------------------

    def _acq_rel(self, obj, tid: int | None) -> None:
        """Acquire/release edge through a serialised sync object."""
        st = self._loop
        vc = None if st is None else st.clocks.get(tid)
        if vc is None:
            return
        self.report.count("sync_ops")
        o = st.objs.setdefault(id(obj), VectorClock())
        vc.join(o)
        st.objs[id(obj)] = vc.copy()
        vc.tick(st.comp(tid))

    def on_rmw(self, var, tid: int | None) -> None:
        """An atomic RMW completed (e.g. a chunk-counter fetch-and-add).

        Minting an edge here orders the *dispatches* through the shared
        counter while leaving the chunk *executions* concurrent — the
        execution epoch is ticked after the fetch, so it never enters
        the counter's clock until the thread's next fetch.
        """
        if "atomic" not in self.drop_edges:
            self._acq_rel(var, tid)

    def on_lock(self, lock, tid: int | None, start: float, done: float) -> None:
        """A ticket-lock critical section ``[start, done)`` was reserved."""
        st = self._loop
        if st is None or tid not in st.clocks:
            return
        label = getattr(lock, "label", "lock")
        held = st.holds.setdefault(tid, [])
        for other, o_start, o_done in held:
            if start < o_done and other != label:
                self._order_pair(other, label, st.label)
        held[:] = [h for h in held if h[2] > start]
        held.append((label, start, done))
        if "lock" not in self.drop_edges:
            self._acq_rel(lock, tid)

    def _order_pair(self, outer: str, inner: str, where: str) -> None:
        """Record a nested acquisition order; report cycles once."""
        if self._lock_pairs.setdefault((outer, inner), False):
            return
        if (inner, outer) in self._lock_pairs:
            for key in ((outer, inner), (inner, outer)):
                self._lock_pairs[key] = True
            self.report.add(Finding(
                kind="lock-order", severity=SEV_ERROR, where=(where,),
                message=f"locks '{outer}' and '{inner}' are nested in "
                        "opposite orders by different threads (deadlock "
                        "potential)"))

    # ----- runtime events ---------------------------------------------------

    def on_chunk(self, tid: int, lo: int, hi: int, start: float,
                 end: float) -> None:
        """Thread *tid* finished executing items ``[lo, hi)``."""
        st = self._loop
        vc = None if st is None else st.clocks.get(tid)
        if vc is None:
            return
        st.chunks.append(_ChunkRecord(
            loop=st.index, label=st.label, tid=tid, lo=lo, hi=hi,
            comp=st.comp(tid), snap=vc.copy(), access=st.access))
        vc.tick(st.comp(tid))
        st.chunks_since_trip += 1
        self.report.count("chunks")

    def on_tls(self, tid: int) -> None:
        """Thread *tid* initialised its thread-local scratch state."""
        st = self._loop
        vc = None if st is None else st.clocks.get(tid)
        if vc is not None:
            vc.tick(st.comp(tid))

    def on_deal(self, wid: int) -> None:
        """An initial range was dealt to *wid*'s deque at region entry."""
        st = self._loop
        if st is not None and wid in st.shadow:
            st.shadow[wid].append(None)  # None = the fork clock

    def on_push(self, wid: int) -> None:
        """Worker *wid* pushed a split-off range onto its own deque."""
        st = self._loop
        vc = None if st is None else st.clocks.get(wid)
        if vc is not None:
            st.shadow[wid].append(vc.copy())

    def on_pop(self, wid: int) -> None:
        """Worker *wid* popped the bottom of its own deque (no edge)."""
        st = self._loop
        if st is not None and st.shadow.get(wid):
            st.shadow[wid].pop()

    def on_steal(self, thief: int, victim: int) -> None:
        """*thief* stole the top of *victim*'s deque: edge from push time.

        A ``None`` snapshot marks an initially-dealt range (its push
        clock is the fork clock, which every worker already dominates).
        The stolen range enters the thief's real deque, so it enters the
        shadow deque too — carrying the thief's post-join clock, which
        dominates the original push snapshot.
        """
        st = self._loop
        if st is None:
            return
        self.report.count("steal_edges")
        snap = None
        if st.shadow.get(victim):
            snap = st.shadow[victim].popleft()
        vc = st.clocks.get(thief)
        if vc is None:
            return
        if "steal" not in self.drop_edges:
            if snap is not None:
                vc.join(snap)
            vc.tick(st.comp(thief))
        if thief in st.shadow:
            st.shadow[thief].append(vc.copy())

    # ----- analysis ---------------------------------------------------------

    def _tally_writes(self, st: _LoopState) -> None:
        """Fold declared writes on annotated arrays into the benign tallies."""
        acc = st.access
        if acc is None or not acc.benign:
            return
        for rec in st.chunks:
            for array, entries in rec.footprint().items():
                ann = acc.benign.get(array)
                if ann is None:
                    continue
                tally = self.report.tally(array)
                tally.reason = tally.reason or ann.reason
                tally.expected = tally.expected or ann.expect
                if ann.bound is not None:
                    tally.bound = ann.bound
                for kind, cells, _ in entries:
                    if kind == "write":
                        tally.writes += len(cells)

    def _detect(self, st: _LoopState) -> dict:
        """Find unordered chunk pairs with overlapping footprints.

        Returns ``{(is_benign, array, where_a, where_b): [cells, pairs]}``.
        Pairs are drawn from this region and from ``_carry`` — prior
        regions whose clocks the fork did not dominate (only non-empty
        when a join edge is missing, so the steady-state cost is the
        intra-region scan alone).
        """
        races: dict = {}
        chunks = [r for r in st.chunks if r.access is not None]
        for i, a in enumerate(chunks):
            for b in chunks[i + 1:]:
                self._check_pair(a, b, races)
            for b in self._carry:
                if b.access is not None:
                    self._check_pair(a, b, races)
        return races

    def _check_pair(self, a: _ChunkRecord, b: _ChunkRecord,
                    races: dict) -> None:
        """Race-test one chunk pair (skip if happens-before ordered)."""
        if ordered_before(a.snap, a.comp, b.snap) \
                or ordered_before(b.snap, b.comp, a.snap):
            return
        fa, fb = a.footprint(), b.footprint()
        for array in fa.keys() & fb.keys():
            # A benign_race annotation covers races *within* its own
            # parallel region (both endpoints must annotate the array);
            # cross-region concurrency is exactly the missing-join class
            # of bug, so it is never excused by an annotation.
            benign = (a.loop == b.loop
                      and a.access.benign.get(array) is not None
                      and b.access.benign.get(array) is not None)
            for kind_a, cells_a, guard_a in fa[array]:
                for kind_b, cells_b, guard_b in fb[array]:
                    if kind_a == "read" and kind_b == "read":
                        continue
                    if guard_a is not None and guard_a == guard_b:
                        continue  # lockset: same per-cell lock family
                    overlap = np.intersect1d(cells_a, cells_b,
                                             assume_unique=True)
                    if not len(overlap):
                        continue
                    key = (benign, array,
                           f"{a.label}#{a.loop}", f"{b.label}#{b.loop}")
                    agg = races.setdefault(key,
                                           [set(), 0, a.where(), b.where()])
                    agg[0].update(int(c) for c in overlap[:16])
                    agg[1] += 1

    def _emit(self, races: dict) -> None:
        """Convert aggregated race overlaps into findings and tallies.

        Races are aggregated per (array, loop pair) — one finding names
        the loops, the pair count, a sample chunk pair and sample cells,
        rather than one finding per racing chunk pair.
        """
        for key in sorted(races, key=lambda k: (k[0], k[1], k[2], k[3])):
            cells, pairs, where_a, where_b = races[key]
            benign, array, _, _ = key
            if benign:
                tally = self.report.tally(array)
                tally.pairs += pairs
                tally.cells += len(cells)
                if tally.bound is not None and array not in self._bound_flagged \
                        and tally.pairs > tally.bound * max(1, tally.writes):
                    self._bound_flagged.add(array)
                    self.report.add(Finding(
                        kind="benign-bound", severity=SEV_ERROR, array=array,
                        where=(where_a, where_b),
                        message=f"benign races on '{array}' exceed the "
                                f"declared bound ({tally.pairs} pairs > "
                                f"{tally.bound:g} x {tally.writes} writes)"))
            elif len(self.report.findings) < self.max_findings:
                self.report.add(Finding(
                    kind="race", severity=SEV_ERROR, array=array,
                    where=(where_a, where_b),
                    cells=tuple(sorted(cells)[:16]),
                    message=f"unsynchronized overlap on '{array}' between "
                            f"concurrent chunks ({pairs} pair(s))"))
