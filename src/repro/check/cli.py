"""``repro check`` — run the shipped kernels under the concurrency checker.

Replays the graph kernels on tiny built-in graphs (or a named suite
graph) through :class:`repro.check.Checker` and reports the findings::

    repro check                               # all kernels, all runtimes
    repro check --kernel coloring --runtime openmp --json report.json
    repro check --kernel coloring --runtime openmp --seed-bug drop-region-join

Exit status is 0 iff no error-severity finding was recorded (unannotated
race, benign-bound violation, lock-order cycle) — annotated benign races
are tallied, never suppressed, and never fail the run.  ``--seed-bug``
removes a class of happens-before edges so CI can prove the detector
actually depends on the synchronisation it models.

``--assert-unperturbed`` additionally runs every cell once *without* the
checker and fails unless the simulated cycle counts are byte-identical —
the zero-perturbation guarantee the observer design promises.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from dataclasses import replace

from repro.check.checker import DROP_EDGE_KINDS, Checker, checking
from repro.check.report import CheckReport

__all__ = ["main"]

KERNELS = ("coloring", "bfs", "irregular")
RUNTIMES = ("openmp", "cilk", "tbb")

#: Tiny graphs exercising distinct sharing shapes: dense adjacency
#: (every chunk pair overlaps), bounded-degree locality, and irregular
#: degree skew.  Small enough that the full all-pairs chunk analysis
#: stays instant, rich enough that every kernel's benign races appear.
TINY_GRAPHS = ("complete16", "grid8x6", "er120")


def _make_graph(name: str):
    """Materialise a tiny preset graph (or a suite graph by name)."""
    from repro.graph import generators as gen
    if name == "complete16":
        return gen.complete(16)
    if name == "grid8x6":
        return gen.grid2d(8, 6)
    if name == "er120":
        return gen.erdos_renyi(120, 480, seed=7)
    from repro.graph.suite import suite_graph
    return suite_graph(name)


def _runtime_spec(runtime: str, chunk: int):
    """The representative RuntimeSpec for one runtime family."""
    from repro.runtime.base import (Partitioner, ProgrammingModel,
                                    RuntimeSpec, Schedule)
    if runtime == "openmp":
        return RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                           chunk=chunk)
    if runtime == "cilk":
        return RuntimeSpec(ProgrammingModel.CILK, chunk=chunk)
    return RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE,
                       chunk=chunk)


def _run_cell(kernel: str, graph, spec, n_threads: int, config, seed: int):
    """Execute one (kernel, graph, runtime) cell; returns total cycles."""
    if kernel == "coloring":
        from repro.kernels.coloring.parallel import parallel_coloring
        run = parallel_coloring(graph, n_threads, spec=spec, config=config,
                                seed=seed)
    elif kernel == "bfs":
        from repro.kernels.bfs.layered import simulate_bfs
        variant = {"openmp": "openmp-block", "cilk": "cilk-bag",
                   "tbb": "tbb-block"}[_spec_family(spec)]
        run = simulate_bfs(graph, n_threads, variant=variant, config=config,
                           seed=seed)
    else:
        from repro.kernels.irregular import simulate_irregular
        run = simulate_irregular(graph, n_threads, iterations=2, spec=spec,
                                 config=config, seed=seed)
    return run.total_cycles


def _spec_family(spec) -> str:
    """Map a RuntimeSpec back to its runtime-family name."""
    from repro.runtime.base import ProgrammingModel
    return {ProgrammingModel.OPENMP: "openmp", ProgrammingModel.CILK: "cilk",
            ProgrammingModel.TBB: "tbb"}[spec.model]


def _merge(cells) -> CheckReport:
    """Fold per-cell reports into one.

    Each cell is an independent simulation, so each gets its own
    :class:`Checker` — sharing one would manufacture happens-before
    relations (or, with dropped edges, phantom races) between executions
    that never coexisted.  With more than one cell, findings and loop
    labels are prefixed with their ``kernel/runtime/graph`` cell id.
    """
    merged = CheckReport()
    multi = len(cells) > 1
    for tag, rep in cells:
        for f in rep.findings:
            merged.add(replace(f, message=f"[{tag}] {f.message}")
                       if multi else f)
        for arr, t in rep.benign.items():
            cur = merged.benign.get(arr)
            if cur is None:
                merged.benign[arr] = replace(t)
            else:
                cur.pairs += t.pairs
                cur.cells += t.cells
                cur.writes += t.writes
                cur.expected = cur.expected or t.expected
        for key, val in rep.counters.items():
            merged.count(key, val)
        merged.loops.extend(f"{tag}:{lbl}" if multi else lbl
                            for lbl in rep.loops)
    return merged


def main(argv=None) -> int:
    """Entry point for ``repro check`` (returns the exit code)."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Replay simulated kernel executions through the "
                    "happens-before concurrency checker.")
    parser.add_argument("--kernel", default="all",
                        choices=KERNELS + ("all",),
                        help="kernel family to check (default: all)")
    parser.add_argument("--runtime", default="all",
                        choices=RUNTIMES + ("all",),
                        help="runtime model to check (default: all)")
    parser.add_argument("--graph", default=None,
                        help="a single graph: one of the tiny presets "
                             f"{', '.join(TINY_GRAPHS)} or a suite graph "
                             "name (default: all tiny presets)")
    parser.add_argument("--threads", type=int, default=4,
                        help="simulated thread count (default: 4)")
    parser.add_argument("--chunk", type=int, default=8,
                        help="chunk/grain size (default: 8)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default: 1)")
    parser.add_argument("--seed-bug", default=None, metavar="KIND",
                        choices=sorted("drop-" + k for k in DROP_EDGE_KINDS),
                        help="drop a class of happens-before edges to seed "
                             "a synchronisation bug (the run should then "
                             "FAIL; used by CI to validate the detector)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full report as JSON ('-' = stdout)")
    parser.add_argument("--assert-unperturbed", action="store_true",
                        help="also run uninstrumented and fail unless the "
                             "simulated cycles are identical")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    from repro.machine.config import KNF
    config = KNF.with_(name="check-tiny", n_cores=max(2, args.threads // 2),
                       smt_per_core=2)

    kernels = KERNELS if args.kernel == "all" else (args.kernel,)
    runtimes = RUNTIMES if args.runtime == "all" else (args.runtime,)
    graph_names = (args.graph,) if args.graph else TINY_GRAPHS
    drop = frozenset({args.seed_bug[len("drop-"):]} if args.seed_bug else ())

    cells = []
    perturbed = []
    for gname in graph_names:
        graph = _make_graph(gname)
        for kernel in kernels:
            for runtime in runtimes:
                spec = _runtime_spec(runtime, args.chunk)
                checker = Checker(drop_edges=drop)
                with checking(checker):
                    cycles = _run_cell(kernel, graph, spec, args.threads,
                                       config, args.seed)
                cells.append((f"{kernel}/{runtime}/{gname}",
                              checker.finalize()))
                if not args.quiet:
                    print(f"  checked {kernel:9s} {runtime:7s} on "
                          f"{gname}: {cycles:.0f} simulated cycles",
                          file=sys.stderr)
                if args.assert_unperturbed:
                    perturbed.append(
                        (kernel, runtime, gname, cycles, spec))
    report = _merge(cells)

    if args.assert_unperturbed:
        for kernel, runtime, gname, cycles, spec in perturbed:
            graph = _make_graph(gname)
            bare = _run_cell(kernel, graph, spec, args.threads, config,
                             args.seed)
            if bare != cycles or not np.isfinite(bare):
                print(f"PERTURBATION: {kernel}/{runtime}/{gname} simulated "
                      f"{cycles:.6f} cycles checked vs {bare:.6f} bare",
                      file=sys.stderr)
                return 3
        if not args.quiet:
            print("  unperturbed: checked and bare cycle counts identical",
                  file=sys.stderr)

    if args.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            from repro._util import atomic_write_text
            atomic_write_text(args.json, text)
            print(f"[report written to {args.json}]", file=sys.stderr)
    if args.json != "-":
        print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
