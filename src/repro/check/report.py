"""Structured findings and the per-run report (``repro.check``).

A :class:`Finding` is one detected anomaly; a :class:`CheckReport`
aggregates findings plus the benign-race tallies and coverage counters
of a whole checked run.  Reports serialise to plain dicts (``repro check
--json``) and format as a human-readable summary (the CLI default).

Severity model:

* ``error`` — an unannotated data race, a benign-race bound violation,
  or a lock-order cycle: the run's sharing discipline does not match its
  declared synchronisation.  ``repro check`` exits non-zero.
* ``warning`` — suspicious but not provably wrong (an expected benign
  race that never materialised, a redundant double barrier).
* ``info`` — diagnostic notes (killed threads observed, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "BenignTally", "CheckReport",
           "SEV_ERROR", "SEV_WARNING", "SEV_INFO"]

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

_SEV_ORDER = {SEV_ERROR: 0, SEV_WARNING: 1, SEV_INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One checker anomaly.

    ``kind`` is a stable machine-readable tag (``race``,
    ``benign-bound``, ``benign-missing``, ``lock-order``,
    ``double-barrier``); ``where`` names the loop(s) involved; ``cells``
    carries a bounded sample of the conflicting array cells.
    """

    kind: str
    severity: str
    message: str
    array: str = ""
    where: tuple = ()
    cells: tuple = ()

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"kind": self.kind, "severity": self.severity,
                "message": self.message, "array": self.array,
                "where": list(self.where), "cells": list(self.cells)}

    def format(self) -> str:
        """One-line human-readable rendering."""
        loc = f" [{' vs '.join(self.where)}]" if self.where else ""
        arr = f" array={self.array}" if self.array else ""
        cells = (f" cells={list(self.cells[:6])}"
                 + ("..." if len(self.cells) > 6 else "")) if self.cells else ""
        return f"{self.severity.upper():7s} {self.kind}:{loc}{arr} " \
               f"{self.message}{cells}"


@dataclass
class BenignTally:
    """Accounting for one ``benign_race``-annotated array."""

    array: str
    reason: str = ""
    pairs: int = 0          # racing chunk pairs observed
    cells: int = 0          # racing cells across all pairs (with multiplicity)
    writes: int = 0         # write accesses declared on the array
    expected: bool = False  # annotation asserted the race must appear
    bound: float | None = None  # max racing pairs per declared write

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"array": self.array, "reason": self.reason,
                "pairs": self.pairs, "cells": self.cells,
                "writes": self.writes, "expected": self.expected,
                "bound": self.bound}


@dataclass
class CheckReport:
    """Aggregate result of one checked run."""

    findings: list = field(default_factory=list)
    benign: dict = field(default_factory=dict)  # array -> BenignTally
    counters: dict = field(default_factory=dict)
    loops: list = field(default_factory=list)   # labels, in execution order

    @property
    def ok(self) -> bool:
        """True iff no error-severity finding was recorded."""
        return not any(f.severity == SEV_ERROR for f in self.findings)

    @property
    def errors(self) -> list:
        """The error-severity findings."""
        return [f for f in self.findings if f.severity == SEV_ERROR]

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a coverage counter (loops, chunks, barriers, ...)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add(self, finding: Finding) -> None:
        """Record one finding."""
        self.findings.append(finding)

    def tally(self, array: str) -> BenignTally:
        """The benign tally for *array*, created on first use."""
        t = self.benign.get(array)
        if t is None:
            t = self.benign[array] = BenignTally(array)
        return t

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole report."""
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "benign": {k: v.to_dict() for k, v in sorted(self.benign.items())},
            "counters": dict(sorted(self.counters.items())),
            "loops": list(self.loops),
        }

    def format(self) -> str:
        """Multi-line human-readable summary."""
        lines = []
        ordered = sorted(self.findings,
                         key=lambda f: _SEV_ORDER.get(f.severity, 9))
        for f in ordered:
            lines.append(f.format())
        for name in sorted(self.benign):
            t = self.benign[name]
            mark = " (expected)" if t.expected else ""
            lines.append(f"BENIGN  {name}: {t.pairs} racing pair(s) over "
                         f"{t.writes} write(s){mark} — {t.reason or 'annotated'}")
        c = self.counters
        lines.append(f"checked {c.get('loops', 0)} loop(s), "
                     f"{c.get('chunks', 0)} chunk(s), "
                     f"{c.get('barrier_trips', 0)} barrier trip(s), "
                     f"{c.get('sync_ops', 0)} sync op(s): "
                     f"{len(self.errors)} error(s), "
                     f"{len(self.findings) - len(self.errors)} note(s)")
        return "\n".join(lines)
