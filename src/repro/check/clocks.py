"""Vector clocks for the happens-before analysis (``repro.check``).

A :class:`VectorClock` maps a *component id* — a simulated software
thread id, by convention — to a monotonically increasing epoch counter.
The checker maintains one clock per simulated thread plus one per
synchronisation object; happens-before edges are minted by joining
clocks at synchronisation events (DESIGN.md "Correctness checking").

The representation is a plain dict so clocks stay sparse: a run with 121
threads where only 4 ever synchronise keeps 4-entry clocks.  Missing
components read as epoch 0.
"""

from __future__ import annotations

__all__ = ["VectorClock", "ordered_before"]


class VectorClock:
    """A sparse vector clock over integer component ids."""

    __slots__ = ("c",)

    def __init__(self, c: dict | None = None):
        self.c = dict(c) if c else {}

    def copy(self) -> "VectorClock":
        """An independent snapshot of this clock."""
        return VectorClock(self.c)

    def get(self, comp: int) -> int:
        """Epoch of *comp* (0 when the component was never ticked)."""
        return self.c.get(comp, 0)

    def tick(self, comp: int) -> None:
        """Advance *comp*'s epoch: subsequent events on that component
        happen-after everything recorded so far."""
        self.c[comp] = self.c.get(comp, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place component-wise maximum (the happens-before merge)."""
        mine = self.c
        for comp, epoch in other.c.items():
            if epoch > mine.get(comp, 0):
                mine[comp] = epoch

    def dominates(self, other: "VectorClock") -> bool:
        """True iff this clock is >= *other* on every component."""
        mine = self.c
        return all(mine.get(comp, 0) >= epoch
                   for comp, epoch in other.c.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ",".join(f"{k}:{v}" for k, v in sorted(self.c.items()))
        return f"VC({inner})"


def ordered_before(snap_a: VectorClock, comp_a: int,
                   snap_b: VectorClock) -> bool:
    """True iff the event snapshotted as ``(snap_a, comp_a)`` happens-before
    the event snapshotted as *snap_b*.

    Events snapshot the owning component's clock *before* ticking it, so
    anything causally after event A carries ``comp_a`` at an epoch
    strictly greater than A's snapshot value.
    """
    return snap_b.get(comp_a) > snap_a.get(comp_a)
