"""Dynamic concurrency checking for simulated executions.

``repro.check`` replays a simulated run through shadow state — vector
clocks per simulated thread, with happens-before edges minted by the
engine's synchronisation primitives and the runtimes' scheduling
decisions — and intersects the declared per-chunk memory footprints
(:class:`repro.kernels.base.AccessSet`) of concurrent chunks to detect
unsynchronized sharing.  Like :mod:`repro.obs`, it is a pure observer:
off by default, and perturbing zero simulated cycles when on.

Typical use::

    from repro import check

    with check.checking() as checker:
        run = simulate_coloring(graph, variant, n_threads, machine)
    report = checker.finalize()
    assert report.ok, report.format()

or from the shell: ``repro check --kernel coloring --runtime openmp``.
"""

from repro.check.checker import (DROP_EDGE_KINDS, Checker, active, checking,
                                 install, uninstall)
from repro.check.clocks import VectorClock, ordered_before
from repro.check.report import (SEV_ERROR, SEV_INFO, SEV_WARNING, BenignTally,
                                CheckReport, Finding)

__all__ = [
    "Checker", "active", "install", "uninstall", "checking",
    "DROP_EDGE_KINDS",
    "VectorClock", "ordered_before",
    "Finding", "BenignTally", "CheckReport",
    "SEV_ERROR", "SEV_WARNING", "SEV_INFO",
]
