"""Small shared helpers: seeded RNG construction, argument validation,
crash-safe file writes, canonical hashing, and the validated environment
parsers.

Every ``REPRO_*`` environment variable in the codebase is read through
one of the ``env_*`` parsers below (``env_float``, ``env_int``,
``env_bool``, ``env_str``, ``env_csv``).  This is enforced statically by
the ``env-raw-read`` rule of :mod:`repro.lint`: a raw ``os.environ``
read of a ``REPRO_*`` name anywhere else fails ``repro lint``.  The
parsers validate eagerly and raise :class:`ValueError` naming the
variable — a silently-ignored typo in an override would corrupt every
result derived from it — and give the lint pass a single choke point
from which to build the env-var registry behind ``ENV.md``.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
from numpy.typing import NDArray

__all__ = ["rng_from_seed", "check_positive", "check_nonnegative",
           "as_int_array", "atomic_write_text", "canonical_json",
           "sha256_hex", "content_checksum", "backoff_delay", "env_float",
           "env_int", "env_bool", "env_str", "env_csv"]


def canonical_json(obj: object) -> str:
    """Canonical JSON text for *obj*: sorted keys, compact separators.

    Two structurally equal dicts always render to the same bytes, which
    is what makes content-addressed keys (campaign result store,
    deterministic cell IDs) stable across processes and sessions.
    Non-finite floats are rejected — a NaN in a spec would silently
    produce a key nothing can ever look up again.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def sha256_hex(data: str | bytes) -> str:
    """Hex SHA-256 of *data* (text is hashed as its UTF-8 bytes).

    Accepting raw bytes matters for file-content hashing: decoding
    arbitrary source bytes as UTF-8 first would crash on any non-UTF-8
    file and change the digest of anything not byte-identical to its
    decoded-and-re-encoded form.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def content_checksum(obj: object) -> str:
    """Short (16-hex) SHA-256 over the canonical JSON of *obj*.

    The shared integrity checksum for persisted records: store objects
    and journal lines both embed ``content_checksum(<record without its
    checksum field>)`` so a truncated or bit-flipped file is detected on
    read instead of silently feeding bad data into a report.
    """
    return sha256_hex(canonical_json(obj))[:16]


def backoff_delay(token: str, attempt: int, base: float = 0.05,
                  cap: float = 2.0) -> float:
    """Seeded exponential-backoff delay (seconds) with jitter.

    ``attempt`` is 1-based (the delay before retry *attempt*).  The
    jitter in ``[1.0, 2.0)`` is drawn from a Generator seeded by
    ``(token, attempt)`` — no wall-clock entropy, so a replayed schedule
    produces the identical delay sequence (and the determinism lint has
    nothing to flag).  The result is capped at *cap*.
    """
    check_nonnegative("base", base)
    check_positive("cap", cap)
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    seed = int(sha256_hex(f"backoff:{token}:{attempt}")[:16], 16)
    jitter = 1.0 + float(np.random.default_rng(seed).random())
    return min(cap, base * (2.0 ** (attempt - 1)) * jitter)


def atomic_write_text(path: str | os.PathLike[str], text: str) -> None:
    """Write *text* to *path* atomically (tmp file + ``os.replace``).

    Used for every persisted artifact (checkpoints, metrics dumps,
    traces) so a crash mid-write never leaves a corrupt file behind.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def rng_from_seed(
        seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (non-deterministic), an ``int``, or an existing
    ``Generator`` (returned unchanged so callers can thread RNG state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _env_raw(name: str) -> str | None:
    """The stripped value of *name*; None when unset or blank.

    Unset, empty, and whitespace-only all mean "use the default" — a
    stray ``VAR=" "`` in a shell script must not differ from ``VAR=""``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw if raw else None


def env_float(name: str, default: float | None = None,
              lo: float | None = None,
              hi: float | None = None) -> float | None:
    """A float from environment variable *name*, range-validated.

    Returns *default* when the variable is unset or empty.  A value that
    does not parse as a float or falls outside ``[lo, hi]`` raises
    :class:`ValueError` naming the variable.
    """
    raw = _env_raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a float, got {raw!r}") from None
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {raw!r}")
    if lo is not None and value < lo:
        raise ValueError(f"{name} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise ValueError(f"{name} must be <= {hi}, got {value}")
    return value


def env_int(name: str, default: int | None = None, lo: int | None = None,
            hi: int | None = None) -> int | None:
    """An integer from environment variable *name*, range-validated.

    Returns *default* when the variable is unset or empty; rejects
    non-integer text and out-of-range values with a :class:`ValueError`
    naming the variable (``int()`` tracebacks are opaque).
    """
    raw = _env_raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer") from None
    if lo is not None and value < lo:
        raise ValueError(f"{name} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise ValueError(f"{name} must be <= {hi}, got {value}")
    return value


#: Accepted spellings for :func:`env_bool`.  Anything else is rejected:
#: ``REPRO_FAST=fa1se`` silently meaning "on" (the old truthy-string
#: behaviour) is exactly the kind of typo the parsers exist to catch.
_TRUE_TOKENS = frozenset({"1", "true", "yes", "on"})
_FALSE_TOKENS = frozenset({"0", "false", "no", "off"})


def env_bool(name: str, default: bool = False) -> bool:
    """A boolean flag from environment variable *name*.

    Unset or empty returns *default*; ``1/true/yes/on`` (any case) is
    True, ``0/false/no/off`` is False, anything else raises
    :class:`ValueError` naming the variable.
    """
    raw = _env_raw(name)
    if raw is None:
        return default
    token = raw.lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    raise ValueError(f"{name} must be a boolean "
                     f"(1/0/true/false/yes/no/on/off), got {raw!r}")


def env_str(name: str, default: str | None = None) -> str | None:
    """A string from environment variable *name*.

    Unset or empty returns *default* — callers that treat "set to the
    empty string" as "unset" (checkpoint paths, store roots) get that
    normalisation in one place.
    """
    raw = _env_raw(name)
    if raw is None:
        return default
    return raw


def env_csv(name: str) -> list[str] | None:
    """Comma-separated env list → stripped tokens (None when unset/empty).

    The one shared parser behind ``REPRO_GRAPHS`` / ``REPRO_THREADS`` —
    blanks between commas are dropped.  Unset, empty, and whitespace-only
    values mean "unset" (None → caller default), but a value that spells
    out separators with no tokens (``" , ,"``) is an *explicit empty
    list* (``[]``) so callers can reject it loudly instead of silently
    sweeping their default.
    """
    env = _env_raw(name)
    if env is None:
        return None
    return [token.strip() for token in env.split(",") if token.strip()]


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def as_int_array(values: object,
                 name: str = "values") -> NDArray[np.int64]:
    """Coerce *values* to a 1-D int64 array, validating shape."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr
