"""Small shared helpers: seeded RNG construction, argument validation,
crash-safe file writes, and canonical hashing."""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

__all__ = ["rng_from_seed", "check_positive", "check_nonnegative",
           "as_int_array", "atomic_write_text", "canonical_json",
           "sha256_hex", "env_float"]


def canonical_json(obj) -> str:
    """Canonical JSON text for *obj*: sorted keys, compact separators.

    Two structurally equal dicts always render to the same bytes, which
    is what makes content-addressed keys (campaign result store,
    deterministic cell IDs) stable across processes and sessions.
    Non-finite floats are rejected — a NaN in a spec would silently
    produce a key nothing can ever look up again.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def sha256_hex(text: str) -> str:
    """Hex SHA-256 of *text* (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write *text* to *path* atomically (tmp file + ``os.replace``).

    Used for every persisted artifact (checkpoints, metrics dumps,
    traces) so a crash mid-write never leaves a corrupt file behind.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def rng_from_seed(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (non-deterministic), an ``int``, or an existing
    ``Generator`` (returned unchanged so callers can thread RNG state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def env_float(name: str, default: float, lo: float | None = None,
              hi: float | None = None) -> float:
    """A float from environment variable *name*, range-validated.

    Returns *default* when the variable is unset or empty.  A value that
    does not parse as a float or falls outside ``[lo, hi]`` raises
    :class:`ValueError` naming the variable — a silently-ignored typo in
    a calibration override would corrupt every result derived from it.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a float, got {raw!r}") from None
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {raw!r}")
    if lo is not None and value < lo:
        raise ValueError(f"{name} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise ValueError(f"{name} must be <= {hi}, got {value}")
    return value


def check_positive(name: str, value) -> None:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Raise :class:`ValueError` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def as_int_array(values, name: str = "values") -> np.ndarray:
    """Coerce *values* to a 1-D int64 array, validating shape."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr
