"""Bounded-memory external CSR builder for streaming graph generation.

:meth:`CSRGraph.from_edges` materialises every intermediate at full
size: the ``(m, 2)`` int64 edge array, the symmetrised ``2m`` source and
destination copies, the lexsort permutation, and the dedupe mask —
roughly ``56 bytes x 2|E|`` of peak RSS on top of the final CSR.  That
caps generation at "laptop scale".  This builder accepts edges in
blocks and produces the *identical* graph (same drop-self-loops /
symmetrise / per-row sort / dedupe semantics) while holding only
O(n_vertices) counters plus O(block) temporaries in RAM; the bulk data
lives in temporary files:

1. **Ingest** — each ``add_edges`` block is symmetrised, appended to a
   spill file as interleaved ``(src, dst)`` int32 pairs, and counted
   into a per-vertex raw-degree array.
2. **Scatter** — raw degrees prefix-sum into provisional row offsets; a
   second pass over the spill scatters every destination into its row's
   slice of a writable scratch memmap (a cursor array tracks fill).
3. **Compact** — rows are processed in bounded chunks: sort + dedupe
   each row, stream the surviving entries to the final indices file,
   then cumulative-sum the deduped degrees into the final ``indptr``.

:meth:`finalize` maps the result read-only and unlinks the backing file
(POSIX keeps the data alive until the mapping drops), so the returned
:class:`~repro.graph.csr.CSRGraph` owns its storage with no path to
clean up and never holds the indices in the Python heap.
"""

from __future__ import annotations

import mmap
import os
import tempfile

import numpy as np
import numpy.typing as npt

from repro._util import env_int
from repro.graph.csr import CSRGraph

__all__ = ["StreamingCSRBuilder", "DEFAULT_BLOCK_EDGES"]

#: Directed entries processed per block (``REPRO_GRAPH_BLOCK`` overrides).
DEFAULT_BLOCK_EDGES = 1 << 20


def default_block_edges() -> int:
    """Block granularity from ``REPRO_GRAPH_BLOCK`` (entries per block)."""
    value = env_int("REPRO_GRAPH_BLOCK", DEFAULT_BLOCK_EDGES, lo=1024)
    assert value is not None
    return value


class StreamingCSRBuilder:
    """Accumulate edges block-wise; finalize into a mmap-backed CSR graph.

    Vertex IDs must fit int32 (n < 2**31 — far above the 10⁷ target).
    A builder is single-use: :meth:`finalize` may be called once.
    """

    def __init__(self, n_vertices: int, block_edges: int | None = None,
                 workdir: str | None = None):
        if n_vertices < 0:
            raise ValueError(f"n_vertices must be >= 0, got {n_vertices}")
        if n_vertices >= 2 ** 31:
            raise ValueError(f"n_vertices {n_vertices} exceeds int32 range")
        self.n_vertices = int(n_vertices)
        self.block_edges = int(block_edges if block_edges is not None
                               else default_block_edges())
        if self.block_edges < 2:
            raise ValueError(f"block_edges must be >= 2, got {block_edges}")
        self._workdir = workdir
        self._raw_degrees = np.zeros(self.n_vertices, dtype=np.int64)
        self._spill = None  # lazy: empty graphs never touch disk
        self._pending: list[np.ndarray] = []
        self._pending_rows = 0
        self._n_raw = 0
        self._finalized = False

    # ----- ingest ----------------------------------------------------------

    def add_edges(self, u: "npt.ArrayLike", v: "npt.ArrayLike") -> None:
        """Add undirected edges ``{u[i], v[i]}``; self-loops are dropped."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        src = np.asarray(u, dtype=np.int64).ravel()
        dst = np.asarray(v, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError(
                f"u/v length mismatch: {src.shape} vs {dst.shape}")
        if src.size == 0:
            return
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= self.n_vertices:
            raise ValueError("edge endpoint out of range")
        keep = src != dst
        if not keep.all():
            src, dst = src[keep], dst[keep]
        if src.size == 0:
            return
        both = np.empty((2 * src.size, 2), dtype=np.int32)
        both[:src.size, 0] = src
        both[:src.size, 1] = dst
        both[src.size:, 0] = dst
        both[src.size:, 1] = src
        self._pending.append(both)
        self._pending_rows += len(both)
        if self._pending_rows >= self.block_edges:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        data = (self._pending[0] if len(self._pending) == 1
                else np.concatenate(self._pending))
        self._pending = []
        self._pending_rows = 0
        self._raw_degrees += np.bincount(data[:, 0],
                                         minlength=self.n_vertices)
        if self._spill is None:
            self._spill = tempfile.TemporaryFile(dir=self._workdir)
        self._spill.write(memoryview(data))
        self._n_raw += len(data)

    # ----- finalize --------------------------------------------------------

    def finalize(self, name: str = "graph") -> CSRGraph:
        """Scatter, sort, dedupe; return the finished mmap-backed graph."""
        if self._finalized:
            raise RuntimeError("builder already finalized")
        self._flush()
        self._finalized = True
        n = self.n_vertices
        raw_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._raw_degrees, out=raw_offsets[1:])
        try:
            scratch = self._scatter(raw_offsets)
            try:
                indptr, indices = self._compact(raw_offsets, scratch)
            finally:
                if scratch is not None:
                    base = scratch.base
                    del scratch
                    if isinstance(base, mmap.mmap):
                        base.close()
        finally:
            if self._spill is not None:
                self._spill.close()
                self._spill = None
            self._raw_degrees = np.zeros(0, dtype=np.int64)
        return CSRGraph.from_validated_arrays(indptr, indices, name=name)

    def _scatter(self, raw_offsets: np.ndarray) -> np.ndarray | None:
        """Pass 2: place every spilled entry into its row's scratch slice."""
        total = self._n_raw
        if total == 0:
            return None
        assert self._spill is not None
        fd, path = tempfile.mkstemp(dir=self._workdir, suffix=".scatter")
        try:
            os.ftruncate(fd, total * 4)
            mapped = mmap.mmap(fd, total * 4, access=mmap.ACCESS_WRITE)
        finally:
            os.close(fd)
            os.unlink(path)  # mapping keeps the blocks alive
        scratch = np.frombuffer(mapped, dtype=np.int32, count=total)
        # np.frombuffer of a writable mmap still yields a read-only view.
        scratch.flags.writeable = True
        cursor = raw_offsets[:-1].copy()
        self._spill.seek(0)
        chunk_bytes = self.block_edges * 8  # one (src, dst) int32 pair each
        while True:
            buf = self._spill.read(chunk_bytes)
            if not buf:
                break
            pairs = np.frombuffer(buf, dtype=np.int32).reshape(-1, 2)
            src = pairs[:, 0].astype(np.int64)
            dst = pairs[:, 1]
            order = np.argsort(src, kind="stable")
            src_sorted = src[order]
            rows, first, counts = np.unique(src_sorted, return_index=True,
                                            return_counts=True)
            rank = (np.arange(len(src_sorted), dtype=np.int64)
                    - np.repeat(first, counts))
            scratch[cursor[src_sorted] + rank] = dst[order]
            cursor[rows] += counts
        return scratch

    def _compact(self, raw_offsets: np.ndarray,
                 scratch: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
        """Pass 3: per-row sort + dedupe, streamed to the final file."""
        n = self.n_vertices
        degrees = np.zeros(n, dtype=np.int64)
        fd, path = tempfile.mkstemp(dir=self._workdir, suffix=".indices")
        out = os.fdopen(fd, "wb")
        try:
            if scratch is not None:
                v0 = 0
                while v0 < n:
                    # Advance until the chunk holds ~block raw entries
                    # (always at least one row, so a single huge row still
                    # fits — bounded by the max raw degree, not |E|).
                    target = raw_offsets[v0] + self.block_edges
                    v1 = int(np.searchsorted(raw_offsets, target,
                                             side="left"))
                    v1 = max(v0 + 1, min(v1, n))
                    seg = np.array(
                        scratch[raw_offsets[v0]:raw_offsets[v1]])
                    if seg.size:
                        rows = np.repeat(
                            np.arange(v0, v1, dtype=np.int64),
                            np.diff(raw_offsets[v0:v1 + 1]))
                        order = np.lexsort((seg, rows))
                        rows_sorted = rows[order]
                        seg_sorted = seg[order]
                        uniq = np.empty(len(seg_sorted), dtype=bool)
                        uniq[0] = True
                        np.logical_or(rows_sorted[1:] != rows_sorted[:-1],
                                      seg_sorted[1:] != seg_sorted[:-1],
                                      out=uniq[1:])
                        rows_uniq = rows_sorted[uniq]
                        seg_uniq = np.ascontiguousarray(seg_sorted[uniq])
                        degrees[v0:v1] = np.bincount(rows_uniq - v0,
                                                     minlength=v1 - v0)
                        out.write(memoryview(seg_uniq))
                    v0 = v1
            out.flush()
            size = out.tell()
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            assert indptr[-1] * 4 == size
            if size == 0:
                indices = np.empty(0, dtype=np.int32)
            else:
                mapped = mmap.mmap(out.fileno(), size,
                                   access=mmap.ACCESS_READ)
                indices = np.frombuffer(mapped, dtype=np.int32,
                                        count=int(indptr[-1]))
        finally:
            out.close()
            os.unlink(path)
        return indptr, indices
