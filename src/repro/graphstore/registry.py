"""Named graph registry: build once, then mmap forever.

``GraphRegistry`` maps registry names (:mod:`repro.graphstore.names`)
to ``.rgr`` files under ``<root>/objects/``, keyed by the generator
parameter fingerprint::

    <root>/objects/<slug>-<fingerprint>.rgr     e.g. objects/tube-1m-ab12....rgr
    <root>/quarantine/                          corrupt files, kept as evidence

``get(name)`` is the hot path: an in-process handle cache first, then a
zero-copy mmap load, and only on a true miss a streaming build + atomic
save.  A file that fails its load-time guards is moved to
``quarantine/`` and rebuilt — same semantics as the campaign
:class:`~repro.campaign.store.ResultStore`, which this registry's
``ls``/``verify``/``gc`` maintenance surface mirrors.  Hits and misses
are counted on ``stats`` and, when telemetry is collecting, on the
``graphstore.hits`` / ``graphstore.misses`` obs counters.

Library code only uses the registry when ``REPRO_GRAPH_DIR`` is set
(:func:`registry_from_env` returns None otherwise), so plain unit-test
runs never touch ``~/.cache``; the ``repro graphs`` CLI defaults to
:data:`DEFAULT_GRAPH_DIR`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro._util import env_str
from repro.graph.csr import CSRGraph
from repro.graphstore.format import (RGRError, load_graph, read_header,
                                     save_graph, verify_file)
from repro.graphstore.names import GraphSpec, parse_graph_name
from repro.obs import metrics as _metrics

__all__ = ["GraphRegistry", "GraphStoreStats", "GraphEntry",
           "GraphVerifyReport", "DEFAULT_GRAPH_DIR", "default_graph_dir",
           "registry_from_env"]

#: CLI fallback when ``REPRO_GRAPH_DIR`` names no registry root.
DEFAULT_GRAPH_DIR = "~/.cache/repro/graphs"


def default_graph_dir() -> str | None:
    """Registry root from ``REPRO_GRAPH_DIR`` (None = registry disabled)."""
    return env_str("REPRO_GRAPH_DIR")


_ACTIVE: dict[str, "GraphRegistry"] = {}


def registry_from_env() -> "GraphRegistry | None":
    """The process-wide registry for ``$REPRO_GRAPH_DIR``, or None.

    One instance per root, so every caller in the process (suite,
    campaign workers, serve dispatch batches) shares the same mmap
    handles and hit/miss stats.
    """
    root = default_graph_dir()
    if root is None:
        return None
    registry = _ACTIVE.get(root)
    if registry is None:
        registry = _ACTIVE[root] = GraphRegistry(root)
    return registry


@dataclass
class GraphStoreStats:
    """Hit/miss accounting for one :class:`GraphRegistry` instance."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    corrupt: int = 0
    quarantined: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "corrupt": self.corrupt,
                "quarantined": self.quarantined}


@dataclass
class GraphEntry:
    """One ``.rgr`` file's metadata (``ls``/``gc`` surface)."""

    name: str
    path: str
    fingerprint: str
    n_vertices: int
    n_directed_entries: int
    size_bytes: int
    age_seconds: float
    current: bool = field(default=False)


@dataclass
class GraphVerifyReport:
    """Outcome of one :meth:`GraphRegistry.verify` audit."""

    checked: int = 0
    ok: int = 0
    corrupt: list = field(default_factory=list)      # paths still in place
    quarantined: list = field(default_factory=list)  # paths moved away

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.quarantined


class GraphRegistry:
    """Build-once-then-mmap store of named graphs under *root*."""

    def __init__(self, root: str | os.PathLike | None = None):
        root = root or default_graph_dir() or DEFAULT_GRAPH_DIR
        self.root = os.path.expanduser(os.fspath(root))
        self.stats = GraphStoreStats()
        self._graphs: dict[str, CSRGraph] = {}

    # ----- keys and paths --------------------------------------------------

    def path_for(self, name: str) -> str:
        """On-disk path the named graph maps to (whether or not built)."""
        return self._path(parse_graph_name(name))

    def _path(self, spec: GraphSpec) -> str:
        slug = spec.name.replace(":", "-").replace("/", "-")
        return os.path.join(self.root, "objects",
                            f"{slug}-{spec.fingerprint()}.rgr")

    def _quarantine(self, path: str) -> str | None:
        """Move a corrupt file out of the reachable tree; returns the
        quarantine path (None when the move itself failed)."""
        target = os.path.join(self.root, "quarantine",
                              os.path.basename(path))
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(path, target)
        except OSError:
            return None
        self.stats.quarantined += 1
        return target

    def _count(self, which: str) -> None:
        registry = _metrics.active()
        if registry is not None:
            registry.incr(f"graphstore.{which}")

    # ----- hot path --------------------------------------------------------

    def get(self, name: str) -> CSRGraph:
        """The named graph: cached handle, mmap load, or build-and-save.

        A file that fails its load-time integrity guards is quarantined
        and the graph rebuilt — a corrupt entry can cost a rebuild but
        never poisons a result.
        """
        spec = parse_graph_name(name)
        cached = self._graphs.get(spec.name)
        if cached is not None:
            self.stats.hits += 1
            self._count("hits")
            return cached
        path = self._path(spec)
        graph: CSRGraph | None = None
        hit = False
        if os.path.exists(path):
            try:
                graph = load_graph(path)
                hit = True
            except RGRError:
                self.stats.corrupt += 1
                self._quarantine(path)
        if graph is None:
            graph = self._build_and_save(spec, path)
        self._graphs[spec.name] = graph
        if hit:
            self.stats.hits += 1
            self._count("hits")
        else:
            self.stats.misses += 1
            self._count("misses")
        return graph

    def _build_and_save(self, spec: GraphSpec, path: str) -> CSRGraph:
        """Streaming-build *spec*, persist it, and return the mmap copy.

        Returning the freshly-loaded mmap (not the builder's arrays)
        releases the builder's unlinked scratch file immediately and
        gives cold and warm callers identical storage behaviour.
        """
        self.stats.builds += 1
        built = spec.build()
        save_graph(path, built)
        del built
        return load_graph(path)

    def contains(self, name: str) -> bool:
        """Whether a current-fingerprint file exists (stats untouched)."""
        return os.path.exists(self.path_for(name))

    def build(self, name: str, force: bool = False) -> tuple[str, bool]:
        """Ensure the named graph exists on disk; ``(path, built)``.

        With *force* the graph is regenerated even when a current file
        exists (e.g. after quarantining by hand).
        """
        spec = parse_graph_name(name)
        path = self._path(spec)
        if not force and os.path.exists(path):
            try:
                read_header(path)
                return path, False
            except RGRError:
                self.stats.corrupt += 1
                self._quarantine(path)
        graph = self._build_and_save(spec, path)
        self._graphs[spec.name] = graph
        return path, True

    # ----- maintenance surface (ls / verify / gc / clear) ------------------

    def _object_paths(self) -> list[str]:
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return []
        return [os.path.join(objects, fn)
                for fn in sorted(os.listdir(objects))
                if fn.endswith(".rgr")]

    def count_objects(self) -> int:
        """Graph-file count — listdir only, cheap enough for health polls."""
        return len(self._object_paths())

    def entries(self) -> list[GraphEntry]:
        """Every readable graph file, sorted by path.

        ``current`` means the file's fingerprint (from its filename)
        matches what the registry name in its header hashes to *today* —
        a stale entry is unreachable by any ``get`` and eligible for
        :meth:`gc`.
        """
        out = []
        now = time.time()
        for path in self._object_paths():
            try:
                header = read_header(path)
            except RGRError:
                continue
            stem = os.path.basename(path)[:-len(".rgr")]
            fingerprint = stem.rsplit("-", 1)[-1]
            try:
                current = (parse_graph_name(header.name).fingerprint()
                           == fingerprint)
            except ValueError:
                current = False
            stat = os.stat(path)
            out.append(GraphEntry(
                name=header.name, path=path, fingerprint=fingerprint,
                n_vertices=header.n_vertices,
                n_directed_entries=header.n_indices,
                size_bytes=stat.st_size,
                age_seconds=max(0.0, now - stat.st_mtime),
                current=current))
        return out

    def verify(self, repair: bool = False) -> GraphVerifyReport:
        """Audit every file: header guards plus full payload re-hash.

        This is the pass that catches payload bit-rot (loads only check
        the O(1) header guards).  With *repair* corrupt files are moved
        to ``quarantine/``; without it they are only reported.
        """
        report = GraphVerifyReport()
        for path in self._object_paths():
            report.checked += 1
            try:
                verify_file(path)
                report.ok += 1
            except RGRError:
                self.stats.corrupt += 1
                if repair and self._quarantine(path) is not None:
                    report.quarantined.append(path)
                else:
                    report.corrupt.append(path)
        return report

    def _remove_object(self, path: str) -> None:
        """Delete one graph file — never anything outside ``objects/``
        (quarantined files are evidence and are kept)."""
        objects = os.path.realpath(os.path.join(self.root, "objects"))
        if os.path.commonpath([objects,
                               os.path.realpath(path)]) != objects:
            raise ValueError(f"refusing to delete {path!r}: outside the "
                             f"registry's objects/ tree")
        os.remove(path)

    def gc(self) -> tuple[int, int]:
        """Remove stale-fingerprint graph files; returns ``(removed, kept)``."""
        removed = kept = 0
        for entry in self.entries():
            if entry.current:
                kept += 1
            else:
                self._remove_object(entry.path)
                removed += 1
        return removed, kept

    def clear(self) -> int:
        """Remove every graph file (quarantine/ survives, like the
        campaign store's ``cache clear``)."""
        removed = 0
        for path in self._object_paths():
            self._remove_object(path)
            removed += 1
        self._graphs.clear()
        return removed

    def __len__(self) -> int:
        return len(self.entries())
