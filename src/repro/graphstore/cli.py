"""``repro graphs`` — build/inspect/maintain the named graph registry.

::

    repro graphs build NAME [NAME ...] [--dir DIR] [--force] [--json PATH]
    repro graphs ls     [--dir DIR]
    repro graphs verify [--dir DIR] [--repair]
    repro graphs gc     [--dir DIR]

``--dir`` (or ``REPRO_GRAPH_DIR``) picks the registry root; the CLI
falls back to ``~/.cache/repro/graphs``.  ``build`` is idempotent — a
name whose current-fingerprint file already exists is reported as a
``hit`` and costs one header read, no generation.  ``ls`` likewise only
reads headers, so listing a directory of multi-GB graphs is instant.
``verify`` re-hashes full payloads (the only check that catches payload
bit-rot); ``gc`` removes stale-fingerprint files.

``--json PATH`` on ``build`` writes a machine-readable summary — the CI
registry gate asserts ``built == 0`` on the second invocation.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Sequence

from repro._util import atomic_write_text, canonical_json
from repro.graphstore.format import read_header
from repro.graphstore.names import parse_graph_name
from repro.graphstore.registry import (DEFAULT_GRAPH_DIR, GraphRegistry,
                                       default_graph_dir)

__all__ = ["main"]


def _registry(args: argparse.Namespace) -> GraphRegistry:
    return GraphRegistry(args.dir or default_graph_dir() or DEFAULT_GRAPH_DIR)


def _fmt_size(n_bytes: int) -> str:
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _cmd_build(args: argparse.Namespace) -> int:
    registry = _registry(args)
    for name in args.names:  # fail fast on any bad name before building
        parse_graph_name(name)
    built_count = hit_count = 0
    graphs = {}
    for name in args.names:
        t0 = time.monotonic()
        path, built = registry.build(name, force=args.force)
        elapsed = time.monotonic() - t0
        header = read_header(path)
        size = os.stat(path).st_size
        if built:
            built_count += 1
        else:
            hit_count += 1
        graphs[name] = {
            "path": path, "built": built,
            "n_vertices": header.n_vertices,
            "n_directed_entries": header.n_indices,
            "size_bytes": size,
        }
        verb = "built" if built else "hit  "
        print(f"{verb} {name:<16} |V|={header.n_vertices:<10} "
              f"entries={header.n_indices:<11} {_fmt_size(size):<10} "
              f"({elapsed:.2f}s)  {path}")
    print(f"{built_count} built, {hit_count} hit")
    if args.json:
        atomic_write_text(args.json, canonical_json(
            {"built": built_count, "hits": hit_count, "graphs": graphs}))
    return 0


def _cmd_ls(args: argparse.Namespace) -> int:
    registry = _registry(args)
    entries = registry.entries()
    if not entries:
        print(f"no graphs under {registry.root}")
        return 0
    print(f"{'NAME':<16} {'|V|':>10} {'ENTRIES':>11} {'SIZE':>9} "
          f"{'AGE':>8}  {'FP':<16} CUR")
    for entry in entries:
        age = f"{entry.age_seconds / 3600:.1f}h"
        print(f"{entry.name:<16} {entry.n_vertices:>10} "
              f"{entry.n_directed_entries:>11} "
              f"{_fmt_size(entry.size_bytes):>9} {age:>8}  "
              f"{entry.fingerprint:<16} {'yes' if entry.current else 'no'}")
    print(f"{len(entries)} graph(s) under {registry.root}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    registry = _registry(args)
    report = registry.verify(repair=args.repair)
    print(f"checked {report.checked}, ok {report.ok}, "
          f"corrupt {len(report.corrupt)}, "
          f"quarantined {len(report.quarantined)}")
    for path in report.quarantined:
        print(f"quarantined: {path}")
    for path in report.corrupt:
        print(f"CORRUPT: {path}")
    return 0 if report.clean else 1


def _cmd_gc(args: argparse.Namespace) -> int:
    registry = _registry(args)
    removed, kept = registry.gc()
    print(f"removed {removed} stale graph(s), kept {kept}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro graphs`` (returns the exit code)."""
    parser = argparse.ArgumentParser(
        prog="repro graphs",
        description="Named graph registry: build-once, mmap-forever "
                    ".rgr graph files.")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build (or confirm) named graphs")
    build.add_argument("names", nargs="+", metavar="NAME",
                       help="registry names, e.g. suite:ldoor tube:1m "
                            "rmat:s18")
    build.add_argument("--dir", default=None, metavar="DIR",
                       help="registry root (default $REPRO_GRAPH_DIR or "
                            f"{DEFAULT_GRAPH_DIR})")
    build.add_argument("--force", action="store_true",
                       help="rebuild even when a current file exists")
    build.add_argument("--json", default=None, metavar="PATH",
                       help="write a machine-readable build summary")
    build.set_defaults(func=_cmd_build)

    ls = sub.add_parser("ls", help="list registry contents (header reads "
                                   "only — no generation)")
    ls.add_argument("--dir", default=None, metavar="DIR")
    ls.set_defaults(func=_cmd_ls)

    verify = sub.add_parser("verify",
                            help="full payload integrity audit")
    verify.add_argument("--dir", default=None, metavar="DIR")
    verify.add_argument("--repair", action="store_true",
                        help="move corrupt files to quarantine/")
    verify.set_defaults(func=_cmd_verify)

    gc = sub.add_parser("gc", help="remove stale-fingerprint graphs")
    gc.add_argument("--dir", default=None, metavar="DIR")
    gc.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
