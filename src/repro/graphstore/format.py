"""The ``.rgr`` binary CSR graph format: atomic writes, mmap loads.

Layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"RGR1"
    4       4     u32 format version (= 1)
    8       4     u32 indptr dtype code  (1 = little-endian int64)
    12      4     u32 indices dtype code (2 = little-endian int32)
    16      8     u64 n_vertices
    24      8     u64 n_indices          (directed CSR entries, 2|E|)
    32      4     u32 name_len           (UTF-8 bytes of the graph name)
    36      4     u32 reserved (= 0)
    40      16    payload digest: sha256(indptr bytes ++ indices bytes)[:16]
    56      8     header digest:  sha256(bytes 0..56)[:8]
    64      -     name bytes, zero-padded to a multiple of 8
    ...           indptr section  ((n_vertices + 1) * 8 bytes)
    ...           indices section (n_indices * 4 bytes)  — ends exactly at EOF

Integrity is layered by cost.  Every load checks the O(1) guards: magic,
header digest, version, dtype codes, and the *exact* file size implied
by the counts — so a truncated file, a foreign file, or a bit-flip
anywhere in the header fails cleanly before any data is touched.  A
bit-flip inside the payload sections is only caught by
:func:`verify_file`, which re-hashes the payload — loads stay zero-copy
(``mmap`` + ``np.frombuffer``; nothing is paged in until a kernel reads
it).  Writes go through a tmp file + ``os.replace`` like every other
persisted artifact in the repo, so a crash mid-write never leaves a
half-written graph under its final name.

Mmap lifetime: the returned arrays hold the ``mmap`` object via their
``.base`` chain, so the mapping (and the file's data blocks, even if the
path is unlinked — POSIX semantics) stays alive exactly as long as the
:class:`~repro.graph.csr.CSRGraph` does.  The file descriptor is closed
immediately after mapping.  Concurrent readers each get an independent
read-only mapping of the same immutable file.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["RGRError", "RGRHeader", "MAGIC", "FORMAT_VERSION", "HEADER_SIZE",
           "save_graph", "load_graph", "read_header", "verify_file"]

MAGIC = b"RGR1"
FORMAT_VERSION = 1

#: dtype codes for the two sections — the only layouts CSRGraph uses.
DTYPE_CODE_INDPTR = 1   # little-endian int64
DTYPE_CODE_INDICES = 2  # little-endian int32

#: magic, version, dtype codes, counts, name_len, reserved, digests.
_HEADER = struct.Struct("<4s3I2Q2I16s8s")
HEADER_SIZE = _HEADER.size
_DIGESTED = HEADER_SIZE - 8  # header digest covers everything before itself

_MAX_NAME_BYTES = 4096
_VERIFY_CHUNK = 1 << 22


class RGRError(ValueError):
    """A structurally invalid, corrupt, or unsupported ``.rgr`` file."""


@dataclass(frozen=True)
class RGRHeader:
    """Parsed + validated header of one ``.rgr`` file."""

    path: str
    version: int
    n_vertices: int
    n_indices: int
    name: str
    payload_digest: bytes
    indptr_offset: int
    indices_offset: int
    file_size: int


def _pad(length: int) -> int:
    """Zero-padding after *length* bytes up to 8-byte alignment."""
    return -length % 8


def _payload_digest(indptr: np.ndarray, indices: np.ndarray) -> bytes:
    digest = hashlib.sha256()
    digest.update(memoryview(indptr))
    digest.update(memoryview(indices))
    return digest.digest()[:16]


def save_graph(path: str | os.PathLike[str], graph: CSRGraph) -> str:
    """Write *graph* to *path* atomically; returns the final path.

    The tmp name carries the PID so two processes racing to build the
    same registry entry each write their own tmp and the last
    ``os.replace`` wins with a complete file either way.
    """
    path = os.fspath(path)
    indptr = np.ascontiguousarray(graph.indptr, dtype="<i8")
    indices = np.ascontiguousarray(graph.indices, dtype="<i4")
    name_bytes = graph.name.encode("utf-8")
    if len(name_bytes) > _MAX_NAME_BYTES:
        raise RGRError(f"graph name too long ({len(name_bytes)} bytes)")
    base = _HEADER.pack(MAGIC, FORMAT_VERSION,
                        DTYPE_CODE_INDPTR, DTYPE_CODE_INDICES,
                        graph.n_vertices, len(indices),
                        len(name_bytes), 0,
                        _payload_digest(indptr, indices), b"\0" * 8)
    header = base[:_DIGESTED] + hashlib.sha256(base[:_DIGESTED]).digest()[:8]
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(name_bytes + b"\0" * _pad(len(name_bytes)))
            fh.write(memoryview(indptr))
            fh.write(memoryview(indices))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return path


def read_header(path: str | os.PathLike[str]) -> RGRHeader:
    """Parse and validate the header of *path* (O(1), no payload I/O).

    Raises :class:`RGRError` on bad magic, a header-digest mismatch (any
    bit-flip in the first 64 bytes), an unsupported version or dtype
    code, or a file whose size does not exactly match the counts it
    declares (truncation, trailing garbage).
    """
    path = os.fspath(path)
    try:
        size = os.stat(path).st_size
        with open(path, "rb") as fh:
            raw = fh.read(HEADER_SIZE)
            if len(raw) < HEADER_SIZE:
                raise RGRError(f"{path}: truncated header "
                               f"({len(raw)} < {HEADER_SIZE} bytes)")
            (magic, version, code_indptr, code_indices, n_vertices,
             n_indices, name_len, _reserved, payload_digest,
             header_digest) = _HEADER.unpack(raw)
            if magic != MAGIC:
                raise RGRError(f"{path}: bad magic {magic!r} "
                               f"(not an .rgr file)")
            if hashlib.sha256(raw[:_DIGESTED]).digest()[:8] != header_digest:
                raise RGRError(f"{path}: header checksum mismatch")
            if version != FORMAT_VERSION:
                raise RGRError(f"{path}: unsupported format version "
                               f"{version} (supported: {FORMAT_VERSION})")
            if (code_indptr, code_indices) != (DTYPE_CODE_INDPTR,
                                               DTYPE_CODE_INDICES):
                raise RGRError(f"{path}: unsupported dtype codes "
                               f"({code_indptr}, {code_indices})")
            if name_len > _MAX_NAME_BYTES:
                raise RGRError(f"{path}: name length {name_len} out of range")
            name_bytes = fh.read(name_len)
        if len(name_bytes) < name_len:
            raise RGRError(f"{path}: truncated name section")
        try:
            name = name_bytes.decode("utf-8")
        except UnicodeDecodeError:
            raise RGRError(f"{path}: graph name is not UTF-8") from None
    except OSError as exc:
        raise RGRError(f"{path}: {exc}") from exc
    indptr_offset = HEADER_SIZE + name_len + _pad(name_len)
    indices_offset = indptr_offset + (n_vertices + 1) * 8
    expected = indices_offset + n_indices * 4
    if size != expected:
        raise RGRError(f"{path}: file size {size} != expected {expected} "
                       f"(truncated or trailing bytes)")
    return RGRHeader(path=path, version=version, n_vertices=n_vertices,
                     n_indices=n_indices, name=name,
                     payload_digest=payload_digest,
                     indptr_offset=indptr_offset,
                     indices_offset=indices_offset, file_size=size)


def load_graph(path: str | os.PathLike[str]) -> CSRGraph:
    """Zero-copy load: mmap the file, wrap the sections as numpy views.

    Only the header guards of :func:`read_header` plus O(1) ``indptr``
    anchors run here — no payload is read until a kernel touches it.
    Use :func:`verify_file` for a full integrity pass.
    """
    header = read_header(path)
    try:
        with open(header.path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise RGRError(f"{header.path}: {exc}") from exc
    indptr = np.frombuffer(mapped, dtype="<i8",
                           count=header.n_vertices + 1,
                           offset=header.indptr_offset)
    indices = np.frombuffer(mapped, dtype="<i4", count=header.n_indices,
                            offset=header.indices_offset)
    if indptr[0] != 0 or indptr[-1] != header.n_indices:
        raise RGRError(f"{header.path}: indptr anchors do not match the "
                       f"header counts")
    return CSRGraph.from_validated_arrays(indptr, indices, name=header.name)


def verify_file(path: str | os.PathLike[str]) -> RGRHeader:
    """Full integrity audit: header guards plus payload re-hash.

    This is the only check that catches a bit-flip *inside* the
    ``indptr``/``indices`` sections; it streams the payload in chunks so
    the audit stays O(chunk) in memory even for multi-GB files.
    """
    header = read_header(path)
    digest = hashlib.sha256()
    try:
        with open(header.path, "rb") as fh:
            fh.seek(header.indptr_offset)
            while True:
                chunk = fh.read(_VERIFY_CHUNK)
                if not chunk:
                    break
                digest.update(chunk)
    except OSError as exc:
        raise RGRError(f"{header.path}: {exc}") from exc
    if digest.digest()[:16] != header.payload_digest:
        raise RGRError(f"{header.path}: payload checksum mismatch")
    return header
