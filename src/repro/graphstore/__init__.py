"""On-disk graph substrate: binary CSR files and a named graph registry.

``repro.graphstore`` is what lets the suite scale past per-process
generation: graphs are built once, written as versioned + checksummed
``.rgr`` binaries, and every subsequent load is a zero-copy ``mmap``
(:mod:`repro.graphstore.format`).  The registry
(:mod:`repro.graphstore.registry`) maps stable names — ``suite:ldoor``,
``tube:1m``, ``rmat:s20`` — to build-once-then-mmap entries keyed by a
generator-parameter fingerprint, with ``ls``/``verify``/``gc``
maintenance mirroring the campaign :class:`~repro.campaign.store.ResultStore`
(corrupt files are quarantined and rebuilt).  Million-vertex instances
are produced without materialising full edge lists by the bounded-memory
external builder in :mod:`repro.graphstore.builder`.
"""

from repro.graphstore.builder import StreamingCSRBuilder
from repro.graphstore.format import (RGRError, RGRHeader, load_graph,
                                     read_header, save_graph, verify_file)
from repro.graphstore.names import GraphSpec, parse_graph_name
from repro.graphstore.registry import (DEFAULT_GRAPH_DIR, GraphRegistry,
                                       registry_from_env)

__all__ = [
    "StreamingCSRBuilder",
    "RGRError", "RGRHeader", "load_graph", "read_header", "save_graph",
    "verify_file",
    "GraphSpec", "parse_graph_name",
    "DEFAULT_GRAPH_DIR", "GraphRegistry", "registry_from_env",
]
