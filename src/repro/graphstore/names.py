"""Registry graph names: parsing and parameter fingerprints.

A registry name is ``<family>:<variant>``:

``suite:<graph>``
    One of the seven paper-suite analogs (``suite:ldoor``), built with
    the exact :class:`~repro.graph.suite.SuiteSpec` parameters — the
    registry copy is structurally identical to an in-process
    :func:`~repro.graph.suite.suite_graph` build.
``tube:<size>``
    A scaled tube mesh for the million-vertex regime (``tube:1m``,
    ``tube:250k``, ``tube:2000000``): section ``≈ sqrt(n)`` so BFS depth
    and per-level width grow together, with fixed clique/coupling so
    colour counts stay comparable across sizes.
``rmat:s<scale>[e<edge_factor>]``
    Graph500-style R-MAT (``rmat:s20`` = 2^20 vertices, edge factor 16).

Entries are keyed on disk by ``fingerprint()`` — a hash of the
*generator parameters* plus explicit schema/format version constants,
**not** the repo-wide code fingerprint the campaign store uses.  Graph
files are large and expensive; invalidating them on every unrelated
source edit would defeat the cache.  Bump
:data:`GENERATOR_SCHEMA_VERSION` when a generator's output for the same
parameters changes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util import canonical_json, sha256_hex
from repro.graph.csr import CSRGraph
from repro.graphstore.format import FORMAT_VERSION

__all__ = ["GraphSpec", "parse_graph_name", "GENERATOR_SCHEMA_VERSION"]

#: Bump when generator output changes for identical parameters.
GENERATOR_SCHEMA_VERSION = 1

_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)([km]?)$")
_RMAT_RE = re.compile(r"^s(\d+)(?:e(\d+))?$")
_MAX_VERTICES = 100_000_000


@dataclass(frozen=True)
class GraphSpec:
    """A parsed registry name: generator kind + frozen parameters."""

    name: str   # canonical registry name, e.g. "suite:ldoor"
    kind: str   # "tube_mesh" | "rmat"
    params: tuple[tuple[str, int | float], ...]

    def params_dict(self) -> dict:
        return dict(self.params)

    def fingerprint(self) -> str:
        """16-hex key of (kind, params, schema/format versions)."""
        return sha256_hex(canonical_json({
            "kind": self.kind,
            "params": self.params_dict(),
            "generator_schema": GENERATOR_SCHEMA_VERSION,
            "format": FORMAT_VERSION,
        }))[:16]

    def build(self) -> CSRGraph:
        """Generate the graph (streaming; bounded memory)."""
        params = self.params_dict()
        if self.kind == "tube_mesh":
            from repro.graph.generators import tube_mesh
            return tube_mesh(name=self.name, **params)
        if self.kind == "rmat":
            from repro.graph.generators import rmat
            return rmat(name=self.name, **params)
        raise ValueError(f"unknown generator kind {self.kind!r}")


def _parse_size(token: str, name: str) -> int:
    match = _SIZE_RE.match(token)
    if not match:
        raise ValueError(f"bad graph size {token!r} in {name!r} "
                         f"(expected e.g. 250k, 1m, or a vertex count)")
    value = float(match.group(1)) * {"": 1, "k": 1_000, "m": 1_000_000}[
        match.group(2)]
    n = int(round(value))
    if not 1 <= n <= _MAX_VERTICES:
        raise ValueError(f"graph size {n} out of range [1, {_MAX_VERTICES}]")
    return n


def _tube_params(n: int) -> tuple[tuple[str, int | float], ...]:
    """The canonical scaled-tube family (see module docstring)."""
    section = max(32, min(n, int(round(n ** 0.5))))
    return (
        ("n", n),
        ("section", section),
        ("clique", min(8, section)),
        ("cliques_per_vertex", 1.0),
        ("coupling", 3),
        ("hubs", max(4, n // 65_536)),
        ("hub_degree", 64),
        ("seed", 7),
    )


def parse_graph_name(name: str) -> GraphSpec:
    """Parse a registry name into its :class:`GraphSpec`.

    Raises :class:`ValueError` (never a bare :class:`KeyError`) on any
    malformed or unknown name so CLI errors stay readable.
    """
    if ":" not in name:
        raise ValueError(f"bad graph name {name!r} "
                         f"(expected family:variant, e.g. suite:ldoor)")
    family, _, variant = name.partition(":")
    variant = variant.strip()
    if family == "suite":
        from repro.graph.suite import SUITE
        if variant not in SUITE:
            raise ValueError(f"unknown suite graph {variant!r}; "
                             f"pick from {sorted(SUITE)}")
        spec = SUITE[variant]
        params = (("n", spec.n), ("section", spec.section),
                  ("clique", spec.clique),
                  ("cliques_per_vertex", spec.cliques_per_vertex),
                  ("coupling", spec.coupling), ("hubs", spec.hubs),
                  ("hub_degree", spec.hub_degree), ("seed", spec.seed))
        return GraphSpec(name=f"suite:{variant}", kind="tube_mesh",
                         params=params)
    if family == "tube":
        n = _parse_size(variant, name)
        return GraphSpec(name=f"tube:{variant}", kind="tube_mesh",
                         params=_tube_params(n))
    if family == "rmat":
        match = _RMAT_RE.match(variant)
        if not match:
            raise ValueError(f"bad rmat variant {variant!r} in {name!r} "
                             f"(expected e.g. rmat:s20 or rmat:s18e8)")
        scale = int(match.group(1))
        if not 1 <= scale <= 26:
            raise ValueError(f"rmat scale {scale} out of range [1, 26]")
        edge_factor = int(match.group(2) or 16)
        if not 1 <= edge_factor <= 64:
            raise ValueError(f"rmat edge factor {edge_factor} "
                             f"out of range [1, 64]")
        return GraphSpec(name=f"rmat:{variant}", kind="rmat",
                        params=(("scale", scale),
                                ("edge_factor", edge_factor), ("seed", 1)))
    raise ValueError(f"unknown graph family {family!r} in {name!r} "
                     f"(known: suite, tube, rmat)")
