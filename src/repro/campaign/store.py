"""Content-addressed result store for campaign cells.

A cell's store key is the SHA-256 of its canonical JSON spec combined
with the current **code fingerprint** — a hash over every ``*.py`` file
of the installed ``repro`` package plus the package version.  Editing
any simulator source changes the fingerprint, so stale results are never
returned; they linger as unreachable objects until ``gc`` removes them.

Layout (git-style fan-out under the root, default ``~/.cache/repro`` or
``$REPRO_STORE``)::

    <root>/objects/<key[:2]>/<key[2:]>.json

Each object file holds ``{"spec": ..., "value": ..., "fingerprint": ...,
"checksum": ...}`` and is written atomically
(:func:`repro._util.atomic_write_text`), so a killed run never leaves a
half-written entry.  The ``checksum`` — a content hash over the rest of
the record — is verified on every read: an object that was truncated or
bit-flipped *after* a successful write (disk fault, concurrent
corruption, manual tampering) is detected, **moved to
``<root>/quarantine/``** for post-mortem and treated as a miss, so the
cell is recomputed instead of poisoning a report.  ``repro campaign
cache verify [--repair]`` audits the whole store the same way.
Non-finite values (failed cells) are deliberately *not* stored — a
failure should be retried on the next run, not cached.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

from repro._util import (atomic_write_text, canonical_json,
                         content_checksum, env_str, sha256_hex)

__all__ = ["ResultStore", "StoreStats", "VerifyReport", "code_fingerprint",
           "default_store_root", "DEFAULT_STORE_ROOT"]

#: Fallback store location when neither ``--store`` nor ``REPRO_STORE``
#: names one.
DEFAULT_STORE_ROOT = "~/.cache/repro"

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Hash of the repro package's source tree + version (memoised).

    16 hex chars of SHA-256 over every ``*.py`` file under the package
    directory (sorted relative paths, path and content both hashed) and
    ``repro.__version__`` — the cache-invalidation half of every store
    key.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro
        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        parts = [f"version={repro.__version__}"]
        sources = []
        for dirpath, dirnames, filenames in os.walk(pkg_dir):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for fn in filenames:
                if fn.endswith(".py"):
                    full = os.path.join(dirpath, fn)
                    sources.append((os.path.relpath(full, pkg_dir), full))
        for rel, full in sorted(sources):
            # Hash the file bytes directly: decoding as UTF-8 first
            # crashed the whole store on any non-UTF-8 source file.
            with open(full, "rb") as fh:
                parts.append(f"{rel}:{sha256_hex(fh.read())}")
        _FINGERPRINT = sha256_hex("\n".join(parts))[:16]
    return _FINGERPRINT


def default_store_root() -> str | None:
    """Store root from ``REPRO_STORE`` (None = store disabled)."""
    return env_str("REPRO_STORE")


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    quarantined: int = 0
    skipped_nonfinite: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts,
                "corrupt": self.corrupt, "quarantined": self.quarantined,
                "skipped_nonfinite": self.skipped_nonfinite}


@dataclass
class VerifyReport:
    """Outcome of one :meth:`ResultStore.verify` audit."""

    checked: int = 0
    ok: int = 0
    corrupt: list = field(default_factory=list)      # paths still in place
    quarantined: list = field(default_factory=list)  # paths moved away

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.quarantined


@dataclass
class StoreEntry:
    """One object file's metadata (``ls``/``gc`` surface)."""

    key: str
    path: str
    spec: dict
    value: float
    fingerprint: str
    age_seconds: float
    size_bytes: int
    current: bool = field(default=False)


class ResultStore:
    """Content-addressed cache of ``spec -> simulated cycles``.

    *root* defaults to ``$REPRO_STORE`` or ``~/.cache/repro``;
    *fingerprint* defaults to the live :func:`code_fingerprint` (tests
    pin it to simulate code changes).
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 fingerprint: str | None = None):
        root = root or default_store_root() or DEFAULT_STORE_ROOT
        self.root = os.path.expanduser(os.fspath(root))
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = StoreStats()

    # ----- keys and paths --------------------------------------------------

    def key(self, spec: dict) -> str:
        """SHA-256 key of *spec* under the store's code fingerprint."""
        return sha256_hex(canonical_json(
            {"spec": spec, "code": self.fingerprint}))

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key[2:]}.json")

    def _quarantine_path(self, path: str) -> str:
        prefix = os.path.basename(os.path.dirname(path))
        return os.path.join(self.root, "quarantine",
                            prefix + os.path.basename(path))

    # ----- read/write ------------------------------------------------------

    def _quarantine(self, path: str) -> str | None:
        """Move a corrupt object out of the reachable tree; returns the
        quarantine path (None when the move itself failed)."""
        target = self._quarantine_path(path)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(path, target)
        except OSError:
            return None
        self.stats.quarantined += 1
        return target

    def _read(self, path: str, quarantine: bool = False) -> dict | None:
        """Parse + integrity-check one object file.

        A structurally invalid object or a checksum mismatch counts as
        corrupt; with *quarantine* the file is also moved to
        ``<root>/quarantine/`` so the next run recomputes the cell
        instead of tripping over the same bad bytes.
        """
        import json
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if not isinstance(data, dict) or "value" not in data:
                raise ValueError("not a store object")
            recorded = data.pop("checksum", None)
            if recorded != content_checksum(data):
                raise ValueError("checksum mismatch")
            return data
        except OSError:
            return None
        except ValueError:
            self.stats.corrupt += 1
            if quarantine:
                self._quarantine(path)
            return None

    def contains(self, spec: dict) -> bool:
        """Whether a current-fingerprint result exists (stats untouched)."""
        return self._read(self._path(self.key(spec))) is not None

    def get(self, spec: dict) -> float | None:
        """Cached value for *spec*, or None on a miss.

        A corrupt object is quarantined and reported as a miss — the
        caller recomputes the cell and the damaged bytes are preserved
        under ``<root>/quarantine/`` for inspection.
        """
        data = self._read(self._path(self.key(spec)), quarantine=True)
        if data is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return float(data["value"])

    def put(self, spec: dict, value: float) -> str | None:
        """Store *value* for *spec*; returns the key (None if skipped).

        Non-finite values are not cached — a NaN cell means "failed
        after retries" and must be recomputed next run.
        """
        value = float(value)
        if not math.isfinite(value):
            self.stats.skipped_nonfinite += 1
            return None
        key = self.key(spec)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {"spec": spec, "value": value,
                  "fingerprint": self.fingerprint}
        record["checksum"] = content_checksum(
            {"spec": spec, "value": value, "fingerprint": self.fingerprint})
        atomic_write_text(path, canonical_json(record))
        self.stats.puts += 1
        return key

    # ----- maintenance surface (ls / gc / clear / verify) ------------------

    def _object_paths(self) -> list[str]:
        """Every object file under the store, readable or not, sorted."""
        out = []
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return out
        for prefix in sorted(os.listdir(objects)):
            subdir = os.path.join(objects, prefix)
            if not os.path.isdir(subdir):
                continue
            out.extend(os.path.join(subdir, fn)
                       for fn in sorted(os.listdir(subdir))
                       if fn.endswith(".json"))
        return out

    def count_objects(self) -> int:
        """Object-file count (readable or not) — listdir only, no
        parsing.  The cheap cardinality the serve health endpoint polls;
        :meth:`entries` opens and checksums every file and is far too
        heavy to run per health check."""
        return len(self._object_paths())

    def verify(self, repair: bool = False) -> VerifyReport:
        """Audit every object's integrity checksum.

        Unlike :meth:`entries` this walks *raw files*, so objects too
        damaged to parse are found too.  With *repair* each corrupt
        object is moved to ``<root>/quarantine/``; without it they are
        only reported (the store is left untouched).
        """
        report = VerifyReport()
        for path in self._object_paths():
            report.checked += 1
            if self._read(path) is not None:
                report.ok += 1
                continue
            if repair:
                target = self._quarantine(path)
                if target is not None:
                    report.quarantined.append(path)
                    continue
            report.corrupt.append(path)
        return report

    def entries(self) -> list[StoreEntry]:
        """Every readable object in the store, sorted by key."""
        out = []
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return out
        now = time.time()
        for prefix in sorted(os.listdir(objects)):
            subdir = os.path.join(objects, prefix)
            if not os.path.isdir(subdir):
                continue
            for fn in sorted(os.listdir(subdir)):
                if not fn.endswith(".json"):
                    continue
                path = os.path.join(subdir, fn)
                data = self._read(path)
                if data is None:
                    continue
                st = os.stat(path)
                fp = data.get("fingerprint", "")
                out.append(StoreEntry(
                    key=prefix + fn[:-len(".json")], path=path,
                    spec=data.get("spec", {}), value=float(data["value"]),
                    fingerprint=fp, age_seconds=max(0.0, now - st.st_mtime),
                    size_bytes=st.st_size, current=fp == self.fingerprint))
        return out

    def _remove_object(self, path: str) -> None:
        """Delete one *object* file — and nothing else.

        ``gc``/``clear`` are the only deletion paths in the store, and
        they must never reach outside ``<root>/objects/``: quarantined
        files are evidence (``verify --repair`` put them aside precisely
        so a human can look), and ``<root>/journals/`` holds the
        crash-recovery WALs of live campaign runs and the serve job
        queue — deleting one silently turns "zero lost jobs" into lost
        jobs.  The walk in :meth:`entries` only visits ``objects/``, but
        that is an implementation detail; this guard makes the guarantee
        structural.
        """
        objects = os.path.realpath(os.path.join(self.root, "objects"))
        if os.path.commonpath([objects,
                               os.path.realpath(path)]) != objects:
            raise ValueError(
                f"refusing to delete {path!r}: outside the store's "
                f"objects/ tree (quarantine/ and journals/ are "
                f"never garbage-collected)")
        os.remove(path)

    def gc(self, max_age_days: float | None = None,
           stale_only: bool = False) -> tuple[int, int]:
        """Remove unreachable objects; returns ``(removed, kept)``.

        An object is removed when its fingerprint is stale (written by a
        different code version — unreachable by any current key) or,
        with *max_age_days*, when it is older than that.  *stale_only*
        restricts removal to fingerprint-stale entries even when an age
        limit is given.

        Only files under ``<root>/objects/`` are ever deleted:
        ``<root>/quarantine/`` and ``<root>/journals/`` (run WALs and
        the serve job journal) are never visited or touched.
        """
        removed = kept = 0
        for entry in self.entries():
            stale = not entry.current
            too_old = (max_age_days is not None
                       and entry.age_seconds > max_age_days * 86400.0)
            if stale or (too_old and not stale_only):
                self._remove_object(entry.path)
                removed += 1
            else:
                kept += 1
        return removed, kept

    def clear(self) -> int:
        """Remove every object (the root directory itself is kept).

        Like :meth:`gc`, this only deletes under ``<root>/objects/`` —
        quarantined files and journals survive a ``cache clear``.
        """
        removed = 0
        for entry in self.entries():
            self._remove_object(entry.path)
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.entries())
