"""Parallel sweep executor: supervised worker processes over cells.

Every sweep cell — ``runner(key) -> cycles`` — is pure CPU on immutable
inputs, so ``fork``-ed worker processes escape the GIL and compute cells
genuinely in parallel while keeping bitwise-identical results (each
worker re-derives the same seeded simulation the serial path would).
The executor owns everything around the runner calls:

* **store short-circuit** — keys whose canonical spec is already in the
  content-addressed :class:`~repro.campaign.store.ResultStore` are
  served as hits without touching the workers;
* **journal replay** — with a :class:`~repro.campaign.journal.Journal`
  attached, cells completed by an earlier (possibly SIGKILLed) run are
  served from its write-ahead log with zero recomputation, and every
  submission/completion/failure is journaled for the next resume;
* **worker supervision** — parallel execution runs on
  :class:`~repro.campaign.supervise.Supervisor`: per-worker children
  tracked by pid + heartbeat sweep, ``REPRO_CELL_TIMEOUT`` deadlines,
  dead-worker replacement with deterministic requeue, seeded
  exponential backoff between retries and a per-runner-family circuit
  breaker — an OOM-killed or segfaulting worker costs one requeue, not
  a wedged campaign;
* **bounded retries with NaN semantics** — a cell that keeps raising is
  recorded as NaN with its error string, mirroring
  :func:`repro.experiments.harness.run_panel`'s partial-result contract;
* **graceful Ctrl-C** — the first SIGINT stops submissions, drains the
  in-flight cells (workers ignore SIGINT) and returns a partial report
  with ``interrupted=True``; a second SIGINT aborts hard;
* **progress/ETA** — per-cell completion reporting on stderr (live
  ``\\r`` line on a TTY, every ~10% otherwise);
* **telemetry** — when a :mod:`repro.obs.metrics` registry is active,
  ``campaign.cells{status=...}`` counters count hits, resumed, computed
  and failed cells (the supervisor adds retry/requeue/timeout/breaker
  counters), and serial cells run inside ``registry.cell(...)`` scopes
  so frames keep their sweep labels.

Submission order is deterministic and results are keyed, not ordered, so
``--jobs N`` output is bitwise identical to the serial run.
"""

from __future__ import annotations

import math
import os
import sys
import time
from dataclasses import dataclass, field

from repro._util import env_int

__all__ = ["ExecutionReport", "execute", "default_jobs"]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial in-process).

    ``0`` means "one worker per CPU"; anything that is not a
    non-negative integer is rejected with a clear :class:`ValueError`.
    """
    jobs = env_int("REPRO_JOBS", 1, lo=0)
    return jobs or (os.cpu_count() or 1)


@dataclass
class ExecutionReport:
    """Outcome of one :func:`execute` call."""

    values: dict = field(default_factory=dict)   # key -> cycles (NaN = failed)
    errors: dict = field(default_factory=dict)   # key -> error string
    hits: int = 0
    resumed: int = 0          # served from a journal replay, not recomputed
    computed: int = 0
    failed: int = 0
    elapsed: float = 0.0
    interrupted: bool = False
    resilience: dict = field(default_factory=dict)  # SupervisorStats.to_dict
    jobs: int = 1             # effective worker count of the compute phase
    busy_seconds: float = 0.0       # summed wall time inside runner calls
    store_gets: int = 0             # store lookups in the short-circuit pass
    store_get_seconds: float = 0.0  # summed wall time inside store.get

    @property
    def total(self) -> int:
        return self.hits + self.resumed + self.computed + self.failed

    @property
    def hit_rate(self) -> float:
        """Store hits over completed cells (0.0 when nothing ran)."""
        return self.hits / self.total if self.total else 0.0

    @property
    def cells_per_second(self) -> float:
        """Computed+failed cells per wall-clock second of the compute
        phase (hits/resumes are excluded — they never touch a worker)."""
        worked = self.computed + self.failed
        return worked / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker pool's wall-time budget spent inside
        runner calls (1.0 = perfectly packed; serial runs approach it)."""
        if self.elapsed <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.elapsed * self.jobs))

    @property
    def store_get_latency(self) -> float:
        """Mean seconds per store lookup (0.0 without a store)."""
        return self.store_get_seconds / self.store_gets \
            if self.store_gets else 0.0

    def wall(self) -> dict:
        """The wall-clock counter block (campaign status / summaries)."""
        return {"elapsed_s": self.elapsed,
                "jobs": self.jobs,
                "busy_s": self.busy_seconds,
                "cells_per_second": self.cells_per_second,
                "worker_utilization": self.worker_utilization,
                "store_gets": self.store_gets,
                "store_get_latency_s": self.store_get_latency}


class _Progress:
    """Per-cell progress/ETA line on stderr (quiet when disabled)."""

    def __init__(self, total: int, desc: str, enabled: bool):
        self.total = total
        self.desc = desc
        self.enabled = enabled and total > 0
        self.stream = sys.stderr
        self.tty = self.enabled and self.stream.isatty()
        self.step = max(1, total // 10)
        self.t0 = time.time()
        self._last_done = -1

    def update(self, report: ExecutionReport, final: bool = False) -> None:
        if not self.enabled:
            return
        done = report.total
        if not self.tty:
            if final and done == self._last_done:
                return
            if not final and done % self.step:
                return
            self._last_done = done
        elapsed = time.time() - self.t0
        # Failed cells took wall-clock too: counting only computed cells
        # made a mostly-failing campaign's ETA read "-" forever.
        worked = report.computed + report.failed
        rate = worked / elapsed if elapsed > 0 else 0.0
        remaining = self.total - done
        if not remaining:
            eta = "-"
        elif rate > 0:
            eta = f"{remaining / rate:.0f}s"
        elif done > 0:
            # Every cell so far was a hit/resume — the remainder is
            # served at store speed, not compute speed.
            eta = "0s"
        else:
            eta = "-"
        line = (f"[campaign] {done}/{self.total} {self.desc} | "
                f"{report.hits} hits, {report.failed} failed | "
                f"{rate:.1f} cells/s | eta {eta}")
        if self.tty:
            end = "\n" if final else ""
            print(f"\r\x1b[2K{line}", end=end, file=self.stream, flush=True)
        else:
            print(line, file=self.stream, flush=True)


def _fork_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def execute(runner, keys, *, jobs: int | None = None, retries: int = 0,
            on_error: str = "nan", store=None, spec_for=None,
            labels_for=None, progress: bool = False, on_cell=None,
            desc: str = "cells", journal=None, resume=None, key_id=None,
            family_for=None, timeout=None) -> ExecutionReport:
    """Run ``runner(key) -> cycles`` over *keys*, optionally in parallel.

    Parameters mirror the harness' resilience contract: *retries* is the
    per-cell retry budget, ``on_error="nan"`` records a spent budget as
    NaN + error string while ``"raise"`` re-raises (serial) or raises a
    :class:`RuntimeError` with the worker's error (parallel).  *store*
    with *spec_for* (``key -> canonical spec dict``) enables the
    content-addressed cache; *on_cell* (``key, value``) fires in the
    parent for every completed cell (checkpoint writers hook in here);
    *labels_for* (``key -> dict``) labels serial cells' telemetry frames.

    Crash safety: *journal* (a :class:`~repro.campaign.journal.Journal`)
    records every submitted/completed/failed cell as a checksummed WAL
    line; *resume* (``cell-id -> value`` from a replay) serves
    already-completed cells without recomputation; *key_id*
    (``key -> str``, default ``str``) names cells in the journal and
    seeds retry backoff; *family_for* (``key -> str``) groups cells for
    the circuit breaker; *timeout* overrides ``REPRO_CELL_TIMEOUT``.

    On Ctrl-C the report comes back partial with ``interrupted=True``
    (completed cells are already persisted through
    *store*/*journal*/*on_cell*); callers decide whether to re-raise.
    """
    from repro.obs import metrics as _obs_metrics

    keys = list(keys)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    jobs = jobs or (os.cpu_count() or 1)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if on_error not in ("nan", "raise"):
        raise ValueError(f"on_error must be 'nan' or 'raise', got {on_error!r}")
    if key_id is None:
        key_id = str

    report = ExecutionReport()
    registry = _obs_metrics.active()
    meter = _Progress(len(keys), desc, enabled=progress)

    def count(status: str) -> None:
        if registry is not None:
            registry.incr("campaign.cells", status=status)

    def record(key, value, error) -> None:
        report.values[key] = value
        if error is not None:
            report.errors[key] = error
            report.failed += 1
            count("failed")
            if journal is not None:
                journal.failed(key_id(key), error)
        else:
            report.computed += 1
            count("computed")
            if journal is not None:
                journal.completed(key_id(key), value)
            if store is not None and spec_for is not None \
                    and math.isfinite(value):
                store.put(spec_for(key), value)
        if on_cell is not None:
            on_cell(key, value)
        meter.update(report)

    # Replay/store short-circuit: serve journaled completions from the
    # previous (crashed) run first, then warm store entries — neither
    # touches a worker.
    work = []
    for key in keys:
        if resume is not None and key_id(key) in resume:
            report.values[key] = resume[key_id(key)]
            report.resumed += 1
            count("resumed")
            if on_cell is not None:
                on_cell(key, report.values[key])
            meter.update(report)
            continue
        if store is not None and spec_for is not None:
            t_get = time.time()
            cached = store.get(spec_for(key))
            report.store_get_seconds += time.time() - t_get
            report.store_gets += 1
        else:
            cached = None
        if cached is not None:
            report.values[key] = cached
            report.hits += 1
            count("hit")
            if on_cell is not None:
                on_cell(key, cached)
            meter.update(report)
        else:
            work.append(key)

    if journal is not None:
        for key in work:
            journal.submitted(key_id(key))

    t0 = time.time()
    ctx = _fork_context() if jobs > 1 else None
    if jobs > 1 and ctx is None:
        print("[campaign] fork start method unavailable; running serially",
              file=sys.stderr)
    try:
        # Even a single remaining cell goes through supervision when
        # parallel mode is on: the timeout/requeue machinery is the
        # point, not just the parallelism.
        if ctx is not None and work:
            report.jobs = min(jobs, len(work))
            _execute_pool(runner, work, ctx, report.jobs, retries,
                          record, report, key_id=key_id,
                          family_for=family_for, timeout=timeout)
        else:
            report.jobs = 1
            _execute_serial(runner, work, retries, on_error, labels_for,
                            registry, record, report)
    finally:
        report.elapsed = time.time() - t0
        meter.update(report, final=True)
        if journal is not None:
            journal.end(interrupted=report.interrupted)

    if report.errors and on_error == "raise":
        key, error = next(iter(report.errors.items()))
        raise RuntimeError(f"cell {key!r} failed after {retries} "
                           f"retr{'y' if retries == 1 else 'ies'}: {error}")
    return report


def _execute_serial(runner, work, retries, on_error, labels_for, registry,
                    record, report) -> None:
    from contextlib import nullcontext

    for key in work:
        try:
            # The cell scope is single-use: rebuild it per attempt.
            error = None
            value = float("nan")
            for _ in range(1 + retries):
                scope = registry.cell(**labels_for(key)) \
                    if registry is not None and labels_for is not None \
                    else nullcontext()
                t_cell = time.time()
                try:
                    with scope:
                        value, error = float(runner(key)), None
                    break
                except Exception as exc:  # noqa: BLE001
                    error = exc
                finally:
                    report.busy_seconds += time.time() - t_cell
            if error is not None and on_error == "raise":
                raise error  # fail fast with the original exception
            record(key, value, None if error is None else
                   f"{type(error).__name__}: {error}")
        except KeyboardInterrupt:
            report.interrupted = True
            return


def _execute_pool(runner, work, ctx, jobs, retries, record, report, *,
                  key_id=str, family_for=None, timeout=None) -> None:
    """Supervised parallel execution with graceful Ctrl-C draining.

    The heavy lifting — worker lifecycle, heartbeat sweeps, timeouts,
    requeues, backoff, the circuit breaker — lives in
    :class:`~repro.campaign.supervise.Supervisor`; this wrapper adapts
    its callback to the executor's ``record`` contract and mirrors the
    interrupt/stats state onto the report.
    """
    from repro.campaign.supervise import Supervisor

    supervisor = Supervisor(runner, ctx, jobs, retries=retries,
                            timeout=timeout, key_id=key_id,
                            family_for=family_for)
    try:
        report.interrupted = supervisor.run(work, record)
    except KeyboardInterrupt:
        report.interrupted = True
        raise  # second Ctrl-C: abort hard (workers already killed)
    finally:
        report.resilience = supervisor.stats.to_dict()
        report.busy_seconds = supervisor.stats.busy_seconds
