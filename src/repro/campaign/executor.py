"""Parallel sweep executor: a process pool over independent cells.

Every sweep cell — ``runner(key) -> cycles`` — is pure CPU on immutable
inputs, so a ``fork``-based :mod:`multiprocessing` pool escapes the GIL
and computes cells genuinely in parallel while keeping bitwise-identical
results (each worker re-derives the same seeded simulation the serial
path would).  The executor owns everything around the runner calls:

* **store short-circuit** — keys whose canonical spec is already in the
  content-addressed :class:`~repro.campaign.store.ResultStore` are
  served as hits without touching the pool;
* **bounded retries with NaN semantics** — a cell that keeps raising is
  recorded as NaN with its error string, mirroring
  :func:`repro.experiments.harness.run_panel`'s partial-result contract;
* **graceful Ctrl-C** — the first SIGINT stops submissions, drains the
  in-flight cells (workers ignore SIGINT) and returns a partial report
  with ``interrupted=True``; a second SIGINT aborts hard;
* **progress/ETA** — per-cell completion reporting on stderr (live
  ``\\r`` line on a TTY, every ~10% otherwise);
* **telemetry** — when a :mod:`repro.obs.metrics` registry is active,
  ``campaign.cells{status=...}`` counters count hits, computed cells and
  failures, and serial cells run inside ``registry.cell(...)`` scopes so
  frames keep their sweep labels.

Submission order is deterministic and results are keyed, not ordered, so
``--jobs N`` output is bitwise identical to the serial run.
"""

from __future__ import annotations

import math
import os
import signal
import sys
import time
from dataclasses import dataclass, field

from repro._util import env_int

__all__ = ["ExecutionReport", "execute", "default_jobs"]

#: Sentinel for "no more work" in the submission loop.
_DONE = object()

#: (runner, retries) inherited by forked pool workers.
_WORKER: tuple | None = None


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial in-process).

    ``0`` means "one worker per CPU"; anything that is not a
    non-negative integer is rejected with a clear :class:`ValueError`.
    """
    jobs = env_int("REPRO_JOBS", 1, lo=0)
    return jobs or (os.cpu_count() or 1)


@dataclass
class ExecutionReport:
    """Outcome of one :func:`execute` call."""

    values: dict = field(default_factory=dict)   # key -> cycles (NaN = failed)
    errors: dict = field(default_factory=dict)   # key -> error string
    hits: int = 0
    computed: int = 0
    failed: int = 0
    elapsed: float = 0.0
    interrupted: bool = False

    @property
    def total(self) -> int:
        return self.hits + self.computed + self.failed

    @property
    def hit_rate(self) -> float:
        """Store hits over completed cells (0.0 when nothing ran)."""
        return self.hits / self.total if self.total else 0.0


class _Progress:
    """Per-cell progress/ETA line on stderr (quiet when disabled)."""

    def __init__(self, total: int, desc: str, enabled: bool):
        self.total = total
        self.desc = desc
        self.enabled = enabled and total > 0
        self.stream = sys.stderr
        self.tty = self.enabled and self.stream.isatty()
        self.step = max(1, total // 10)
        self.t0 = time.time()
        self._last_done = -1

    def update(self, report: ExecutionReport, final: bool = False) -> None:
        if not self.enabled:
            return
        done = report.total
        if not self.tty:
            if final and done == self._last_done:
                return
            if not final and done % self.step:
                return
            self._last_done = done
        elapsed = time.time() - self.t0
        rate = report.computed / elapsed if elapsed > 0 else 0.0
        remaining = self.total - done
        eta = f"{remaining / rate:.0f}s" if rate > 0 and remaining else "-"
        line = (f"[campaign] {done}/{self.total} {self.desc} | "
                f"{report.hits} hits, {report.failed} failed | "
                f"{rate:.1f} cells/s | eta {eta}")
        if self.tty:
            end = "\n" if final else ""
            print(f"\r\x1b[2K{line}", end=end, file=self.stream, flush=True)
        else:
            print(line, file=self.stream, flush=True)


def _attempt(runner, key, retries: int):
    """Run one cell with bounded retries: ``(value, error_string|None)``."""
    error = None
    for _ in range(1 + retries):
        try:
            return float(runner(key)), None
        except Exception as exc:  # noqa: BLE001 — cell isolation is the point
            error = exc
    return float("nan"), f"{type(error).__name__}: {error}"


def _pool_initializer() -> None:
    """Workers ignore SIGINT so the parent can drain in-flight cells."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _pool_run(key):
    runner, retries = _WORKER
    value, error = _attempt(runner, key, retries)
    return key, value, error


def _fork_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def execute(runner, keys, *, jobs: int | None = None, retries: int = 0,
            on_error: str = "nan", store=None, spec_for=None,
            labels_for=None, progress: bool = False, on_cell=None,
            desc: str = "cells") -> ExecutionReport:
    """Run ``runner(key) -> cycles`` over *keys*, optionally in parallel.

    Parameters mirror the harness' resilience contract: *retries* is the
    per-cell retry budget, ``on_error="nan"`` records a spent budget as
    NaN + error string while ``"raise"`` re-raises (serial) or raises a
    :class:`RuntimeError` with the worker's error (parallel).  *store*
    with *spec_for* (``key -> canonical spec dict``) enables the
    content-addressed cache; *on_cell* (``key, value``) fires in the
    parent for every completed cell (checkpoint writers hook in here);
    *labels_for* (``key -> dict``) labels serial cells' telemetry frames.

    On Ctrl-C the report comes back partial with ``interrupted=True``
    (completed cells are already persisted through *store*/*on_cell*);
    callers decide whether to re-raise.
    """
    from repro.obs import metrics as _obs_metrics

    keys = list(keys)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    jobs = jobs or (os.cpu_count() or 1)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if on_error not in ("nan", "raise"):
        raise ValueError(f"on_error must be 'nan' or 'raise', got {on_error!r}")

    report = ExecutionReport()
    registry = _obs_metrics.active()
    meter = _Progress(len(keys), desc, enabled=progress)

    def count(status: str) -> None:
        if registry is not None:
            registry.incr("campaign.cells", status=status)

    def record(key, value, error) -> None:
        report.values[key] = value
        if error is not None:
            report.errors[key] = error
            report.failed += 1
            count("failed")
        else:
            report.computed += 1
            count("computed")
            if store is not None and spec_for is not None \
                    and math.isfinite(value):
                store.put(spec_for(key), value)
        if on_cell is not None:
            on_cell(key, value)
        meter.update(report)

    # Store short-circuit: serve cached cells without touching the pool.
    work = []
    for key in keys:
        cached = store.get(spec_for(key)) if store is not None \
            and spec_for is not None else None
        if cached is not None:
            report.values[key] = cached
            report.hits += 1
            count("hit")
            if on_cell is not None:
                on_cell(key, cached)
            meter.update(report)
        else:
            work.append(key)

    t0 = time.time()
    ctx = _fork_context() if jobs > 1 else None
    if jobs > 1 and ctx is None:
        print("[campaign] fork start method unavailable; running serially",
              file=sys.stderr)
    try:
        if ctx is not None and len(work) > 1:
            _execute_pool(runner, work, ctx, min(jobs, len(work)), retries,
                          record, report)
        else:
            _execute_serial(runner, work, retries, on_error, labels_for,
                            registry, record, report)
    finally:
        report.elapsed = time.time() - t0
        meter.update(report, final=True)

    if report.errors and on_error == "raise":
        key, error = next(iter(report.errors.items()))
        raise RuntimeError(f"cell {key!r} failed after {retries} "
                           f"retr{'y' if retries == 1 else 'ies'}: {error}")
    return report


def _execute_serial(runner, work, retries, on_error, labels_for, registry,
                    record, report) -> None:
    from contextlib import nullcontext

    for key in work:
        try:
            # The cell scope is single-use: rebuild it per attempt.
            error = None
            value = float("nan")
            for _ in range(1 + retries):
                scope = registry.cell(**labels_for(key)) \
                    if registry is not None and labels_for is not None \
                    else nullcontext()
                try:
                    with scope:
                        value, error = float(runner(key)), None
                    break
                except Exception as exc:  # noqa: BLE001
                    error = exc
            if error is not None and on_error == "raise":
                raise error  # fail fast with the original exception
            record(key, value, None if error is None else
                   f"{type(error).__name__}: {error}")
        except KeyboardInterrupt:
            report.interrupted = True
            return


def _execute_pool(runner, work, ctx, jobs, retries, record, report) -> None:
    """Sliding-window pool execution with graceful Ctrl-C draining."""
    global _WORKER
    _WORKER = (runner, retries)  # inherited by the forked workers
    pool = ctx.Pool(processes=jobs, initializer=_pool_initializer)
    try:
        it = iter(work)
        next_key = next(it, _DONE)
        outstanding = {}
        while outstanding or (next_key is not _DONE
                              and not report.interrupted):
            try:
                while not report.interrupted and next_key is not _DONE \
                        and len(outstanding) < jobs:
                    outstanding[next_key] = pool.apply_async(
                        _pool_run, (next_key,))
                    next_key = next(it, _DONE)
                ready = [k for k, ar in outstanding.items() if ar.ready()]
                if not ready:
                    time.sleep(0.005)
                    continue
                for k in ready:
                    _, value, error = outstanding.pop(k).get()
                    record(k, value, error)
            except KeyboardInterrupt:
                if report.interrupted:
                    raise  # second Ctrl-C: abort hard
                report.interrupted = True
                print(f"\n[campaign] interrupted — draining "
                      f"{len(outstanding)} in-flight cell(s) "
                      f"(Ctrl-C again to abort)", file=sys.stderr)
    finally:
        _WORKER = None
        pool.terminate()
        pool.join()
