"""Declarative campaign specs: a grid of sweep cells with stable IDs.

A :class:`CampaignSpec` names one experiment runner (see
:mod:`repro.campaign.runners`) and the axes of a sweep grid — graphs,
variants, a thread (or fault-intensity) axis, machine configuration and
seeds.  :meth:`CampaignSpec.expand` turns the grid into a deterministic
list of :class:`CellSpec` objects; each cell canonicalises to JSON
(sorted keys, compact) and hashes to a stable :meth:`~CellSpec.cell_id`,
which is also the basis of the content-addressed result store key
(:mod:`repro.campaign.store`).

Specs round-trip through plain dicts / JSON files so campaigns can live
in version control next to the figures they regenerate (see
``benchmarks/campaign_ci.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import canonical_json, sha256_hex

__all__ = ["CellSpec", "CampaignSpec", "AXES"]

#: Meanings the third grid coordinate can take.  ``threads`` is the
#: normal thread sweep; ``intensity`` reuses the axis for the fault
#: experiments' percent scale (mirroring how ``run_panel`` sweeps fault
#: intensity on its thread axis).
AXES = ("threads", "intensity")

_SPEC_KEYS = {"name", "experiment", "graphs", "variants", "threads",
              "axis", "machine", "seeds", "params"}


@dataclass(frozen=True)
class CellSpec:
    """One cell of a campaign grid — the unit of execution and caching.

    ``params`` is stored as a sorted tuple of items so cells stay
    hashable; :meth:`to_dict` renders it back to a dict.
    """

    experiment: str
    graph: str
    variant: str
    threads: int
    axis: str = "threads"
    machine: str = "KNF"
    seed: int = 0
    params: tuple = ()

    def to_dict(self) -> dict:
        """Canonical dict form (the content that is hashed)."""
        return {
            "experiment": self.experiment, "graph": self.graph,
            "variant": self.variant, "threads": self.threads,
            "axis": self.axis, "machine": self.machine, "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        """Inverse of :meth:`to_dict`."""
        params = data.get("params", {})
        return cls(experiment=data["experiment"], graph=data["graph"],
                   variant=data["variant"], threads=int(data["threads"]),
                   axis=data.get("axis", "threads"),
                   machine=data.get("machine", "KNF"),
                   seed=int(data.get("seed", 0)),
                   params=tuple(sorted(params.items())))

    @property
    def cell_id(self) -> str:
        """Deterministic short ID (SHA-256 of the canonical spec)."""
        return sha256_hex(canonical_json(self.to_dict()))[:16]

    def label(self) -> str:
        """Human-readable ``graph/variant@threads`` coordinate."""
        unit = "%" if self.axis == "intensity" else "t"
        return f"{self.graph}/{self.variant}@{self.threads}{unit}"


@dataclass
class CampaignSpec:
    """A declarative grid of cells (JSON-serialisable).

    ``threads`` is the sweep axis; with ``axis="intensity"`` its values
    are fault intensities in percent instead of thread counts (the fault
    runners take intensity where the others take threads).
    """

    name: str
    experiment: str
    graphs: list = field(default_factory=list)
    variants: list = field(default_factory=list)
    threads: list = field(default_factory=list)
    axis: str = "threads"
    machine: str = "KNF"
    seeds: list = field(default_factory=lambda: [0])
    params: dict = field(default_factory=dict)

    # ----- construction ----------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Build and validate a spec from its dict/JSON form."""
        if not isinstance(data, dict):
            raise ValueError(f"campaign spec must be a JSON object, "
                             f"got {type(data).__name__}")
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise ValueError(f"campaign spec has unknown keys {unknown} "
                             f"(known: {sorted(_SPEC_KEYS)})")
        for required in ("name", "experiment"):
            if not data.get(required):
                raise ValueError(f"campaign spec needs a non-empty "
                                 f"{required!r}")
        spec = cls(name=str(data["name"]), experiment=str(data["experiment"]),
                   graphs=list(data.get("graphs", [])),
                   variants=list(data.get("variants", [])),
                   threads=list(data.get("threads", [])),
                   axis=data.get("axis", "threads"),
                   machine=data.get("machine", "KNF"),
                   seeds=list(data.get("seeds", [0])),
                   params=dict(data.get("params", {})))
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        """Load a spec from a JSON file (clear error on bad JSON)."""
        import json
        import os
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (round-trips)."""
        return {"name": self.name, "experiment": self.experiment,
                "graphs": list(self.graphs), "variants": list(self.variants),
                "threads": list(self.threads), "axis": self.axis,
                "machine": self.machine, "seeds": list(self.seeds),
                "params": dict(self.params)}

    # ----- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ValueError` on any inconsistency.

        Reuses the harness' validated thread parsing so a bad thread
        count in a spec file fails with the same message as a bad
        ``REPRO_THREADS`` entry, and checks graphs against the suite and
        variants against the runner registry.
        """
        from repro.campaign.runners import known_variants, runner_names
        from repro.experiments.harness import parse_thread_counts
        from repro.graph.suite import SUITE

        if self.experiment not in runner_names():
            raise ValueError(
                f"campaign {self.name!r}: unknown experiment "
                f"{self.experiment!r} (known: {sorted(runner_names())})")
        if self.axis not in AXES:
            raise ValueError(f"campaign {self.name!r}: axis must be one of "
                             f"{AXES}, got {self.axis!r}")
        unknown = [g for g in self.graphs if g not in SUITE]
        if unknown:
            raise ValueError(f"campaign {self.name!r}: unknown graphs "
                             f"{unknown} (suite: {list(SUITE)})")
        if not self.graphs:
            raise ValueError(f"campaign {self.name!r}: no graphs")
        if not self.variants:
            raise ValueError(f"campaign {self.name!r}: no variants")
        known = known_variants(self.experiment)
        if known is not None:
            bad = [v for v in self.variants if v not in known]
            if bad:
                raise ValueError(
                    f"campaign {self.name!r}: unknown variants {bad} for "
                    f"experiment {self.experiment!r} (known: {sorted(known)})")
        if self.axis == "intensity":
            bad = [t for t in self.threads
                   if not isinstance(t, int) or not 0 <= t <= 100]
            if bad or not self.threads:
                raise ValueError(
                    f"campaign {self.name!r}: intensity axis values must be "
                    f"integers in 0..100, got {self.threads}")
        else:
            parse_thread_counts(self.threads,
                                source=f"campaign {self.name!r} threads")
        if self.machine not in ("KNF", "HOST_XEON"):
            raise ValueError(f"campaign {self.name!r}: machine must be KNF "
                             f"or HOST_XEON, got {self.machine!r}")
        if not self.seeds:
            raise ValueError(f"campaign {self.name!r}: no seeds")
        for s in self.seeds:
            if not isinstance(s, int) or s < 0:
                raise ValueError(f"campaign {self.name!r}: seeds must be "
                                 f"non-negative integers, got {self.seeds}")

    # ----- expansion -------------------------------------------------------

    def expand(self) -> list:
        """The grid's cells, in deterministic spec order.

        Order is graphs (outer) × variants × axis values × seeds (inner)
        — stable for a given spec, so resumable executions and progress
        counts line up across runs.
        """
        params = tuple(sorted(self.params.items()))
        return [CellSpec(experiment=self.experiment, graph=g, variant=v,
                         threads=t, axis=self.axis, machine=self.machine,
                         seed=s, params=params)
                for g in self.graphs for v in self.variants
                for t in self.threads for s in self.seeds]
