"""Supervised campaign workers: crash-safe parallel cell execution.

The old executor drove a bare ``multiprocessing.Pool`` with
``apply_async`` and polled the result handles — which never become ready
when the worker behind them is OOM-killed, segfaults or hangs, so one
dead child wedged the whole campaign.  This module replaces the pool
with **per-worker child processes the parent actively supervises**:

* each worker is a ``fork``-ed child with its own duplex pipe, tracked
  by pid; every scheduler tick the parent sweeps liveness
  (``Process.is_alive``) and per-cell deadlines — the heartbeat;
* a worker that dies mid-cell (SIGKILL, OOM, segfault) is detected,
  its in-flight cell is **requeued deterministically** (same attempt
  number, original submission order) and a replacement worker is forked;
  a cell that keeps killing its workers is failed after a bounded number
  of requeues instead of looping forever;
* a cell that exceeds ``REPRO_CELL_TIMEOUT`` wall-clock seconds has its
  worker SIGKILLed and replaced; the timeout consumes one retry attempt
  (a hang is a runner bug, not infrastructure noise);
* failed attempts retry after **seeded exponential backoff with
  jitter** (:func:`repro._util.backoff_delay` — the delay is a pure
  function of the cell id and attempt number, no wall-clock entropy, so
  schedules replay identically and the determinism lint stays clean);
* a per-runner-family **circuit breaker** short-circuits the remaining
  cells of a family after K consecutive final failures
  (``REPRO_BREAKER_THRESHOLD``), letting every Nth candidate through as
  a half-open probe; one probe success closes the breaker.

Results are keyed, never ordered, so supervised parallel output remains
bitwise identical to a serial run.  When a :mod:`repro.obs.metrics`
registry is active the supervisor counts ``campaign.retries``,
``campaign.requeues``, ``campaign.timeouts``, ``campaign.worker_deaths``
and ``campaign.breaker{event=...}`` transitions.
"""

from __future__ import annotations

import heapq
import signal
import sys
import time
from dataclasses import dataclass

from repro._util import backoff_delay, env_float, env_int

__all__ = ["Supervisor", "SupervisorStats", "CircuitBreaker",
           "cell_timeout", "breaker_threshold", "DEFAULT_REQUEUE_LIMIT"]

#: Scheduler tick: the liveness/deadline sweep period in seconds.
_TICK = 0.05

#: A cell whose worker dies this many times is failed, not requeued —
#: the bound that keeps a segfault-on-input cell from cycling forever.
DEFAULT_REQUEUE_LIMIT = 5

#: Every Nth short-circuited candidate runs as a half-open probe.
DEFAULT_PROBE_EVERY = 10


def cell_timeout() -> float | None:
    """Per-cell wall-clock timeout from ``REPRO_CELL_TIMEOUT`` (seconds).

    Unset or ``0`` disables the deadline (None).
    """
    value = env_float("REPRO_CELL_TIMEOUT", None, lo=0.0)
    return None if not value else value


def breaker_threshold() -> int:
    """Circuit-breaker trip threshold from ``REPRO_BREAKER_THRESHOLD``.

    K consecutive final failures of one runner family open the breaker;
    ``0`` disables it.  The default (25) is far above any retry noise a
    healthy campaign produces.
    """
    value = env_int("REPRO_BREAKER_THRESHOLD", 25, lo=0)
    return int(value or 0)


def _backoff_base() -> float:
    return float(env_float("REPRO_BACKOFF_BASE", 0.05, lo=0.0))


def _backoff_cap() -> float:
    return float(env_float("REPRO_BACKOFF_MAX", 2.0, lo=0.001))


@dataclass
class SupervisorStats:
    """Resilience accounting for one supervised execution."""

    retries: int = 0            # failed attempts re-dispatched
    requeues: int = 0           # in-flight cells requeued after a death
    timeouts: int = 0           # workers killed for exceeding the deadline
    worker_deaths: int = 0      # children that vanished mid-cell
    workers_spawned: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    short_circuited: int = 0    # cells failed fast by an open breaker
    busy_seconds: float = 0.0   # summed worker wall time holding a cell

    def to_dict(self) -> dict:
        return {"retries": self.retries, "requeues": self.requeues,
                "timeouts": self.timeouts,
                "worker_deaths": self.worker_deaths,
                "workers_spawned": self.workers_spawned,
                "breaker_opens": self.breaker_opens,
                "breaker_closes": self.breaker_closes,
                "short_circuited": self.short_circuited,
                "busy_seconds": self.busy_seconds}


class CircuitBreaker:
    """K-consecutive-failures breaker with half-open probes.

    Tracks one runner family.  ``admit()`` answers "run this cell?"
    three ways: ``"run"`` (closed), ``"probe"`` (open, but this
    candidate is the periodic half-open probe) or ``"short"`` (open —
    fail fast).  A probe success closes the breaker; failures while
    open keep it open.
    """

    def __init__(self, threshold: int,
                 probe_every: int = DEFAULT_PROBE_EVERY):
        if probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        self.threshold = threshold
        self.probe_every = probe_every
        self.consecutive = 0
        self.open = False
        self._skipped = 0

    def admit(self) -> str:
        if self.threshold <= 0 or not self.open:
            return "run"
        self._skipped += 1
        if self._skipped % self.probe_every == 0:
            return "probe"
        return "short"

    def record_success(self) -> bool:
        """Note a final success; returns True when this closed the
        breaker (a half-open probe came back healthy)."""
        was_open = self.open
        self.consecutive = 0
        self.open = False
        self._skipped = 0
        return was_open

    def record_failure(self) -> bool:
        """Note a final failure; returns True when this opened the
        breaker (the K-th consecutive failure)."""
        self.consecutive += 1
        if self.threshold > 0 and not self.open \
                and self.consecutive >= self.threshold:
            self.open = True
            self._skipped = 0
            return True
        return False


class _Worker:
    """One supervised child process and its pipe."""

    __slots__ = ("proc", "conn", "item", "started", "probe")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.item = None        # (seq, attempt, key) in flight, or None
        self.started = 0.0      # monotonic dispatch time
        self.probe = False      # dispatched as a half-open probe

    @property
    def busy(self) -> bool:
        return self.item is not None


def _worker_main(conn, runner) -> None:
    """Child loop: one cell per request, one attempt per dispatch.

    Retries (and their backoff) live in the parent so that a retry can
    land on a different worker than the attempt that failed.  Workers
    ignore SIGINT — Ctrl-C is the parent's drain protocol.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "exit":
            return
        key = message[1]
        try:
            value, error = float(runner(key)), None
        except BaseException as exc:  # noqa: BLE001 — cell isolation
            value, error = float("nan"), f"{type(exc).__name__}: {exc}"
        try:
            conn.send(("done", value, error))
        except (BrokenPipeError, OSError):
            return


class Supervisor:
    """Run cells on supervised workers; deliver final outcomes to a
    callback.

    Parameters
    ----------
    runner : callable
        ``runner(key) -> cycles`` (forked into every worker).
    ctx : multiprocessing context
        Must support ``fork`` (callers guard on this).
    jobs : int
        Maximum concurrent workers.
    retries : int
        Per-cell retry budget (a timeout consumes an attempt; a worker
        death does not — deaths have their own requeue bound).
    timeout : float | None
        Per-cell wall-clock deadline in seconds
        (default ``REPRO_CELL_TIMEOUT``; None/0 = no deadline).
    key_id : callable
        ``key -> str`` stable identity, seeds the backoff jitter.
    family_for : callable | None
        ``key -> str`` runner family for the circuit breaker (None =
        one family for the whole run).
    on_result : callable
        ``on_result(key, value, error_or_None)`` — fired exactly once
        per cell with its final outcome, in the parent.
    """

    def __init__(self, runner, ctx, jobs: int, *, retries: int = 0,
                 timeout: float | None = None, key_id=str,
                 family_for=None, threshold: int | None = None,
                 probe_every: int = DEFAULT_PROBE_EVERY,
                 requeue_limit: int = DEFAULT_REQUEUE_LIMIT,
                 backoff_base: float | None = None,
                 backoff_cap: float | None = None):
        self.runner = runner
        self.ctx = ctx
        self.jobs = max(1, jobs)
        self.retries = retries
        self.timeout = cell_timeout() if timeout is None else (timeout or None)
        self.key_id = key_id
        self.family_for = family_for or (lambda key: "all")
        self.threshold = breaker_threshold() if threshold is None \
            else threshold
        self.probe_every = probe_every
        self.requeue_limit = requeue_limit
        self.backoff_base = _backoff_base() if backoff_base is None \
            else backoff_base
        self.backoff_cap = _backoff_cap() if backoff_cap is None \
            else backoff_cap
        self.stats = SupervisorStats()
        self.interrupted = False
        self._breakers: dict[str, CircuitBreaker] = {}
        self._requeues: dict[object, int] = {}
        self._workers: list[_Worker] = []
        self._pending: list = []    # heap of (ready_at, seq, attempt, key)
        self._registry = None

    # ----- public surface --------------------------------------------------

    def pids(self) -> list[int]:
        """Live worker pids (chaos harnesses kill from this list)."""
        return [w.proc.pid for w in self._workers
                if w.proc.pid is not None and w.proc.is_alive()]

    def run(self, work, on_result) -> bool:
        """Execute *work*; returns True when interrupted by Ctrl-C.

        The first KeyboardInterrupt stops dispatch and drains in-flight
        cells (their results still reach *on_result*); a second one
        kills the workers and re-raises.
        """
        from repro.obs import metrics as _obs_metrics
        self._registry = _obs_metrics.active()
        for seq, key in enumerate(work):
            heapq.heappush(self._pending, (0.0, seq, 1, key))
        try:
            while self._pending or any(w.busy for w in self._workers):
                try:
                    self._dispatch(on_result)
                    self._wait()
                    self._collect(on_result)
                except KeyboardInterrupt:
                    if self.interrupted:
                        raise  # second Ctrl-C: abort hard
                    self.interrupted = True
                    dropped = len(self._pending)
                    self._pending.clear()
                    in_flight = sum(w.busy for w in self._workers)
                    print(f"\n[campaign] interrupted — draining "
                          f"{in_flight} in-flight cell(s), dropping "
                          f"{dropped} pending (Ctrl-C again to abort)",
                          file=sys.stderr)
        finally:
            self._shutdown()
        return self.interrupted

    # ----- scheduling ------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        if self._registry is not None:
            self._registry.incr(name, **labels)

    def _breaker(self, key) -> CircuitBreaker:
        family = self.family_for(key)
        breaker = self._breakers.get(family)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.probe_every)
            self._breakers[family] = breaker
        return breaker

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(target=_worker_main,
                                args=(child_conn, self.runner), daemon=True)
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        self._workers.append(worker)
        self.stats.workers_spawned += 1
        return worker

    def _idle_worker(self) -> "_Worker | None":
        for worker in self._workers:
            if not worker.busy and worker.proc.is_alive():
                return worker
        if len(self._workers) < self.jobs:
            return self._spawn()
        return None

    def _dispatch(self, on_result) -> None:
        """Hand ready pending cells to idle workers (breaker gate)."""
        now = time.monotonic()
        while self._pending and self._pending[0][0] <= now:
            _, seq, attempt, key = self._pending[0]
            breaker = self._breaker(key)
            verdict = breaker.admit()
            if verdict == "short":
                heapq.heappop(self._pending)
                self.stats.short_circuited += 1
                self._count("campaign.breaker", event="short_circuit")
                self._finish(key, float("nan"),
                             f"circuit breaker open for "
                             f"{self.family_for(key)!r} "
                             f"({breaker.consecutive} consecutive "
                             f"failures)", on_result)
                continue
            worker = self._idle_worker()
            if worker is None:
                return
            heapq.heappop(self._pending)
            worker.item = (seq, attempt, key)
            worker.started = now
            worker.probe = verdict == "probe"
            if worker.probe:
                self._count("campaign.breaker", event="probe")
            try:
                worker.conn.send(("run", key))
            except (BrokenPipeError, OSError):
                # Died between liveness check and send: requeue below.
                self._on_death(worker, on_result)

    def _wait(self) -> None:
        """Sleep until a result may be ready (bounded by the tick)."""
        from multiprocessing import connection
        conns = [w.conn for w in self._workers if w.busy]
        if conns:
            connection.wait(conns, timeout=_TICK)
        else:
            time.sleep(_TICK if self._pending else 0.0)

    def _collect(self, on_result) -> None:
        """Heartbeat sweep: results, deaths, and blown deadlines."""
        now = time.monotonic()
        for worker in list(self._workers):
            if not worker.busy:
                continue
            message = None
            try:
                if worker.conn.poll():
                    message = worker.conn.recv()
            except (EOFError, OSError):
                message = None
            if message is not None:
                seq, attempt, key = worker.item
                worker.item = None
                self.stats.busy_seconds += max(0.0, now - worker.started)
                _, value, error = message
                self._settle(key, seq, attempt, value, error, now,
                             on_result)
            elif not worker.proc.is_alive():
                self._on_death(worker, on_result)
            elif self.timeout is not None \
                    and now - worker.started > self.timeout:
                self._on_timeout(worker, now, on_result)

    # ----- outcome handling ------------------------------------------------

    def _settle(self, key, seq: int, attempt: int, value, error,
                now: float, on_result) -> None:
        """A worker returned: record, retry with backoff, or fail."""
        if error is None:
            self._finish(key, value, None, on_result)
            return
        if attempt <= self.retries and not self.interrupted:
            self.stats.retries += 1
            self._count("campaign.retries")
            delay = backoff_delay(self.key_id(key), attempt,
                                  base=self.backoff_base,
                                  cap=self.backoff_cap)
            heapq.heappush(self._pending,
                           (now + delay, seq, attempt + 1, key))
        else:
            self._finish(key, value, error, on_result)

    def _on_death(self, worker: _Worker, on_result) -> None:
        """A worker vanished mid-cell: requeue its cell, replace it."""
        seq, attempt, key = worker.item
        worker.item = None
        self.stats.busy_seconds += max(0.0, time.monotonic() - worker.started)
        exitcode = worker.proc.exitcode
        self._discard(worker)
        self.stats.worker_deaths += 1
        self._count("campaign.worker_deaths")
        requeues = self._requeues.get(key, 0) + 1
        self._requeues[key] = requeues
        if requeues > self.requeue_limit or self.interrupted:
            self._finish(key, float("nan"),
                         f"worker died {requeues} time(s) running this "
                         f"cell (last exitcode {exitcode})", on_result)
            return
        self.stats.requeues += 1
        self._count("campaign.requeues")
        # Same attempt number and original sequence: the death was the
        # infrastructure's fault, so it does not consume retry budget
        # and the cell goes back deterministically where it was.
        heapq.heappush(self._pending, (time.monotonic(), seq, attempt, key))

    def _on_timeout(self, worker: _Worker, now: float, on_result) -> None:
        """Deadline blown: SIGKILL the worker, charge a retry attempt."""
        seq, attempt, key = worker.item
        worker.item = None
        self.stats.busy_seconds += max(0.0, now - worker.started)
        self._discard(worker, kill=True)
        self.stats.timeouts += 1
        self._count("campaign.timeouts")
        self._settle(key, seq, attempt, float("nan"),
                     f"cell exceeded REPRO_CELL_TIMEOUT "
                     f"({self.timeout:g}s)", now, on_result)

    def _finish(self, key, value, error, on_result) -> None:
        """Deliver a final outcome and feed the circuit breaker."""
        breaker = self._breaker(key)
        if error is None:
            if breaker.record_success():
                self.stats.breaker_closes += 1
                self._count("campaign.breaker", event="close")
        else:
            if breaker.record_failure():
                self.stats.breaker_opens += 1
                self._count("campaign.breaker", event="open")
        on_result(key, value, error)

    # ----- teardown --------------------------------------------------------

    def _discard(self, worker: _Worker, kill: bool = False) -> None:
        self._workers.remove(worker)
        if kill and worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=1.0)
        if worker.proc.is_alive():  # pragma: no cover — stuck in a syscall
            worker.proc.terminate()
        worker.conn.close()

    def _shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=0.5)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
            worker.conn.close()
        self._workers.clear()
