"""Chaos harness: prove campaigns survive process-level mayhem.

``repro chaos SPEC.json`` runs one campaign three times and demands the
same bytes every time:

1. **clean baseline** — serial, in-process, no faults: the ground-truth
   per-cell results payload;
2. **chaotic run** — parallel under the supervised executor while
   injecting process-level faults chosen by a seeded RNG:

   * *worker SIGKILL*: the victim cell's first attempt kills its own
     worker with ``SIGKILL`` mid-cell (indistinguishable, from the
     supervisor's side, from the OOM killer) — supervision must detect
     the death, requeue the cell and replace the worker;
   * *runner hang*: the victim cell's first attempt sleeps past the
     cell deadline — the supervisor must SIGKILL the hung worker and
     retry;
   * *runner exception*: the victim cell's first attempt raises — the
     retry/backoff path must recover it;
   * *store truncation*: mid-run, a just-written store object is
     truncated on disk — integrity checksums must quarantine it later
     instead of serving garbage;

3. **warm re-run** — over the chaos store (now containing the truncated
   object): corrupt entries must be quarantined and recomputed.

Every fault is **injected exactly once per victim cell** via marker
files in ``REPRO_CHAOS_DIR`` (created with ``O_EXCL``), so retries
succeed and the final report must be *byte-identical* to the clean
baseline — the property that makes scalability sweeps trustworthy on
flaky hardware.  Victim selection is seeded (``--seed``); nothing in
the harness reads wall-clock entropy.

The worker-side hooks are plain environment variables
(``REPRO_CHAOS_KILL_CELLS`` / ``REPRO_CHAOS_HANG_CELLS`` /
``REPRO_CHAOS_FAIL_CELLS`` — csv lists of cell ids — plus
``REPRO_CHAOS_DIR`` and ``REPRO_CHAOS_HANG_SECONDS``), so any runner
executed through :func:`chaos_run_cell` can be faulted without code
changes.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro._util import env_csv, env_float, env_str

__all__ = ["chaos_run_cell", "run_chaos", "ChaosReport", "main"]


class ChaosInjectedError(RuntimeError):
    """The synthetic failure raised for ``REPRO_CHAOS_FAIL_CELLS``."""


def _once(marker_dir: str, kind: str, cell_id: str) -> bool:
    """True exactly once per (kind, cell): atomically claim the marker."""
    path = os.path.join(marker_dir, f"{kind}-{cell_id}")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def chaos_run_cell(cell) -> float:
    """Run one campaign cell with the env-configured faults applied.

    Drop-in replacement for :func:`repro.campaign.runners.run_cell`
    inside chaos runs.  Each configured fault fires on the *first*
    attempt of its victim cell only (marker files make "first" exact
    across worker replacements), so supervised retries converge on the
    clean result.
    """
    from repro.campaign.runners import run_cell
    from repro.campaign.spec import CellSpec
    if isinstance(cell, dict):
        cell = CellSpec.from_dict(cell)
    marker_dir = env_str("REPRO_CHAOS_DIR")
    if marker_dir:
        cell_id = cell.cell_id
        if cell_id in (env_csv("REPRO_CHAOS_KILL_CELLS") or []) \
                and _once(marker_dir, "kill", cell_id):
            os.kill(os.getpid(), signal.SIGKILL)
        if cell_id in (env_csv("REPRO_CHAOS_HANG_CELLS") or []) \
                and _once(marker_dir, "hang", cell_id):
            time.sleep(float(env_float("REPRO_CHAOS_HANG_SECONDS", 3600.0,
                                       lo=0.0)))
        if cell_id in (env_csv("REPRO_CHAOS_FAIL_CELLS") or []) \
                and _once(marker_dir, "fail", cell_id):
            raise ChaosInjectedError(f"injected failure for cell {cell_id}")
    return run_cell(cell)


@dataclass
class ChaosReport:
    """What the harness did and whether the invariants held."""

    cells: int = 0
    kills: list = field(default_factory=list)       # victim cell ids
    hangs: list = field(default_factory=list)
    fails: list = field(default_factory=list)
    truncated: list = field(default_factory=list)   # store paths
    chaos_identical: bool = False       # chaotic bytes == clean bytes
    warm_identical: bool = False        # warm re-run bytes == clean bytes
    quarantined: int = 0                # corrupt objects caught on re-run
    resilience: dict = field(default_factory=dict)
    clean_seconds: float = 0.0
    chaos_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        injected = self.kills or self.hangs or self.fails or self.truncated
        return bool(self.chaos_identical and self.warm_identical
                    and injected
                    and self.quarantined >= len(self.truncated))

    def to_dict(self) -> dict:
        return {"cells": self.cells, "kills": self.kills,
                "hangs": self.hangs, "fails": self.fails,
                "truncated": [os.path.basename(p) for p in self.truncated],
                "chaos_identical": self.chaos_identical,
                "warm_identical": self.warm_identical,
                "quarantined": self.quarantined,
                "resilience": self.resilience, "ok": self.ok}


def _payload_bytes(spec, cells, report) -> bytes:
    from repro.campaign.cli import campaign_results_dict
    payload = campaign_results_dict(spec, cells, report)
    return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()


def _pick_victims(cells, rng, kills: int, hangs: int, fails: int):
    """Disjoint victim cell-id sets, deterministically sampled."""
    ids = [c.cell_id for c in cells]
    want = min(kills + hangs + fails, len(ids))
    chosen = [ids[i] for i in
              sorted(rng.choice(len(ids), size=want, replace=False))]
    kills = min(kills, len(chosen))
    hangs = min(hangs, len(chosen) - kills)
    return (chosen[:kills], chosen[kills:kills + hangs],
            chosen[kills + hangs:])


class _ChaosEnv:
    """Pin the chaos env hooks for one run; restore afterwards."""

    _VARS = ("REPRO_CHAOS_DIR", "REPRO_CHAOS_KILL_CELLS",
             "REPRO_CHAOS_HANG_CELLS", "REPRO_CHAOS_FAIL_CELLS",
             "REPRO_CHAOS_HANG_SECONDS")

    def __init__(self, marker_dir, kills, hangs, fails, hang_seconds):
        self.values = {
            "REPRO_CHAOS_DIR": marker_dir,
            "REPRO_CHAOS_KILL_CELLS": ",".join(kills),
            "REPRO_CHAOS_HANG_CELLS": ",".join(hangs),
            "REPRO_CHAOS_FAIL_CELLS": ",".join(fails),
            "REPRO_CHAOS_HANG_SECONDS": str(hang_seconds),
        }
        self.saved: dict = {}

    def __enter__(self) -> "_ChaosEnv":
        for name in self._VARS:
            # Save/restore raw values; chaos_run_cell holds the
            # validated readers for these variables.
            self.saved[name] = os.environ.get(name)
            os.environ[name] = self.values[name]
        return self

    def __exit__(self, *exc: object) -> None:
        for name, old in self.saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old


def run_chaos(spec, *, jobs: int = 2, kills: int = 1, hangs: int = 1,
              fails: int = 1, truncate: int = 1, seed: int = 0,
              retries: int | None = None, timeout: float = 45.0,
              workdir: str | None = None,
              progress: bool = False) -> ChaosReport:
    """Execute the three-phase chaos protocol for *spec*.

    Stores, journals and fault markers live under *workdir* (a temp
    directory by default).  *retries* is forced to at least 1 — hang
    and exception injections consume one attempt by design.  Returns a
    :class:`ChaosReport`; ``report.ok`` is the pass/fail verdict.
    """
    import tempfile
    from repro.campaign.executor import execute
    from repro.campaign.runners import run_cell
    from repro.campaign.store import ResultStore

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    marker_dir = os.path.join(workdir, "markers")
    os.makedirs(marker_dir, exist_ok=True)

    cells = spec.expand()
    rng = np.random.default_rng(seed)
    kill_ids, hang_ids, fail_ids = _pick_victims(cells, rng, kills, hangs,
                                                 fails)
    report = ChaosReport(cells=len(cells), kills=kill_ids, hangs=hang_ids,
                         fails=fail_ids)
    retries = max(1, retries if retries is not None else 1)

    common = dict(
        spec_for=lambda c: c.to_dict(), key_id=lambda c: c.cell_id,
        family_for=lambda c: c.experiment, progress=progress)

    # Phase 1: clean serial baseline.
    t0 = time.time()
    clean_store = ResultStore(os.path.join(workdir, "store-clean"))
    clean = execute(run_cell, cells, jobs=1, retries=retries,
                    store=clean_store, desc="cells (clean)", **common)
    report.clean_seconds = time.time() - t0
    clean_bytes = _payload_bytes(spec, cells, clean)

    # Phase 2: chaotic parallel run.  Truncation victims: after the
    # Nth computed cell lands in the store, damage its object in place.
    chaos_store = ResultStore(os.path.join(workdir, "store-chaos"))
    to_truncate = min(truncate, len(cells))

    def truncate_hook(cell, value) -> None:
        if len(report.truncated) >= to_truncate:
            return
        path = chaos_store._path(chaos_store.key(cell.to_dict()))
        if not os.path.isfile(path):
            return  # a failed/NaN cell is never stored
        # repro: ignore[crash-bare-write] deliberate fault injection:
        # the chaos harness corrupts a stored object in place to prove
        # the store's recovery path detects and repairs it.
        with open(path, "r+", encoding="utf-8") as fh:
            fh.truncate(max(0, os.path.getsize(path) // 2))
        report.truncated.append(path)

    t0 = time.time()
    with _ChaosEnv(marker_dir, kill_ids, hang_ids, fail_ids,
                   hang_seconds=max(timeout * 10, 600.0)):
        chaotic = execute(chaos_run_cell, cells, jobs=max(2, jobs),
                          retries=retries, store=chaos_store,
                          timeout=timeout, on_cell=truncate_hook,
                          desc="cells (chaos)", **common)
    report.chaos_seconds = time.time() - t0
    report.resilience = dict(chaotic.resilience)
    report.chaos_identical = _payload_bytes(spec, cells,
                                            chaotic) == clean_bytes

    # Phase 3: warm re-run over the damaged store — corrupt objects
    # must be quarantined and recomputed, not served.
    with _ChaosEnv(marker_dir, kill_ids, hang_ids, fail_ids,
                   hang_seconds=max(timeout * 10, 600.0)):
        warm = execute(chaos_run_cell, cells, jobs=1, retries=retries,
                       store=chaos_store, desc="cells (warm)", **common)
    report.quarantined = chaos_store.stats.quarantined
    report.warm_identical = _payload_bytes(spec, cells, warm) == clean_bytes
    return report


def main(argv=None) -> int:
    """Entry point for ``repro chaos ...`` (returns the exit code)."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run a campaign under injected process-level faults "
                    "(worker SIGKILL, runner hangs/exceptions, store "
                    "corruption) and fail unless the results are "
                    "byte-identical to a clean serial run.")
    parser.add_argument("spec", help="campaign spec JSON file")
    parser.add_argument("--jobs", type=int, default=2,
                        help="workers for the chaotic run (min 2)")
    parser.add_argument("--kills", type=int, default=1,
                        help="cells whose worker is SIGKILLed mid-cell")
    parser.add_argument("--hangs", type=int, default=1,
                        help="cells whose first attempt hangs past the "
                             "deadline")
    parser.add_argument("--fails", type=int, default=1,
                        help="cells whose first attempt raises")
    parser.add_argument("--truncate", type=int, default=1,
                        help="store objects truncated mid-run")
    parser.add_argument("--seed", type=int, default=0,
                        help="victim-selection seed")
    parser.add_argument("--retries", type=int, default=None,
                        help="per-cell retry budget (min 1)")
    parser.add_argument("--timeout", type=float, default=45.0,
                        help="per-cell deadline for the chaotic run "
                             "(seconds)")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="stores/markers live here (default: temp dir)")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH", help="write the chaos report JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    from repro.campaign.spec import CampaignSpec
    try:
        spec = CampaignSpec.from_file(args.spec)
        report = run_chaos(spec, jobs=args.jobs, kills=args.kills,
                           hangs=args.hangs, fails=args.fails,
                           truncate=args.truncate, seed=args.seed,
                           retries=args.retries, timeout=args.timeout,
                           workdir=args.workdir,
                           progress=not args.quiet)
    except (ValueError, OSError) as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2

    print(f"chaos {spec.name}: {report.cells} cell(s); "
          f"injected {len(report.kills)} kill(s), "
          f"{len(report.hangs)} hang(s), {len(report.fails)} "
          f"exception(s), {len(report.truncated)} truncation(s)")
    res = report.resilience
    print(f"  supervision: {res.get('worker_deaths', 0)} worker death(s), "
          f"{res.get('requeues', 0)} requeue(s), "
          f"{res.get('timeouts', 0)} timeout(s), "
          f"{res.get('retries', 0)} retried attempt(s)")
    print(f"  chaotic run byte-identical to clean: "
          f"{report.chaos_identical}")
    print(f"  warm re-run byte-identical to clean: {report.warm_identical} "
          f"({report.quarantined} corrupt object(s) quarantined)")
    if args.json_path:
        from repro._util import atomic_write_text
        atomic_write_text(args.json_path,
                          json.dumps(report.to_dict(), sort_keys=True,
                                     indent=1) + "\n")
    print(f"chaos verdict: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
