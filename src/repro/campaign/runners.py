"""Experiment runner registry: campaign cells → simulated cycles.

Every campaign experiment maps to one module-level adapter that turns a
:class:`~repro.campaign.spec.CellSpec` into a call of the corresponding
figure runner.  Adapters are plain importable functions — a worker
process can execute any cell from its spec dict alone, with no closures
to pickle.

Registered experiments:

``coloring``
    Figure 1/2 colouring runner; ``params.ordering`` selects the vertex
    ordering (``natural``/``random``/...), variants are the
    :data:`~repro.experiments.fig1_coloring.COLORING_VARIANTS` labels.
``bfs``
    Figure 4 layered BFS; ``params.block`` overrides the block size.
``irregular``
    Figure 3 microbenchmark; the variant is the programming model and
    ``params.iterations`` the §V-C iteration count.
``coloring-faults`` / ``bfs-faults``
    Fault-degradation runners; the grid's third axis is the fault
    intensity in percent (``axis="intensity"``) and the campaign seed
    selects the fault scenario.

Graph resolution: every adapter reaches its suite graph through
:func:`repro.graph.suite.suite_graph` (directly or via
``ordered_suite_graph``).  With ``REPRO_GRAPH_DIR`` set — worker forks
inherit it — that call resolves through the :mod:`repro.graphstore`
registry: the first process builds the ``.rgr`` file once, every other
worker and every warm rerun memory-maps it with zero generation (the
``graphstore.hits``/``graphstore.misses`` obs counters prove which path
ran).  Unset, workers regenerate in-process exactly as before.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["runner_names", "known_variants", "run_cell"]


def _machine(name: str):
    from repro.machine.config import HOST_XEON, KNF
    return {"KNF": KNF, "HOST_XEON": HOST_XEON}[name]


@contextmanager
def _fault_seed_env(seed: int):
    """Pin ``REPRO_FAULT_SEED`` for one cell, restoring the old value."""
    # repro: ignore[env-raw-read] save/restore of the previous raw value
    # around a pinned cell, not a configuration read (fault_seed() is the
    # validated consumer)
    old = os.environ.get("REPRO_FAULT_SEED")
    os.environ["REPRO_FAULT_SEED"] = str(seed)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_FAULT_SEED", None)
        else:
            os.environ["REPRO_FAULT_SEED"] = old


def _run_coloring(cell) -> float:
    from repro.experiments.fig1_coloring import coloring_cycles
    params = dict(cell.params)
    return coloring_cycles(cell.graph, cell.variant, cell.threads,
                           ordering=params.get("ordering", "natural"),
                           config=_machine(cell.machine), seed=cell.seed)


def _run_bfs(cell) -> float:
    from repro.experiments.fig4_bfs import BLOCK_SIZE, bfs_cycles
    params = dict(cell.params)
    return bfs_cycles(cell.graph, cell.variant, cell.threads,
                      config=_machine(cell.machine),
                      block=int(params.get("block", BLOCK_SIZE)),
                      seed=cell.seed)


def _run_irregular(cell) -> float:
    from repro.experiments.fig3_irregular import irregular_cycles
    params = dict(cell.params)
    iterations = int(params.get("iterations", 1))
    return irregular_cycles(cell.graph, f"{iterations} x", cell.threads,
                            model=cell.variant,
                            config=_machine(cell.machine), seed=cell.seed)


def _run_coloring_faults(cell) -> float:
    from repro.experiments.fig_faults import faulted_coloring_cycles
    with _fault_seed_env(cell.seed):
        return faulted_coloring_cycles(cell.graph, cell.variant, cell.threads)


def _run_bfs_faults(cell) -> float:
    from repro.experiments.fig_faults import faulted_bfs_cycles
    with _fault_seed_env(cell.seed):
        return faulted_bfs_cycles(cell.graph, cell.variant, cell.threads)


def _coloring_variants():
    from repro.experiments.fig1_coloring import COLORING_VARIANTS
    return set(COLORING_VARIANTS)


def _bfs_variants():
    from repro.experiments import fig4_bfs
    return set(fig4_bfs._BFS_VARIANTS)


def _irregular_variants():
    from repro.experiments.fig3_irregular import IRREGULAR_MODELS
    return set(IRREGULAR_MODELS)


def _fault_variants():
    from repro.experiments.fig_faults import FAULT_RUNTIMES
    return set(FAULT_RUNTIMES)


#: experiment name -> (cell adapter, known-variants provider or None).
_REGISTRY = {
    "coloring": (_run_coloring, _coloring_variants),
    "bfs": (_run_bfs, _bfs_variants),
    "irregular": (_run_irregular, _irregular_variants),
    "coloring-faults": (_run_coloring_faults, _fault_variants),
    "bfs-faults": (_run_bfs_faults, _fault_variants),
}


def runner_names() -> list[str]:
    """Names of every registered experiment runner."""
    return sorted(_REGISTRY)


def known_variants(experiment: str) -> set[str] | None:
    """Valid variant labels for *experiment* (None = unconstrained)."""
    provider = _REGISTRY[experiment][1]
    return provider() if provider is not None else None


def run_cell(cell) -> float:
    """Execute one campaign cell, returning simulated cycles.

    Accepts a :class:`~repro.campaign.spec.CellSpec` or its dict form
    (what a worker receives over the pool's pickle channel).
    """
    from repro.campaign.spec import CellSpec
    if isinstance(cell, dict):
        cell = CellSpec.from_dict(cell)
    try:
        adapter = _REGISTRY[cell.experiment][0]
    except KeyError:
        raise ValueError(f"unknown experiment {cell.experiment!r} "
                         f"(known: {runner_names()})") from None
    return adapter(cell)
