"""``repro campaign`` — run, inspect and maintain sweep campaigns.

Subcommands (reached through the main ``repro`` entry point)::

    repro campaign run SPEC.json [--jobs N] [--store DIR] [--retries R]
                                 [--output results.json] [--summary s.json]
    repro campaign resume RUN-ID [--jobs N] [--store DIR] [--retries R]
                                 [--output results.json] [--summary s.json]
    repro campaign status SPEC.json [--store DIR]
    repro campaign cache {stats|ls|gc|clear|verify} [--store DIR]
                                 [--max-age DAYS] [--stale-only] [--repair]

``run`` expands the spec, executes every cell through the supervised
parallel executor with the content-addressed store enabled, prints a
summary and optionally writes the per-cell results (sorted keys, no
timestamps — a repeated run over a warm store is byte-identical) and a
machine-readable summary with the store's hit/miss statistics (what CI
asserts on).  Every run also appends a checksummed write-ahead journal
under ``<store>/journals/<run-id>/`` — after a crash (``kill -9``,
power loss), ``resume RUN-ID`` replays it and continues the campaign
with zero recomputation of completed cells.  ``cache verify`` audits
every store object's integrity checksum; ``--repair`` quarantines the
corrupt ones.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

from repro._util import atomic_write_text, env_int

__all__ = ["main", "run_campaign", "campaign_results_dict"]


def run_campaign(spec, *, jobs=None, retries=None, store=None,
                 progress=False, journal=None, resume=None):
    """Execute every cell of *spec*; returns ``(cells, report)``.

    *store* may be a :class:`~repro.campaign.store.ResultStore`, a root
    path, or None for the default store; *retries* defaults to
    ``REPRO_RETRIES`` (1), matching ``run_panel``.  *journal* (a
    :class:`~repro.campaign.journal.Journal`) write-ahead-logs the run;
    *resume* (``cell-id -> value``) serves a previous run's completed
    cells without recomputation.
    """
    from repro.campaign.executor import execute
    from repro.campaign.runners import run_cell
    from repro.campaign.store import ResultStore

    if store is None or isinstance(store, (str, os.PathLike)):
        store = ResultStore(store)
    if retries is None:
        retries = env_int("REPRO_RETRIES", 1, lo=0)
    cells = spec.expand()
    report = execute(
        run_cell, cells, jobs=jobs, retries=retries, store=store,
        spec_for=lambda c: c.to_dict(),
        labels_for=lambda c: {"graph": c.graph, "variant": c.variant,
                              "threads": c.threads},
        progress=progress, desc=f"cells ({spec.name})",
        journal=journal, resume=resume,
        key_id=lambda c: c.cell_id,
        family_for=lambda c: c.experiment)
    return cells, report


def campaign_results_dict(spec, cells, report) -> dict:
    """Deterministic per-cell results payload (NaN rendered as null)."""
    results = {}
    for cell in cells:
        value = report.values.get(cell)
        entry = dict(cell.to_dict())
        entry["cycles"] = None if value is None or not math.isfinite(value) \
            else value
        error = report.errors.get(cell)
        if error is not None:
            entry["error"] = error
        results[cell.cell_id] = entry
    return {"campaign": spec.name, "spec": spec.to_dict(),
            "results": results}


def _summary_dict(spec, report, store, run_id=None) -> dict:
    return {
        "campaign": spec.name,
        "run_id": run_id,
        "cells_total": report.total,
        "hits": report.hits,
        "resumed": report.resumed,
        "computed": report.computed,
        "failed": report.failed,
        "hit_rate": report.hit_rate,
        "interrupted": report.interrupted,
        "elapsed_seconds": report.elapsed,
        "resilience": dict(report.resilience),
        "wall": report.wall(),
        "store": {"root": store.root, "fingerprint": store.fingerprint,
                  **store.stats.to_dict()},
    }


def _format_wall(wall: dict) -> str:
    """One-line rendering of a wall-clock counter block."""
    line = (f"wall: {wall['cells_per_second']:.1f} cells/s over "
            f"{wall['jobs']} worker(s), "
            f"utilization {wall['worker_utilization']:.0%}")
    if wall.get("store_gets"):
        line += (f", store lookups {wall['store_gets']} @ "
                 f"{wall['store_get_latency_s'] * 1000:.2f}ms")
    return line


def _write_wall(spec, report, store, run_id) -> None:
    """Persist the run's wall counters next to its journal.

    ``repro campaign status`` reads the newest of these back, so the
    throughput of the last run is inspectable without re-running.
    """
    from repro.campaign.journal import journal_dir
    if run_id is None:
        return
    path = os.path.join(journal_dir(store.root, run_id), "wall.json")
    atomic_write_text(path, json.dumps(
        {"campaign": spec.name, "run_id": run_id, "wall": report.wall()},
        sort_keys=True, indent=1) + "\n")


def _print_summary(spec, report, store, run_id=None) -> None:
    status = "interrupted" if report.interrupted else "complete"
    print(f"campaign {spec.name}: {status} — "
          f"{report.total} cell(s) in {report.elapsed:.1f}s")
    resumed = f", resumed {report.resumed}" if report.resumed else ""
    print(f"  store hits {report.hits}{resumed}, "
          f"computed {report.computed}, failed {report.failed} "
          f"(hit-rate {report.hit_rate:.0%})")
    print("  " + _format_wall(report.wall()))
    print(f"  store {store.root} (code fingerprint {store.fingerprint})")
    if run_id is not None:
        print(f"  journal {run_id} (resume with: repro campaign resume "
              f"{run_id})")


def _finish_run(args, spec, cells, report, store, run_id) -> int:
    """Shared tail of ``run``/``resume``: artifacts, summary, exit code."""
    if args.output:
        payload = campaign_results_dict(spec, cells, report)
        atomic_write_text(args.output, json.dumps(payload, sort_keys=True,
                                                  indent=1) + "\n")
        print(f"[results written to {args.output}]", file=sys.stderr)
    if args.summary:
        atomic_write_text(args.summary, json.dumps(
            _summary_dict(spec, report, store, run_id), sort_keys=True,
            indent=1) + "\n")
    _write_wall(spec, report, store, run_id)
    _print_summary(spec, report, store, run_id)
    if report.interrupted:
        return 130
    return 1 if report.failed else 0


def _cmd_run(args) -> int:
    from repro.campaign.journal import Journal, journal_dir, new_run_id
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import ResultStore

    spec = CampaignSpec.from_file(args.spec)
    store = ResultStore(args.store)
    run_id = new_run_id(store.root, spec.to_dict())
    with Journal.create(journal_dir(store.root, run_id), run_id=run_id,
                        campaign=spec.name, spec=spec.to_dict(),
                        fingerprint=store.fingerprint) as journal:
        cells, report = run_campaign(
            spec, jobs=args.jobs, retries=args.retries, store=store,
            progress=not args.quiet, journal=journal)
    return _finish_run(args, spec, cells, report, store, run_id)


def _cmd_resume(args) -> int:
    from repro.campaign.journal import Journal, journal_dir, list_runs
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import ResultStore

    store = ResultStore(args.store)
    runs = list_runs(store.root)
    if args.run_id not in runs:
        known = ", ".join(runs) if runs else "none"
        raise ValueError(f"no journal for run {args.run_id!r} under "
                         f"{store.root} (known runs: {known})")
    journal = Journal.open(journal_dir(store.root, args.run_id))
    state = journal.replay()
    if state.fingerprint != store.fingerprint:
        raise ValueError(
            f"run {args.run_id} was journaled under code fingerprint "
            f"{state.fingerprint}, but the tree is now "
            f"{store.fingerprint} — its results are stale; re-run the "
            f"campaign instead of resuming")
    if state.corrupt_at is not None:
        print(f"[journal corrupt at line {state.corrupt_at}; resuming "
              f"from the {len(state.completed)} cell(s) before it]",
              file=sys.stderr)
    if journal.repair(state):
        print("[journal tail repaired: dropped partial bytes from an "
              "interrupted append]", file=sys.stderr)
    spec = CampaignSpec.from_dict(state.spec)
    with journal:
        cells, report = run_campaign(
            spec, jobs=args.jobs, retries=args.retries, store=store,
            progress=not args.quiet, journal=journal,
            resume=state.completed)
    return _finish_run(args, spec, cells, report, store, args.run_id)


def _cmd_status(args) -> int:
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import ResultStore

    spec = CampaignSpec.from_file(args.spec)
    store = ResultStore(args.store)
    cells = spec.expand()
    cached = sum(store.contains(c.to_dict()) for c in cells)
    print(f"campaign {spec.name}: {len(cells)} cell(s), "
          f"{cached} cached, {len(cells) - cached} pending")
    print(f"  store {store.root} (code fingerprint {store.fingerprint})")
    last = _last_wall(store.root, spec.name)
    if last is not None:
        print(f"  last run {last['run_id']}: " + _format_wall(last["wall"]))
    return 0


def _last_wall(root, campaign: str) -> dict | None:
    """The newest persisted wall-counter block for *campaign*, if any."""
    from repro.campaign.journal import journal_dir, list_runs
    newest, newest_mtime = None, -1.0
    for run_id in list_runs(root):
        path = os.path.join(journal_dir(root, run_id), "wall.json")
        try:
            mtime = os.path.getmtime(path)
            if mtime <= newest_mtime:
                continue
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            continue
        if data.get("campaign") == campaign and "wall" in data:
            newest, newest_mtime = data, mtime
    return newest


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / 86400:.0f}d"


def _cmd_cache(args) -> int:
    from repro.campaign.store import ResultStore

    store = ResultStore(args.store)
    if args.action == "stats":
        entries = store.entries()
        current = sum(e.current for e in entries)
        size = sum(e.size_bytes for e in entries)
        print(f"store {store.root}")
        print(f"  code fingerprint {store.fingerprint}")
        print(f"  {len(entries)} object(s), {size} bytes; "
              f"{current} current, {len(entries) - current} stale")
    elif args.action == "ls":
        for e in store.entries():
            spec = e.spec if isinstance(e.spec, dict) else {}
            name = spec.get("experiment") or spec.get("panel") or "?"
            coord = (f"{name}/{spec.get('graph', '?')}/"
                     f"{spec.get('variant', '?')}@{spec.get('threads', '?')}")
            flag = " " if e.current else "!"
            print(f"{flag} {e.key[:16]}  {_format_age(e.age_seconds):>4}  "
                  f"{coord}")
    elif args.action == "gc":
        removed, kept = store.gc(max_age_days=args.max_age,
                                 stale_only=args.stale_only)
        print(f"gc: removed {removed} object(s), kept {kept}")
    elif args.action == "clear":
        print(f"clear: removed {store.clear()} object(s)")
    elif args.action == "verify":
        report = store.verify(repair=args.repair)
        print(f"verify: {report.checked} object(s) checked, "
              f"{report.ok} ok, "
              f"{len(report.corrupt) + len(report.quarantined)} corrupt"
              + (f" ({len(report.quarantined)} quarantined)"
                 if args.repair else ""))
        for path in report.corrupt:
            print(f"  corrupt: {path}")
        for path in report.quarantined:
            print(f"  quarantined: {path}")
        if report.corrupt:
            print("  (re-run with --repair to quarantine)")
            return 1
    return 0


def main(argv=None) -> int:
    """Entry point for ``repro campaign ...`` (returns the exit code)."""
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Parallel sweep campaigns with a content-addressed "
                    "result store.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a campaign spec")
    run_p.add_argument("spec", help="campaign spec JSON file")

    resume_p = sub.add_parser(
        "resume", help="continue a crashed/killed run from its journal")
    resume_p.add_argument("run_id", metavar="RUN-ID",
                          help="journal run id (printed by `run`; listed "
                               "under <store>/journals/)")

    for p in (run_p, resume_p):
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default REPRO_JOBS or 1; "
                            "0 = one per CPU)")
        p.add_argument("--retries", type=int, default=None,
                       help="per-cell retry budget (default REPRO_RETRIES)")
        p.add_argument("--output", default=None, metavar="PATH",
                       help="write per-cell results JSON (deterministic "
                            "bytes for identical specs + code)")
        p.add_argument("--summary", default=None, metavar="PATH",
                       help="write run summary JSON incl. store hit stats")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the progress/ETA line")

    status_p = sub.add_parser("status",
                              help="cached vs pending cells, no execution")
    status_p.add_argument("spec", help="campaign spec JSON file")

    cache_p = sub.add_parser("cache", help="store maintenance")
    cache_p.add_argument("action", choices=["stats", "ls", "gc", "clear",
                                            "verify"])
    cache_p.add_argument("--max-age", type=float, default=None,
                         metavar="DAYS", help="gc: also drop entries older "
                                              "than DAYS")
    cache_p.add_argument("--stale-only", action="store_true",
                         help="gc: only drop stale-fingerprint entries")
    cache_p.add_argument("--repair", action="store_true",
                         help="verify: quarantine corrupt objects")

    for p in (run_p, resume_p, status_p, cache_p):
        p.add_argument("--store", default=None, metavar="DIR",
                       help="store root (default $REPRO_STORE or "
                            "~/.cache/repro)")

    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_cache(args)
    except (ValueError, OSError) as exc:
        print(f"repro campaign: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
