"""Crash-safe campaign journal: an append-only, checksummed WAL.

Every ``repro campaign run`` writes a write-ahead log of its cell
lifecycle to ``<store root>/journals/<run-id>/journal.jsonl``: one JSON
record per line, each carrying a ``crc`` content checksum over the rest
of the record.  The journal is *append-only* and flushed+fsynced per
record, so a campaign process killed with ``kill -9`` mid-run leaves at
worst one truncated final line — which replay detects and drops — and
``repro campaign resume <run-id>`` continues with **zero recomputation**
of completed cells.

Record stream::

    {"type": "begin", "run": ..., "campaign": ..., "spec": {...},
     "fingerprint": ..., "crc": ...}
    {"type": "submitted", "cell": "<cell-id>", "crc": ...}
    {"type": "completed", "cell": "<cell-id>", "value": 123.0, "crc": ...}
    {"type": "failed", "cell": "<cell-id>", "error": "...", "crc": ...}
    {"type": "end", "interrupted": false, "crc": ...}

The campaign service (:mod:`repro.serve`) journals *jobs* through the
same WAL — its journal is one long-lived file under
``<store>/journals/serve/`` that accumulates across server restarts::

    {"type": "job", "job": "<job-id>", "campaign": ..., "spec": {...},
     "client": ..., "priority": 0, "crc": ...}
    {"type": "job-end", "job": "<job-id>", "crc": ...}

A job record without a matching ``job-end`` is an accepted job the
server never finished — replay surfaces it in
:attr:`JournalState.jobs` minus :attr:`JournalState.ended_jobs`, and a
restarted server requeues exactly those.

Replay rules: a record whose checksum does not match is *corrupt*; as
the final line it is a crash artifact and is ignored, anywhere earlier
it poisons the tail, so replay stops there and resumes conservatively
(later completions are recomputed rather than trusted).  The journal
supersedes the legacy per-file checkpoint mechanism for campaign runs —
it records failures and submission order too, and it is keyed by run,
not by output path.

Run IDs are deterministic, entropy-free and collision-free per store
root: ``<spec-hash[:8]>-<seq>`` where the sequence number is one past
the highest existing journal for any spec.
"""

from __future__ import annotations

import json
import os
import re

from repro._util import canonical_json, content_checksum

__all__ = ["Journal", "JournalState", "JournalError", "encode_record",
           "journal_dir", "list_runs", "new_run_id", "JOURNAL_FILENAME"]

JOURNAL_FILENAME = "journal.jsonl"

#: ``<8 hex of the spec hash>-<decimal sequence>``.
_RUN_ID_RE = re.compile(r"^([0-9a-f]{8})-(\d+)$")


class JournalError(ValueError):
    """A structurally invalid journal (bad begin record, wrong run...)."""


def encode_record(record: dict) -> str:
    """One journal line for *record*: crc appended, newline-terminated.

    The single encoding every journal write goes through — replay's
    :meth:`Journal._verify` is its inverse.
    """
    return canonical_json({**record, "crc": content_checksum(record)}) + "\n"


def journal_dir(store_root: str, run_id: str | None = None) -> str:
    """The journals directory under *store_root* (or one run's dir)."""
    base = os.path.join(os.path.expanduser(os.fspath(store_root)),
                        "journals")
    return os.path.join(base, run_id) if run_id else base


def list_runs(store_root: str) -> list[str]:
    """Run IDs with a journal file under *store_root*, sorted."""
    base = journal_dir(store_root)
    if not os.path.isdir(base):
        return []
    return sorted(
        name for name in os.listdir(base)
        if _RUN_ID_RE.match(name)
        and os.path.isfile(os.path.join(base, name, JOURNAL_FILENAME)))


def new_run_id(store_root: str, spec_dict: dict) -> str:
    """Allocate the next run ID for *spec_dict* under *store_root*.

    ``<spec-hash[:8]>-<seq>`` — the hash half groups runs of the same
    campaign, the sequence half (global across specs, monotonically
    increasing) keeps IDs unique without reading any entropy source.
    """
    from repro._util import sha256_hex
    prefix = sha256_hex(canonical_json(spec_dict))[:8]
    top = 0
    for run in list_runs(store_root):
        match = _RUN_ID_RE.match(run)
        if match:
            top = max(top, int(match.group(2)))
    return f"{prefix}-{top + 1}"


class JournalState:
    """Everything replay recovered from a journal file."""

    def __init__(self) -> None:
        self.run_id: str | None = None
        self.campaign: str | None = None
        self.spec: dict | None = None
        self.fingerprint: str | None = None
        self.completed: dict[str, float] = {}   # cell-id -> value
        self.failed: dict[str, str] = {}        # cell-id -> error
        self.submitted: list[str] = []          # submission order
        self.jobs: dict[str, dict] = {}         # job-id -> job record
        self.ended_jobs: set[str] = set()       # jobs with a job-end record
        self.ended: bool = False
        self.records: int = 0                   # valid records replayed
        self.dropped_tail: bool = False         # truncated last line
        self.corrupt_at: int | None = None      # 1-based bad mid-file line
        self.valid_bytes: int = 0               # end of last replayed record


class Journal:
    """One run's append-only journal (create for a new run, open to
    resume).  Appends are atomic at the record level: each line is
    written, flushed and fsynced before :meth:`append` returns."""

    def __init__(self, directory: str | os.PathLike[str]):
        self.directory = os.fspath(directory)
        self.path = os.path.join(self.directory, JOURNAL_FILENAME)
        self._fh = None

    # ----- construction ----------------------------------------------------

    @classmethod
    def create(cls, directory: str | os.PathLike[str], *, run_id: str,
               campaign: str, spec: dict, fingerprint: str) -> "Journal":
        """Start a fresh journal, writing the ``begin`` record."""
        journal = cls(directory)
        if os.path.exists(journal.path):
            raise JournalError(f"journal already exists: {journal.path}")
        os.makedirs(journal.directory, exist_ok=True)
        journal.append({"type": "begin", "run": run_id,
                        "campaign": campaign, "spec": spec,
                        "fingerprint": fingerprint})
        return journal

    @classmethod
    def open(cls, directory: str | os.PathLike[str]) -> "Journal":
        """Open an existing journal for appending (resume)."""
        journal = cls(directory)
        if not os.path.isfile(journal.path):
            raise JournalError(f"no journal at {journal.path}")
        return journal

    # ----- appending -------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one record (the ``crc`` field is added here).

        Resume paths that append to a journal which may carry a torn
        tail (a partial line from a ``kill -9`` mid-append) must call
        :meth:`repair` first — appending after partial bytes would merge
        the two into one mid-file corrupt line, which poisons every
        later record on the *next* replay.
        """
        line = encode_record(record)
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def submitted(self, cell_id: str) -> None:
        self.append({"type": "submitted", "cell": cell_id})

    def completed(self, cell_id: str, value: float) -> None:
        self.append({"type": "completed", "cell": cell_id,
                     "value": float(value)})

    def failed(self, cell_id: str, error: str) -> None:
        self.append({"type": "failed", "cell": cell_id,
                     "error": str(error)})

    def end(self, interrupted: bool = False) -> None:
        self.append({"type": "end", "interrupted": bool(interrupted)})

    def job(self, job_id: str, *, campaign: str, spec: dict, client: str,
            priority: int = 0) -> None:
        """Record an accepted service job (see the module docstring)."""
        self.append({"type": "job", "job": job_id, "campaign": campaign,
                     "spec": spec, "client": client,
                     "priority": int(priority)})

    def job_end(self, job_id: str) -> None:
        """Record a service job whose every cell has settled."""
        self.append({"type": "job-end", "job": job_id})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ----- replay ----------------------------------------------------------

    def replay(self) -> JournalState:
        """Recover the run's state from the journal file.

        Corrupt/truncated final lines are dropped (the crash artifact a
        WAL exists to tolerate); a corrupt record anywhere earlier stops
        replay at that point, so everything after it is conservatively
        recomputed.  A final line without its terminating newline is
        treated as a torn tail even when its content verifies: the
        append was not known to finish, and trusting it would let the
        next append land mid-line.  :attr:`JournalState.valid_bytes`
        marks the byte just past the last replayed record —
        :meth:`repair` truncates everything after it.
        """
        state = JournalState()
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise JournalError(f"cannot read journal: {exc}") from None
        lines = data.split(b"\n")
        terminated = True
        if lines and lines[-1] == b"":
            lines.pop()
        else:
            terminated = False      # no final newline: torn tail
        offset = 0
        for index, raw in enumerate(lines):
            last = index == len(lines) - 1
            record = None
            if terminated or not last:
                record = self._verify(raw.decode("utf-8",
                                                 errors="replace"))
            if record is None:
                if last:
                    state.dropped_tail = True
                else:
                    state.corrupt_at = index + 1
                break
            self._apply(state, record, index)
            state.records += 1
            offset += len(raw) + 1
            state.valid_bytes = offset
        if state.spec is None:
            raise JournalError(
                f"{self.path}: no valid begin record — not a journal or "
                f"corrupted beyond recovery")
        return state

    def repair(self, state: JournalState | None = None) -> bool:
        """Truncate bytes after the last replayed record; True if cut.

        Run this before the first :meth:`append` on a reopened journal.
        A ``kill -9`` mid-append leaves a partial final line; replay
        drops it, but a bare append would write directly after the
        partial bytes, merging both into one mid-file corrupt line —
        and a *mid-file* corrupt line poisons every record behind it on
        the following replay.  Truncating to
        :attr:`JournalState.valid_bytes` (which also discards anything
        behind a mid-file corruption — those records were already being
        ignored) restores the invariant that the file ends exactly at a
        record boundary.
        """
        if state is None:
            state = self.replay()
        if self._fh is not None:
            raise JournalError(
                "repair() must run before the first append")
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            raise JournalError(f"cannot stat journal: {exc}") from None
        if size <= state.valid_bytes:
            return False
        os.truncate(self.path, state.valid_bytes)
        return True

    @staticmethod
    def _verify(line: str) -> dict | None:
        """Parse + checksum-verify one line (None = corrupt)."""
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict) or "crc" not in record:
            return None
        crc = record.pop("crc")
        if crc != content_checksum(record):
            return None
        return record

    @staticmethod
    def _apply(state: JournalState, record: dict, index: int) -> None:
        kind = record.get("type")
        if kind == "begin":
            if index != 0:
                raise JournalError("begin record not at line 1")
            state.run_id = record.get("run")
            state.campaign = record.get("campaign")
            state.spec = record.get("spec")
            state.fingerprint = record.get("fingerprint")
        elif kind == "submitted":
            state.submitted.append(record["cell"])
        elif kind == "completed":
            state.completed[record["cell"]] = float(record["value"])
            state.failed.pop(record["cell"], None)
        elif kind == "failed":
            state.failed[record["cell"]] = record.get("error", "")
        elif kind == "end":
            state.ended = True
        elif kind == "job":
            state.jobs[record["job"]] = {
                "campaign": record.get("campaign"),
                "spec": record.get("spec"),
                "client": record.get("client", "anonymous"),
                "priority": int(record.get("priority", 0))}
        elif kind == "job-end":
            state.ended_jobs.add(record["job"])
        # Unknown record types are ignored: forward compatibility for
        # later journal extensions.
