"""repro.campaign — parallel sweep campaigns with a result cache.

The scheduler + cache layer over the experiment harness:

* :mod:`repro.campaign.spec` — declarative campaign grids with
  deterministic cell IDs;
* :mod:`repro.campaign.executor` — a fork-based executor with retries,
  graceful Ctrl-C draining and progress/ETA;
* :mod:`repro.campaign.supervise` — per-worker process supervision:
  heartbeat sweeps, ``REPRO_CELL_TIMEOUT`` deadlines, dead-worker
  replacement with deterministic requeue, seeded backoff and a
  per-runner-family circuit breaker;
* :mod:`repro.campaign.journal` — append-only checksummed write-ahead
  log enabling ``repro campaign resume`` with zero recomputation;
* :mod:`repro.campaign.store` — a content-addressed result store keyed
  by canonical cell spec + code fingerprint, integrity-checksummed on
  every read (corrupt objects are quarantined, not served);
* :mod:`repro.campaign.chaos` — fault-injection harness behind
  ``repro chaos`` (worker SIGKILL, hangs, exceptions, store
  corruption — report must stay byte-identical to a clean run);
* :mod:`repro.campaign.runners` — the registry mapping experiment names
  to picklable cell adapters;
* :mod:`repro.campaign.cli` — ``repro campaign run|resume|status|cache``.
"""

from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import (ResultStore, StoreStats, VerifyReport,
                                  code_fingerprint)
from repro.campaign.executor import ExecutionReport, execute, default_jobs
from repro.campaign.supervise import Supervisor, SupervisorStats
from repro.campaign.journal import Journal, JournalState, journal_dir
from repro.campaign.runners import run_cell, runner_names, known_variants
from repro.campaign.cli import run_campaign, campaign_results_dict

__all__ = [
    "CampaignSpec", "CellSpec",
    "ResultStore", "StoreStats", "VerifyReport", "code_fingerprint",
    "ExecutionReport", "execute", "default_jobs",
    "Supervisor", "SupervisorStats",
    "Journal", "JournalState", "journal_dir",
    "run_cell", "runner_names", "known_variants",
    "run_campaign", "campaign_results_dict",
]
