"""repro.campaign — parallel sweep campaigns with a result cache.

The scheduler + cache layer over the experiment harness:

* :mod:`repro.campaign.spec` — declarative campaign grids with
  deterministic cell IDs;
* :mod:`repro.campaign.executor` — a fork-based process-pool executor
  with retries, graceful Ctrl-C draining and progress/ETA;
* :mod:`repro.campaign.store` — a content-addressed result store keyed
  by canonical cell spec + code fingerprint;
* :mod:`repro.campaign.runners` — the registry mapping experiment names
  to picklable cell adapters;
* :mod:`repro.campaign.cli` — ``repro campaign run|status|cache``.
"""

from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import ResultStore, StoreStats, code_fingerprint
from repro.campaign.executor import ExecutionReport, execute, default_jobs
from repro.campaign.runners import run_cell, runner_names, known_variants
from repro.campaign.cli import run_campaign, campaign_results_dict

__all__ = [
    "CampaignSpec", "CellSpec",
    "ResultStore", "StoreStats", "code_fingerprint",
    "ExecutionReport", "execute", "default_jobs",
    "run_cell", "runner_names", "known_variants",
    "run_campaign", "campaign_results_dict",
]
