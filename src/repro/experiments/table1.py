"""Table I — properties of the test graphs (scaled suite vs. paper)."""

from __future__ import annotations

from repro.experiments.report import format_rows
from repro.graph.properties import graph_properties
from repro.graph.suite import PAPER_TABLE1, SUITE, suite_graph

__all__ = ["table1_rows", "format_table1", "run_table1"]


def table1_rows() -> list[tuple]:
    """One row per suite graph: measured properties next to paper targets."""
    rows = []
    for name in SUITE:
        props = graph_properties(suite_graph(name))
        pv, pe, pd, pc, pl = PAPER_TABLE1[name]
        rows.append((
            name,
            props.n_vertices, _k(pv),
            props.n_edges, _k(pe),
            props.max_degree, pd,
            props.n_colors, pc,
            props.n_bfs_levels, pl,
        ))
    return rows


def _k(v: int) -> str:
    if v >= 1_000_000:
        return f"{v / 1e6:.1f}M"
    return f"{v // 1000}K"


def format_table1() -> str:
    """Table I as aligned text, measured values beside paper targets."""
    headers = ["name", "|V|", "paper|V|", "|E|", "paper|E|",
               "Δ", "paperΔ", "#Color", "paper#C", "#Level", "paper#L"]
    return ("== Table I: properties of the test graphs "
            "(measured suite vs. paper) ==\n"
            + format_rows(headers, table1_rows()))


def run_table1() -> str:
    """Print and return Table I."""
    out = format_table1()
    print(out)
    return out
