"""Plain-text rendering of experiment results (figures become tables)."""

from __future__ import annotations

from repro.experiments.harness import PanelResult

__all__ = ["format_panel", "format_rows", "print_panel"]


def format_rows(headers: list[str], rows: list[tuple]) -> str:
    """Simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(c) -> str:
    if isinstance(c, float):
        return f"{c:.2f}"
    return str(c)


def format_panel(panel: PanelResult) -> str:
    """Render a panel as `threads x variants` speedup table."""
    headers = ["threads"] + list(panel.series)
    rows = []
    for i, t in enumerate(panel.thread_counts):
        rows.append(tuple([t] + [float(panel.series[v][i]) for v in panel.series]))
    body = format_rows(headers, rows)
    out = [f"== {panel.title} ==", body]
    peaks = ", ".join(f"{v}: {panel.best(v)[1]:.1f}@{panel.best(v)[0]}t"
                      for v in panel.series)
    out.append(f"peaks: {peaks}")
    if panel.notes:
        out.append(panel.notes)
    return "\n".join(out)


def format_panel_per_graph(panel: PanelResult, variant: str) -> str:
    """Per-graph detail for one series (the figures' geomean, unfolded)."""
    graphs = sorted({g for (v, g) in panel.per_graph if v == variant})
    if not graphs:
        raise KeyError(f"no per-graph data for variant {variant!r}")
    headers = ["threads"] + graphs
    rows = []
    for i, t in enumerate(panel.thread_counts):
        rows.append(tuple([t] + [float(panel.per_graph[(variant, g)][i])
                                 for g in graphs]))
    return (f"== {panel.title} -- {variant}, per graph ==\n"
            + format_rows(headers, rows))


def print_panel(panel: PanelResult) -> None:
    """Print a panel followed by a blank separator line."""
    print(format_panel(panel))
    print()
