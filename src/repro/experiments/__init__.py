"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.harness import (
    THREADS_MIC,
    THREADS_HOST,
    PanelResult,
    run_panel,
    geomean,
    panel_graphs,
    panel_threads,
    panel_store,
    parse_graph_names,
    parse_thread_counts,
    env_csv,
    fast_mode,
    ordered_suite_graph,
    repeat_average,
)
from repro.experiments.report import (format_panel, format_panel_per_graph,
                                      format_rows, print_panel)
from repro.experiments.table1 import table1_rows, format_table1, run_table1
from repro.experiments.fig1_coloring import (
    COLORING_VARIANTS,
    BEST_PER_MODEL,
    coloring_cycles,
    run_fig1,
)
from repro.experiments.fig2_shuffled import run_fig2, PAPER_FIG2_AT_121
from repro.experiments.fig3_irregular import (
    IRREGULAR_MODELS,
    ITERATION_COUNTS,
    irregular_cycles,
    run_fig3,
)
from repro.experiments.fig4_bfs import (
    BLOCK_SIZE,
    bfs_cycles,
    model_series,
    run_fig4,
    run_fig4_panel,
)
from repro.experiments.fig_faults import (
    FAULT_RUNTIMES,
    FAULT_THREADS,
    INTENSITIES,
    faulted_bfs_cycles,
    faulted_coloring_cycles,
    kill_survival_rows,
    run_fig_faults,
)
from repro.experiments.chunk_sweep import run_chunk_sweep, CHUNK_SIZES
from repro.experiments.rmat_bfs import run_rmat_bfs, rmat_direction_savings
from repro.experiments.save import save_panels, load_panels, panel_to_dict, panel_from_dict
from repro.experiments.ablations import (
    run_block_size_ablation,
    run_relaxed_ablation,
    run_smt_ablation,
    run_cache_ablation,
    run_bandwidth_ablation,
    run_all_ablations,
)

__all__ = [
    "THREADS_MIC", "THREADS_HOST", "PanelResult", "run_panel", "geomean",
    "panel_graphs", "panel_threads", "panel_store", "parse_graph_names",
    "parse_thread_counts", "env_csv", "fast_mode",
    "ordered_suite_graph", "repeat_average",
    "format_panel", "format_panel_per_graph", "format_rows", "print_panel",
    "table1_rows", "format_table1", "run_table1",
    "COLORING_VARIANTS", "BEST_PER_MODEL", "coloring_cycles", "run_fig1",
    "run_fig2", "PAPER_FIG2_AT_121",
    "IRREGULAR_MODELS", "ITERATION_COUNTS", "irregular_cycles", "run_fig3",
    "BLOCK_SIZE", "bfs_cycles", "model_series", "run_fig4", "run_fig4_panel",
    "FAULT_RUNTIMES", "FAULT_THREADS", "INTENSITIES", "faulted_bfs_cycles",
    "faulted_coloring_cycles", "kill_survival_rows", "run_fig_faults",
    "run_block_size_ablation", "run_relaxed_ablation", "run_smt_ablation",
    "run_cache_ablation", "run_bandwidth_ablation", "run_all_ablations",
]
