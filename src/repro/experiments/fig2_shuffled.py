"""Figure 2 — colouring speedup on the randomly ordered graphs.

Shuffling vertex IDs "break[s] all the locality that naturally appears in
the graphs" (§V-B), making the kernel purely memory-bound.  The paper
reports *super-linear* best speedups at 121 threads — OpenMP 153,
TBB 121, Cilk Plus 98 — because SMT hides the latency while the chip's
aggregate cache turns DRAM misses into ring transactions.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.fig1_coloring import BEST_PER_MODEL, coloring_cycles
from repro.experiments.harness import PanelResult, run_panel

__all__ = ["run_fig2", "PAPER_FIG2_AT_121"]

#: Paper's reported Figure 2 speedups at 121 threads.
PAPER_FIG2_AT_121 = {"OpenMP-dynamic": 153.0, "TBB-simple": 121.0,
                     "CilkPlus-holder": 98.0}


def run_fig2(graphs=None, threads=None, jobs=None, store=None) -> PanelResult:
    """Regenerate Figure 2 (best variant of each model, shuffled IDs)."""
    runner = partial(coloring_cycles, ordering="random")
    return run_panel("Fig 2: coloring speedup, randomly ordered graphs",
                     runner, list(BEST_PER_MODEL),
                     graphs=graphs, threads=threads, jobs=jobs, store=store)
