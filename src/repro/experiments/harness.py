"""Experiment harness: thread sweeps, baselines, and aggregation.

Follows the paper's §V-A methodology:

* MIC sweeps run 1..121 threads in steps of 10 (``THREADS_MIC``); host
  sweeps run 1..24 (``THREADS_HOST``).
* The speedup baseline for a graph is *the configuration that performs
  the fastest on 1 thread for that graph* within the figure's variant
  set.
* Speedups over multiple graphs are aggregated with the geometric mean.

Environment knobs (picked up by the benchmark suite so a laptop run can
be shortened): ``REPRO_GRAPHS`` — comma-separated subset of suite names;
``REPRO_THREADS`` — comma-separated thread counts; ``REPRO_FAST=1`` —
three graphs, five thread counts; ``REPRO_RETRIES`` — per-cell retry
count for :func:`run_panel` (default 1); ``REPRO_CHECKPOINT`` — default
checkpoint path for sweep resume; ``REPRO_JOBS`` — worker processes for
the campaign executor (default 1 = serial in-process); ``REPRO_STORE``
— root of the content-addressed result store (unset = no caching).

Resilience: :func:`run_panel` retries failing cells a bounded number of
times, records survivors as NaN instead of discarding the sweep
(``PanelResult.failures`` holds the error per cell), and can checkpoint
every computed cell to disk so a crashed 121-thread × 10-graph panel
resumes where it stopped.  The store supersedes ad-hoc checkpoints for
resume: with ``REPRO_STORE`` set, every finished cell is content-
addressed by (panel title, graph, variant, threads) + code fingerprint
and a re-run serves it as a cache hit.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro._util import env_bool, env_csv, env_int, env_str
from repro.graph.reorder import apply_ordering
from repro.graph.suite import SUITE, suite_graph, suite_scale

__all__ = ["THREADS_MIC", "THREADS_HOST", "PanelResult", "run_panel",
           "panel_graphs", "panel_threads", "ordered_suite_graph", "geomean",
           "env_csv", "fast_mode", "parse_thread_counts",
           "parse_graph_names", "panel_store"]

#: The paper's MIC thread sweep: "1 to 121 by increment of 10" (§V-B).
THREADS_MIC = [1] + list(range(11, 122, 10))
#: Host sweep: the dual X5680 exposes 24 hardware threads (Fig. 4d).
THREADS_HOST = [1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 23, 24]

_FAST_GRAPHS = ["auto", "inline_1", "pwtk"]
_FAST_THREADS_MIC = [1, 11, 31, 61, 121]
_FAST_THREADS_HOST = [1, 4, 8, 12, 16, 24]


def fast_mode() -> bool:
    """Whether ``REPRO_FAST`` shrinks sweeps (shared by every driver)."""
    return env_bool("REPRO_FAST")


def parse_thread_counts(values, source: str) -> list[int]:
    """Validated, sorted, de-duplicated thread counts.

    Entries must be positive integers — rejected with a clear
    :class:`ValueError` naming *source* otherwise (``0`` or negatives
    would later divide-by-zero in the speedup math; ``int()`` tracebacks
    are opaque).  Shared by the env knob, the CLI flag and campaign spec
    validation so every path fails with the same message.
    """
    counts = set()
    for token in values:
        try:
            t = int(token)
        except (TypeError, ValueError):
            raise ValueError(
                f"{source} entry {token!r} is not an integer") from None
        if t < 1:
            raise ValueError(f"{source} entry {t} must be >= 1")
        counts.add(t)
    if not counts:
        raise ValueError(f"{source} names no thread counts")
    return sorted(counts)


def parse_graph_names(values, source: str) -> list[str]:
    """Validated suite graph names (order preserved).

    Unknown graphs raise the same clear :class:`ValueError` shape as
    unknown thread counts — naming *source*, the offenders, and the
    valid set.
    """
    names = [str(g).strip() for g in values if str(g).strip()]
    unknown = [g for g in names if g not in SUITE]
    if unknown:
        raise ValueError(f"{source} contains unknown graphs {unknown} "
                         f"(suite: {list(SUITE)})")
    if not names:
        raise ValueError(f"{source} names no graphs")
    return names


def panel_graphs() -> list[str]:
    """Suite graphs to sweep (honours REPRO_GRAPHS / REPRO_FAST)."""
    tokens = env_csv("REPRO_GRAPHS")
    if tokens is not None:
        return parse_graph_names(tokens, source="REPRO_GRAPHS")
    if fast_mode():
        return list(_FAST_GRAPHS)
    return list(SUITE)


def panel_threads(host: bool = False) -> list[int]:
    """Thread sweep to use (honours REPRO_THREADS / REPRO_FAST)."""
    tokens = env_csv("REPRO_THREADS")
    if tokens is not None:
        env = env_str("REPRO_THREADS", "")
        return parse_thread_counts(tokens,
                                   source=f"REPRO_THREADS={env!r}")
    if fast_mode():
        return list(_FAST_THREADS_HOST if host else _FAST_THREADS_MIC)
    return list(THREADS_HOST if host else THREADS_MIC)


@lru_cache(maxsize=64)
def ordered_suite_graph(name: str, ordering: str, seed: int = 5):
    """Suite graph under the given vertex ordering (memoised)."""
    return apply_ordering(suite_graph(name), ordering, seed=seed)


def geomean(values) -> float:
    """Geometric mean (0 if any value is non-positive).

    NaN entries (failed panel cells) are skipped so a partial sweep still
    aggregates its surviving graphs; an all-NaN input returns NaN to keep
    the gap visible.
    """
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        return 0.0
    finite = v[np.isfinite(v)]
    if len(finite) == 0:
        return float("nan")
    if np.any(finite <= 0):
        return 0.0
    return float(np.exp(np.log(finite).mean()))


@dataclass
class PanelResult:
    """One figure panel: speedup series per variant over a thread sweep.

    ``failures`` maps a failed cell ``(graph, variant, threads)`` to the
    error string that survived the retry budget; the corresponding
    speedups are NaN (partial-result semantics).
    """

    title: str
    thread_counts: list[int]
    series: dict = field(default_factory=dict)        # label -> np.ndarray
    per_graph: dict = field(default_factory=dict)     # (label, graph) -> array
    baselines: dict = field(default_factory=dict)     # graph -> cycles at t=1
    failures: dict = field(default_factory=dict)      # (g, v, t) -> error str
    notes: str = ""

    def best(self, label: str) -> tuple[int, float]:
        """(thread count, value) of the series' peak speedup."""
        s = self.series[label]
        i = int(np.argmax(s))
        return self.thread_counts[i], float(s[i])

    def at(self, label: str, n_threads: int) -> float:
        """Speedup of *label* at a specific thread count."""
        return float(self.series[label][self.thread_counts.index(n_threads)])


def panel_store(store=None):
    """Resolve a result-store argument to a live store (or None).

    Accepts an already-built :class:`~repro.campaign.store.ResultStore`,
    a root path, or None — in which case the ``REPRO_STORE`` env var
    decides (unset = caching off, the serial in-process default).
    """
    if store is None:
        root = env_str("REPRO_STORE")
        if not root:
            return None
        store = root
    if isinstance(store, (str, os.PathLike)):
        from repro.campaign.store import ResultStore
        return ResultStore(store)
    return store


def run_panel(
    title: str,
    runner: Callable[[str, str, int], float],
    variants: list[str],
    graphs: list[str] | None = None,
    threads: list[int] | None = None,
    baseline_variants: list[str] | None = None,
    per_variant_baseline: bool = False,
    baseline_point: int = 1,
    retries: int | None = None,
    on_error: str = "nan",
    checkpoint: str | os.PathLike | None = None,
    jobs: int | None = None,
    store=None,
) -> PanelResult:
    """Sweep ``runner(graph, variant, threads) -> cycles`` over a panel.

    The per-graph baseline is the fastest ``baseline_point``-thread cycles
    over ``baseline_variants`` (default: all *variants*), per the paper's
    methodology; the panel series are geometric means over graphs.  With
    ``per_variant_baseline`` each variant is normalised by its own
    ``baseline_point`` run instead (Figure 3 compares iteration counts
    this way: "the speedup are computed relatively to the same number of
    iterations").  ``baseline_point`` defaults to 1 (the 1-thread run);
    the fault experiments sweep fault intensity on this axis and baseline
    at intensity 0.

    Execution goes through the campaign executor
    (:func:`repro.campaign.executor.execute`):

    * ``jobs`` (default: ``REPRO_JOBS`` env var, else 1) computes cells
      on a fork-based process pool — every cell is a pure function of
      its coordinates, so ``jobs=4`` output is bitwise identical to the
      serial run; ``0`` means one worker per CPU;
    * ``store`` (default: ``REPRO_STORE`` env var, else off) caches each
      finished cell content-addressed by (panel title, graph, variant,
      threads) + code fingerprint, so repeated sweeps across figures,
      ablations and CI recompute nothing.  Callers that vary hidden
      runner parameters under one title must keep the store off.

    Resilience (partial-result semantics):

    * a cell whose runner raises is retried up to ``retries`` times
      (default: ``REPRO_RETRIES`` env var, else 1) and then — with
      ``on_error="nan"``, the default — recorded as NaN with the error
      kept in ``PanelResult.failures``, leaving every other cell intact;
      ``on_error="raise"`` restores fail-fast behaviour;
    * with ``checkpoint`` (default: ``REPRO_CHECKPOINT`` env var) every
      computed cell is persisted through
      :func:`repro.experiments.save.save_checkpoint`; re-running the same
      panel with the same checkpoint path skips finished cells, so a
      crashed sweep resumes instead of restarting (failed cells are
      retried on resume).  The content-addressed store supersedes this
      per-path checkpointing — prefer ``REPRO_STORE`` unless you need a
      single portable file.
    """
    from repro.campaign.executor import execute
    from repro.experiments.save import load_checkpoint, save_checkpoint

    graphs = graphs if graphs is not None else panel_graphs()
    threads = threads if threads is not None else panel_threads()
    baseline_variants = baseline_variants or variants
    if baseline_point not in threads:
        threads = [baseline_point] + list(threads)
    if retries is None:
        retries = env_int("REPRO_RETRIES", 1, lo=0)
    if checkpoint is None:
        checkpoint = env_str("REPRO_CHECKPOINT")
    store = panel_store(store)

    cycles: dict[tuple[str, str, int], float] = {}
    if checkpoint is not None:
        cycles.update(load_checkpoint(checkpoint, title))

    pending = [(g, v, t) for g in graphs for v in variants for t in threads
               if not ((g, v, t) in cycles and math.isfinite(cycles[(g, v, t)]))]

    on_cell = None
    if checkpoint is not None:
        def on_cell(key, value):
            cycles[key] = value
            save_checkpoint(checkpoint, title, cycles)

    report = execute(
        lambda key: runner(*key), pending, jobs=jobs, retries=retries,
        on_error=on_error, store=store,
        spec_for=lambda key: {"panel": title, "graph": key[0],
                              "variant": key[1], "threads": key[2]},
        labels_for=lambda key: {"graph": key[0], "variant": key[1],
                                "threads": key[2]},
        progress=env_bool("REPRO_PROGRESS"),
        on_cell=on_cell, desc=f"cells ({title})")
    cycles.update(report.values)
    failures = dict(report.errors)
    if report.interrupted:
        raise KeyboardInterrupt  # completed cells live in checkpoint/store

    result = PanelResult(title=title, thread_counts=list(threads),
                         failures=dict(failures))
    for g in graphs:
        bases = [cycles[(g, v, baseline_point)] for v in baseline_variants]
        bases = [b for b in bases if math.isfinite(b)]
        result.baselines[g] = min(bases) if bases else float("nan")
    for v in variants:
        per_graph_speedups = []
        for g in graphs:
            base = cycles[(g, v, baseline_point)] if per_variant_baseline \
                else result.baselines[g]
            s = np.asarray([base / cycles[(g, v, t)] for t in threads])
            result.per_graph[(v, g)] = s
            per_graph_speedups.append(s)
        stacked = np.stack(per_graph_speedups)
        result.series[v] = np.asarray(
            [geomean(stacked[:, i]) for i in range(len(threads))])
    if failures:
        shown = [f"{k[0]}/{k[1]}@{k[2]}: {e}"
                 for k, e in list(failures.items())[:3]]
        more = "" if len(failures) <= 3 else f" (+{len(failures) - 3} more)"
        result.notes = (f"{len(failures)} cell(s) failed after {retries} "
                        f"retr{'y' if retries == 1 else 'ies'} — "
                        + "; ".join(shown) + more)
    return result


def repeat_average(fn: Callable[[int], float], runs: int = 10,
                   keep_last: int = 5, seed0: int = 0) -> float:
    """The paper's §V-A repetition protocol: "10 runs are performed, we
    report the average of the last 5 runs" (the first runs warm the
    runtime up; in the simulation they vary only through scheduler
    randomness, so this averages out steal-order noise).

    ``fn(seed) -> cycles``.
    """
    if runs < 1 or not 1 <= keep_last <= runs:
        raise ValueError(f"need 1 <= keep_last <= runs, got {keep_last}/{runs}")
    values = [fn(seed0 + i) for i in range(runs)]
    tail = values[-keep_last:]
    return float(np.mean(tail))


def scale_of(name: str) -> float:
    """Cache scale for a suite graph (1.0 for non-suite graphs)."""
    try:
        return suite_scale(name)
    except KeyError:
        return 1.0
