"""Experiment harness: thread sweeps, baselines, and aggregation.

Follows the paper's §V-A methodology:

* MIC sweeps run 1..121 threads in steps of 10 (``THREADS_MIC``); host
  sweeps run 1..24 (``THREADS_HOST``).
* The speedup baseline for a graph is *the configuration that performs
  the fastest on 1 thread for that graph* within the figure's variant
  set.
* Speedups over multiple graphs are aggregated with the geometric mean.

Environment knobs (picked up by the benchmark suite so a laptop run can
be shortened): ``REPRO_GRAPHS`` — comma-separated subset of suite names;
``REPRO_THREADS`` — comma-separated thread counts; ``REPRO_FAST=1`` —
three graphs, five thread counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.graph.reorder import apply_ordering
from repro.graph.suite import SUITE, suite_graph, suite_scale

__all__ = ["THREADS_MIC", "THREADS_HOST", "PanelResult", "run_panel",
           "panel_graphs", "panel_threads", "ordered_suite_graph", "geomean"]

#: The paper's MIC thread sweep: "1 to 121 by increment of 10" (§V-B).
THREADS_MIC = [1] + list(range(11, 122, 10))
#: Host sweep: the dual X5680 exposes 24 hardware threads (Fig. 4d).
THREADS_HOST = [1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 23, 24]

_FAST_GRAPHS = ["auto", "inline_1", "pwtk"]
_FAST_THREADS_MIC = [1, 11, 31, 61, 121]
_FAST_THREADS_HOST = [1, 4, 8, 12, 16, 24]


def panel_graphs() -> list[str]:
    """Suite graphs to sweep (honours REPRO_GRAPHS / REPRO_FAST)."""
    env = os.environ.get("REPRO_GRAPHS")
    if env:
        names = [g.strip() for g in env.split(",") if g.strip()]
        unknown = [g for g in names if g not in SUITE]
        if unknown:
            raise ValueError(f"REPRO_GRAPHS contains unknown graphs {unknown}")
        return names
    if os.environ.get("REPRO_FAST"):
        return list(_FAST_GRAPHS)
    return list(SUITE)


def panel_threads(host: bool = False) -> list[int]:
    """Thread sweep to use (honours REPRO_THREADS / REPRO_FAST)."""
    env = os.environ.get("REPRO_THREADS")
    if env:
        return sorted({int(x) for x in env.split(",") if x.strip()})
    if os.environ.get("REPRO_FAST"):
        return list(_FAST_THREADS_HOST if host else _FAST_THREADS_MIC)
    return list(THREADS_HOST if host else THREADS_MIC)


@lru_cache(maxsize=64)
def ordered_suite_graph(name: str, ordering: str, seed: int = 5):
    """Suite graph under the given vertex ordering (memoised)."""
    return apply_ordering(suite_graph(name), ordering, seed=seed)


def geomean(values) -> float:
    """Geometric mean (0 if any value is non-positive)."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0 or np.any(v <= 0):
        return 0.0
    return float(np.exp(np.log(v).mean()))


@dataclass
class PanelResult:
    """One figure panel: speedup series per variant over a thread sweep."""

    title: str
    thread_counts: list[int]
    series: dict = field(default_factory=dict)        # label -> np.ndarray
    per_graph: dict = field(default_factory=dict)     # (label, graph) -> array
    baselines: dict = field(default_factory=dict)     # graph -> cycles at t=1
    notes: str = ""

    def best(self, label: str) -> tuple[int, float]:
        """(thread count, value) of the series' peak speedup."""
        s = self.series[label]
        i = int(np.argmax(s))
        return self.thread_counts[i], float(s[i])

    def at(self, label: str, n_threads: int) -> float:
        """Speedup of *label* at a specific thread count."""
        return float(self.series[label][self.thread_counts.index(n_threads)])


def run_panel(
    title: str,
    runner: Callable[[str, str, int], float],
    variants: list[str],
    graphs: list[str] | None = None,
    threads: list[int] | None = None,
    baseline_variants: list[str] | None = None,
    per_variant_baseline: bool = False,
) -> PanelResult:
    """Sweep ``runner(graph, variant, threads) -> cycles`` over a panel.

    The per-graph baseline is the fastest 1-thread cycles over
    ``baseline_variants`` (default: all *variants*), per the paper's
    methodology; the panel series are geometric means over graphs.  With
    ``per_variant_baseline`` each variant is normalised by its own
    1-thread run instead (Figure 3 compares iteration counts this way:
    "the speedup are computed relatively to the same number of
    iterations").
    """
    graphs = graphs if graphs is not None else panel_graphs()
    threads = threads if threads is not None else panel_threads()
    baseline_variants = baseline_variants or variants
    if 1 not in threads:
        threads = [1] + list(threads)

    cycles: dict[tuple[str, str, int], float] = {}
    for g in graphs:
        for v in variants:
            for t in threads:
                cycles[(g, v, t)] = runner(g, v, t)

    result = PanelResult(title=title, thread_counts=list(threads))
    for g in graphs:
        result.baselines[g] = min(cycles[(g, v, 1)] for v in baseline_variants)
    for v in variants:
        per_graph_speedups = []
        for g in graphs:
            base = cycles[(g, v, 1)] if per_variant_baseline \
                else result.baselines[g]
            s = np.asarray([base / cycles[(g, v, t)] for t in threads])
            result.per_graph[(v, g)] = s
            per_graph_speedups.append(s)
        stacked = np.stack(per_graph_speedups)
        result.series[v] = np.asarray(
            [geomean(stacked[:, i]) for i in range(len(threads))])
    return result


def repeat_average(fn: Callable[[int], float], runs: int = 10,
                   keep_last: int = 5, seed0: int = 0) -> float:
    """The paper's §V-A repetition protocol: "10 runs are performed, we
    report the average of the last 5 runs" (the first runs warm the
    runtime up; in the simulation they vary only through scheduler
    randomness, so this averages out steal-order noise).

    ``fn(seed) -> cycles``.
    """
    if runs < 1 or not 1 <= keep_last <= runs:
        raise ValueError(f"need 1 <= keep_last <= runs, got {keep_last}/{runs}")
    values = [fn(seed0 + i) for i in range(runs)]
    tail = values[-keep_last:]
    return float(np.mean(tail))


def scale_of(name: str) -> float:
    """Cache scale for a suite graph (1.0 for non-suite graphs)."""
    try:
        return suite_scale(name)
    except KeyError:
        return 1.0
