"""Figure 3 — speedup of the irregular-computation microbenchmark, one
panel per programming model, one series per iteration count (1, 3, 5, 10).

Paper outcomes (§V-C): OpenMP and TBB speedups *decrease* as the
computation grows (the FPU/issue pipeline saturates, so SMT helps less);
Cilk Plus *increases* (more work amortises its scheduling overhead); at
10 iterations all three models converge, topping out at ~49 on 121
threads vs. ~46 on 61.  Speedups are computed relative to the 1-thread
run of the same iteration count.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import PanelResult, scale_of
from repro.graph.suite import suite_graph
from repro.kernels.irregular import simulate_irregular
from repro.machine.config import KNF
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule, TlsMode)

__all__ = ["IRREGULAR_MODELS", "ITERATION_COUNTS", "irregular_cycles",
           "run_fig3"]

#: Best-performing runtime configuration per model (§V-C: OpenMP dynamic,
#: TBB simple).
IRREGULAR_MODELS: dict[str, RuntimeSpec] = {
    "OpenMP": RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                          chunk=13),
    "CilkPlus": RuntimeSpec(ProgrammingModel.CILK, tls_mode=TlsMode.HOLDER,
                            chunk=13),
    "TBB": RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE,
                       chunk=13),
}

ITERATION_COUNTS = [1, 3, 5, 10]


def irregular_cycles(graph_name: str, variant: str, n_threads: int,
                     model: str = "OpenMP", config=KNF, seed: int = 0) -> float:
    """Panel runner; *variant* is the iteration count rendered as a label."""
    iterations = int(variant.split()[0])
    run = simulate_irregular(suite_graph(graph_name), n_threads,
                             iterations=iterations,
                             spec=IRREGULAR_MODELS[model], config=config,
                             cache_scale=scale_of(graph_name), seed=seed)
    return run.total_cycles


def _fig3_cell(key) -> float:
    """Executor cell adapter: ``(model, graph, iterations, threads)``."""
    model, g, it, t = key
    return irregular_cycles(g, f"{it} x", t, model=model)


def run_fig3(graphs=None, threads=None, jobs=None,
             store=None) -> dict[str, PanelResult]:
    """Regenerate all three Figure 3 panels.

    Speedups are "computed relatively to the same number of iterations"
    (§V-C): for each (graph, iteration count) the baseline is the fastest
    1-thread run across the three models, shared by all three panels.
    Cells go through the campaign executor like every ``run_panel``
    figure — ``jobs``/``store`` (or ``REPRO_JOBS``/``REPRO_STORE``)
    parallelise and cache the 4-axis sweep.
    """
    from repro._util import env_bool
    from repro.campaign.executor import execute
    from repro.experiments.harness import (geomean, panel_graphs,
                                           panel_store, panel_threads)

    graphs = graphs if graphs is not None else panel_graphs()
    threads = threads if threads is not None else panel_threads()
    if 1 not in threads:
        threads = [1] + list(threads)

    keys = [(model, g, it, t) for model in IRREGULAR_MODELS for g in graphs
            for it in ITERATION_COUNTS for t in threads]
    report = execute(
        _fig3_cell, keys, jobs=jobs, on_error="raise",
        store=panel_store(store),
        spec_for=lambda k: {"panel": "fig3", "model": k[0], "graph": k[1],
                            "iterations": k[2], "threads": k[3]},
        labels_for=lambda k: {"graph": k[1], "variant": f"{k[0]}-{k[2]}it",
                              "threads": k[3]},
        progress=env_bool("REPRO_PROGRESS"),
        desc="cells (fig3)")
    if report.interrupted:
        raise KeyboardInterrupt
    cycles = report.values
    baseline = {(g, it): min(cycles[(m, g, it, 1)] for m in IRREGULAR_MODELS)
                for g in graphs for it in ITERATION_COUNTS}

    out = {}
    for model in IRREGULAR_MODELS:
        title = f"Fig 3: irregular computation speedup, {model}"
        panel = PanelResult(title=title, thread_counts=list(threads))
        for it in ITERATION_COUNTS:
            label = f"{it} iteration{'s' if it > 1 else ''}"
            per_graph = []
            for g in graphs:
                s = np.asarray([baseline[(g, it)] / cycles[(model, g, it, t)]
                                for t in threads])
                panel.per_graph[(label, g)] = s
                per_graph.append(s)
            stacked = np.stack(per_graph)
            panel.series[label] = np.asarray(
                [geomean(stacked[:, i]) for i in range(len(threads))])
        out[title] = panel
    return out
