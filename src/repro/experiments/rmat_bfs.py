"""Graph500-style extension experiment: BFS on R-MAT graphs.

The paper grounds parallel BFS in the Graph 500 benchmark, whose inputs
are Kronecker/R-MAT graphs — low diameter, heavy-tailed degrees — the
structural opposite of the FEM suite.  This experiment runs the paper's
BFS variants on R-MAT inputs: with only ~6–10 BFS levels and very wide
frontiers, the analytic model predicts near-perfect scaling, and the
relaxed block queue should track it much more closely than on the deep
meshes of Figure 4.  It also reports how much edge work the
direction-optimising extension saves on these inputs.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.experiments.harness import PanelResult, geomean, panel_threads
from repro.graph.generators import rmat
from repro.kernels.bfs.direction_optimizing import bfs_direction_optimizing
from repro.kernels.bfs.layered import simulate_bfs
from repro.kernels.bfs.sequential import frontier_profile
from repro.machine.config import KNF
from repro.models.bfs_model import bfs_model_speedup

__all__ = ["run_rmat_bfs", "rmat_direction_savings", "RMAT_SCALES"]

RMAT_SCALES = [13, 14]


@lru_cache(maxsize=8)
def _rmat_graph(scale: int):
    return rmat(scale, edge_factor=8, seed=100 + scale,
                name=f"rmat{scale}")


def run_rmat_bfs(scales=None, threads=None, block: int = 8) -> PanelResult:
    """BFS thread sweep over R-MAT graphs (geomean), with the model."""
    scales = scales or RMAT_SCALES
    threads = threads if threads is not None else panel_threads()
    if 1 not in threads:
        threads = [1] + list(threads)

    variants = {"OpenMP-Block-relaxed": ("openmp-block", True),
                "CilkPlus-Bag-relaxed": ("cilk-bag", True)}
    cycles = {}
    for s in scales:
        g = _rmat_graph(s)
        for label, (kind, relaxed) in variants.items():
            for t in threads:
                run = simulate_bfs(g, t, variant=kind, relaxed=relaxed,
                                   block=block, config=KNF,
                                   cache_scale=0.05, seed=1)
                cycles[(s, label, t)] = run.total_cycles

    panel = PanelResult(title="Extension: BFS on R-MAT (Graph500-style) "
                              "graphs, Intel MIC",
                        thread_counts=list(threads))
    for s in scales:
        panel.baselines[f"rmat{s}"] = min(cycles[(s, v, 1)] for v in variants)
    for label in variants:
        per_graph = []
        for s in scales:
            base = panel.baselines[f"rmat{s}"]
            arr = np.asarray([base / cycles[(s, label, t)] for t in threads])
            panel.per_graph[(label, f"rmat{s}")] = arr
            per_graph.append(arr)
        stacked = np.stack(per_graph)
        panel.series[label] = np.asarray(
            [geomean(stacked[:, i]) for i in range(len(threads))])

    model = []
    for s in scales:
        g = _rmat_graph(s)
        widths = frontier_profile(g, g.n_vertices // 2)
        raw = np.asarray([bfs_model_speedup(widths, t, block)
                          for t in threads])
        model.append(raw / raw[0] if raw[0] > 0 else raw)
    stacked = np.stack(model)
    panel.series = {"Model": np.asarray(
        [geomean(stacked[:, i]) for i in range(len(threads))]),
        **panel.series}
    return panel


def rmat_direction_savings(scale: int = 14) -> dict:
    """Edge examinations: hybrid direction-optimising vs pure top-down."""
    g = _rmat_graph(scale)
    r = bfs_direction_optimizing(g, g.n_vertices // 2, alpha=8.0)
    return {
        "graph": g.name,
        "edges_hybrid": r.edges_examined,
        "edges_topdown": r.edges_examined_topdown_only,
        "saving": 1.0 - r.edges_examined / max(1, r.edges_examined_topdown_only),
        "directions": r.directions,
    }
