"""Fault-intensity sweep — resilience of the simulated runtimes.

Not a paper figure: this experiment exercises the fault-injection layer
(:mod:`repro.sim.faults`) end to end.  For each runtime the kernels are
re-run under increasingly intense degrading faults (core throttling,
transient stalls, SMT hangs, memory-channel jitter) and the panel
reports the *degradation ratio* — healthy cycles over faulted cycles, so
1.0 means unaffected and 0.5 means the run took twice as long.  The
sweep axis is fault intensity in percent (reusing the harness' thread
axis with ``per_variant_baseline=True, baseline_point=0``); the actual
thread count is fixed at :data:`FAULT_THREADS`.

Every faulted run is validated (``verify_coloring`` / ``validate_bfs``)
before its cycles are accepted — degrading faults slow the simulated
machine but must never corrupt results; a validation failure raises and
surfaces through the harness' partial-result path as a NaN cell.

A separate kill-survival table (:func:`kill_survival_rows`) injects a
mid-kernel thread kill and reports which schedulers finish with valid
output: dynamic/guided OpenMP, Cilk and TBB redistribute the dead
thread's work, while static OpenMP loses its pre-dealt chunks.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.fig1_coloring import COLORING_VARIANTS
from repro.experiments.harness import (PanelResult, ordered_suite_graph,
                                       panel_graphs, run_panel, scale_of)
from repro.kernels.bfs.layered import simulate_bfs
from repro.kernels.bfs.validate import validate_bfs
from repro.kernels.coloring.parallel import parallel_coloring
from repro.kernels.coloring.verify import verify_coloring
from repro.machine.config import KNF
from repro.sim.faults import (DEGRADING_KINDS, FaultInjector, FaultKind,
                              FaultPlan, FaultSpec)

__all__ = ["FAULT_THREADS", "FAULT_RUNTIMES", "INTENSITIES", "fault_seed",
           "faulted_coloring_cycles", "faulted_bfs_cycles", "run_fig_faults",
           "kill_survival_rows", "format_kill_survival"]

#: Fixed thread count for the fault sweep (each thread on its own KNF core).
FAULT_THREADS = 16

#: Fault intensity levels in percent — the panel's sweep axis.
INTENSITIES = [0, 10, 25, 50, 100]
_FAST_INTENSITIES = [0, 25, 100]

#: One representative per scheduling strategy (specs from Figure 1).
FAULT_RUNTIMES = ["OpenMP-dynamic", "OpenMP-static", "CilkPlus-holder",
                  "TBB-simple"]

#: BFS runner variants matched to the same four schedulers.
_BFS_KINDS = {
    "OpenMP-dynamic": ("openmp-block", True),
    "OpenMP-static": ("openmp-tls", False),
    "CilkPlus-holder": ("cilk-bag", True),
    "TBB-simple": ("tbb-block", True),
}


def fault_seed() -> int:
    """Scenario seed (``REPRO_FAULT_SEED`` env var, default 0)."""
    from repro._util import env_int
    seed = env_int("REPRO_FAULT_SEED", 0)
    assert seed is not None
    return seed


def _intensities() -> list[int]:
    from repro.experiments.harness import fast_mode
    if fast_mode():
        return list(_FAST_INTENSITIES)
    return list(INTENSITIES)


@lru_cache(maxsize=256)
def _healthy_horizon(kernel: str, graph_name: str, variant: str) -> float:
    """Healthy total cycles — the fault-window horizon for this cell."""
    return _run_cycles(kernel, graph_name, variant, faults=None)


def _injector(kernel: str, graph_name: str, variant: str,
              intensity_pct: int) -> FaultInjector | None:
    """Fresh injector for one cell (injectors are stateful, plans are not)."""
    if intensity_pct == 0:
        return None
    horizon = _healthy_horizon(kernel, graph_name, variant)
    plan = FaultPlan.random(fault_seed(), n_cores=KNF.n_cores,
                            n_threads=FAULT_THREADS,
                            intensity=intensity_pct / 100.0,
                            horizon=horizon, kinds=DEGRADING_KINDS)
    return FaultInjector(plan)


def _run_cycles(kernel: str, graph_name: str, variant: str, faults) -> float:
    """One validated kernel run; raises if the output is corrupt."""
    graph = ordered_suite_graph(graph_name, "natural")
    if kernel == "coloring":
        run = parallel_coloring(graph, FAULT_THREADS,
                                COLORING_VARIANTS[variant], config=KNF,
                                cache_scale=scale_of(graph_name),
                                faults=faults)
        if not verify_coloring(graph, run.colors):
            raise RuntimeError(
                f"faulted colouring of {graph_name} ({variant}) is invalid")
        return run.total_cycles
    kind, relaxed = _BFS_KINDS[variant]
    source = graph.n_vertices // 2  # simulate_bfs' default source
    run = simulate_bfs(graph, FAULT_THREADS, variant=kind, relaxed=relaxed,
                       source=source, block=8, config=KNF,
                       cache_scale=scale_of(graph_name), faults=faults)
    validate_bfs(graph, source, run.dist)
    return run.total_cycles


def faulted_coloring_cycles(graph_name: str, variant: str,
                            intensity_pct: int) -> float:
    """Panel runner: colouring cycles under *intensity_pct* % faults."""
    faults = _injector("coloring", graph_name, variant, intensity_pct)
    return _run_cycles("coloring", graph_name, variant, faults)


def faulted_bfs_cycles(graph_name: str, variant: str,
                       intensity_pct: int) -> float:
    """Panel runner: BFS cycles under *intensity_pct* % faults."""
    faults = _injector("bfs", graph_name, variant, intensity_pct)
    return _run_cycles("bfs", graph_name, variant, faults)


def run_fig_faults(graphs=None, intensities=None, jobs=None,
                   store=None) -> dict[str, PanelResult]:
    """Degradation panels for colouring and BFS under random fault plans.

    Series values are healthy-over-faulted cycle ratios (geomean over
    graphs); the x axis is fault intensity in percent.  Identical
    ``REPRO_FAULT_SEED`` values regenerate bit-identical fault schedules
    and therefore identical panels (the panel title carries the seed, so
    store entries from different scenarios never collide).
    """
    graphs = graphs if graphs is not None else panel_graphs()
    intensities = intensities if intensities is not None else _intensities()
    out = {}
    for kernel, runner in (("coloring", faulted_coloring_cycles),
                           ("bfs", faulted_bfs_cycles)):
        title = (f"Faults: {kernel} degradation vs intensity % "
                 f"({FAULT_THREADS} threads, seed {fault_seed()})")
        panel = run_panel(title, runner, list(FAULT_RUNTIMES), graphs=graphs,
                          threads=list(intensities),
                          per_variant_baseline=True, baseline_point=0,
                          jobs=jobs, store=store)
        out[kernel] = panel
    return out


def kill_survival_rows(graph_name: str | None = None,
                       victim: int = 3, at_fraction: float = 0.1):
    """Kill one thread mid-colouring and report who survives it.

    Returns ``(headers, rows)`` for :func:`~repro.experiments.report.format_rows`:
    per runtime, whether the run completed, whether the colouring is
    still valid, and the cycle overhead relative to healthy.  Work-
    redistributing schedulers (dynamic, stealing) stay valid; static
    OpenMP loses the victim's pre-dealt chunks and fails validation —
    the degradation mode the fault layer is built to expose.
    """
    if graph_name is None:
        graph_name = panel_graphs()[0]
    graph = ordered_suite_graph(graph_name, "natural")
    headers = ["runtime", "completed", "valid", "cycles vs healthy"]
    rows = []
    for variant in FAULT_RUNTIMES:
        healthy = _healthy_horizon("coloring", graph_name, variant)
        plan = FaultPlan(fault_seed(), specs=(
            FaultSpec(FaultKind.THREAD_KILL, target=victim,
                      start=at_fraction * healthy),))
        completed, valid, ratio = True, False, float("nan")
        try:
            run = parallel_coloring(graph, FAULT_THREADS,
                                    COLORING_VARIANTS[variant], config=KNF,
                                    cache_scale=scale_of(graph_name),
                                    faults=FaultInjector(plan))
            valid = verify_coloring(graph, run.colors)
            ratio = run.total_cycles / healthy
        except Exception:
            completed = False
        rows.append((variant, completed, valid, ratio))
    return headers, rows


def format_kill_survival(graph_name: str | None = None) -> str:
    """ASCII kill-survival table (see :func:`kill_survival_rows`)."""
    from repro.experiments.report import format_rows
    headers, rows = kill_survival_rows(graph_name)
    return format_rows(headers, rows)
