"""``repro-experiments profile`` — one instrumented kernel run.

Runs a single kernel execution under the full telemetry stack
(:class:`repro.obs.Observer`) and writes the two artifacts:

* a Chrome trace-event JSON (load it at https://ui.perfetto.dev) with
  one track per simulated thread plus the resource and engine tracks,
* a JSONL metrics dump, one cycle-breakdown frame per parallel loop,
  suitable for ``repro-experiments diff-metrics``.

It also prints an ASCII Gantt chart of the longest loop and a
reconciliation summary showing that the exported breakdown accounts for
the loop's full thread-cycle budget — the invariant the telemetry layer
guarantees by construction.

The run executes under :class:`repro.bench.profiler.WallProfiler`, so
alongside the *simulated-cycle* breakdown it reports where the *wall
clock* went, bucketed onto the same subsystem labels the spans use
(``engine:cond-wait``, ``runtime:chunk``, ...).  For whole-suite wall
profiling and flamegraph export use ``repro bench profile``, which this
command is a single-kernel front-end to.
"""

from __future__ import annotations

import os

from repro.machine.config import KNF
from repro.obs import Observer
from repro.obs.metrics import MetricsFrame
from repro.sim.trace import breakdown as stats_breakdown
from repro.sim.trace import gantt

__all__ = ["run_profile", "reconciliation", "DEFAULT_TRACE",
           "DEFAULT_METRICS"]

DEFAULT_TRACE = "trace.json"
DEFAULT_METRICS = "metrics.jsonl"

#: Kernel name -> runner(graph, variant, threads) -> KernelRun.
_KERNELS = ("coloring", "bfs")


def _run_kernel(kernel: str, graph_name: str, variant: str,
                n_threads: int, seed: int = 0):
    """Execute one kernel run, returning its ``KernelRun``."""
    from repro.experiments.harness import ordered_suite_graph, scale_of
    from repro.graph.suite import suite_graph

    if kernel == "coloring":
        from repro.experiments.fig1_coloring import COLORING_VARIANTS
        from repro.kernels.coloring.parallel import parallel_coloring
        if variant not in COLORING_VARIANTS:
            raise ValueError(
                f"unknown coloring variant {variant!r} "
                f"(choose from {sorted(COLORING_VARIANTS)})")
        return parallel_coloring(
            ordered_suite_graph(graph_name, "natural"), n_threads,
            COLORING_VARIANTS[variant], config=KNF,
            cache_scale=scale_of(graph_name), seed=seed)
    if kernel == "bfs":
        from repro.experiments.fig4_bfs import BLOCK_SIZE, _BFS_VARIANTS
        from repro.kernels.bfs.layered import simulate_bfs
        if variant not in _BFS_VARIANTS:
            raise ValueError(
                f"unknown bfs variant {variant!r} "
                f"(choose from {sorted(_BFS_VARIANTS)})")
        kind, relaxed = _BFS_VARIANTS[variant]
        return simulate_bfs(suite_graph(graph_name), n_threads, variant=kind,
                            relaxed=relaxed, block=BLOCK_SIZE, config=KNF,
                            cache_scale=scale_of(graph_name), seed=seed)
    raise ValueError(f"unknown kernel {kernel!r} (choose from {_KERNELS})")


def reconciliation(frames: list[MetricsFrame]) -> tuple[float, str]:
    """(worst relative gap, summary line) of the breakdown invariant.

    For every frame, the six breakdown components must sum to the
    thread-cycle budget ``span * n_threads``; the gap is reported
    relative to the budget.
    """
    worst = 0.0
    for frame in frames:
        budget = frame.thread_budget
        if budget <= 0:
            continue
        gap = abs(sum(frame.breakdown().values()) - budget) / budget
        worst = max(worst, gap)
    summary = (f"breakdown reconciliation: worst gap {worst:.3%} of the "
               f"thread-cycle budget over {len(frames)} loop frame(s)")
    return worst, summary


def run_profile(kernel: str = "coloring", graph: str = "auto",
                variant: str | None = None, threads: int = 31,
                trace_path: str | os.PathLike = DEFAULT_TRACE,
                metrics_path: str | os.PathLike = DEFAULT_METRICS,
                seed: int = 0, wall_top: int = 5) -> int:
    """Run one instrumented kernel execution and write both artifacts.

    *wall_top* rows of wall-clock attribution are printed after the
    simulated-cycle summaries (0 disables wall profiling, removing its
    interpreter overhead).
    """
    from repro.bench.profiler import WallProfiler

    if variant is None:
        variant = "OpenMP-dynamic" if kernel == "coloring" \
            else "OpenMP-Block-relaxed"
    profiler = WallProfiler()
    with Observer() as obs:
        with obs.registry.cell(graph=graph, variant=variant, threads=threads):
            if wall_top > 0:
                with profiler:
                    run = _run_kernel(kernel, graph, variant, threads,
                                      seed=seed)
            else:
                run = _run_kernel(kernel, graph, variant, threads, seed=seed)
    obs.write(trace_path=trace_path, metrics_path=metrics_path)

    frames = obs.frames
    print(f"{kernel} on {graph} / {variant} / {threads} threads: "
          f"{run.total_cycles:.0f} simulated cycles over "
          f"{len(frames)} parallel loops")
    print(f"trace:   {os.fspath(trace_path)} "
          f"({len(obs.tracer.events)} events — open in Perfetto)")
    print(f"metrics: {os.fspath(metrics_path)} ({len(frames)} frames)")
    print()

    if run.loop_stats:
        longest = max(run.loop_stats, key=lambda s: s.span)
        print("longest loop:")
        print(gantt(longest))
        print(stats_breakdown(longest, threads))
        print()

    _, summary = reconciliation(frames)
    print(summary)

    if wall_top > 0:
        print()
        print(profiler.report.format_table(wall_top))
    return 0
