"""Figure 1 — speedup of the colouring implementations on all (naturally
ordered) graphs, one panel per programming model.

Paper variants and tuning (§V-B): OpenMP dynamic/guided best at chunk 100,
static at chunk 40; Cilk holder vs. worker-ID at grain 100; TBB
simple/auto/affinity at minimum chunk 40.  The suite here is ~1/8 the
paper's graph size, so chunk sizes scale by the same factor (13 / 5) to
preserve the chunks-per-thread structure the tuning produced.  Paper outcomes: dynamic pulls
ahead past 51 threads reaching ~72 at 121; Cilk variants nearly tie,
peaking ~32; TBB simple clearly best, peaking ~45 around 101 threads.
"""

from __future__ import annotations

from repro.experiments.harness import PanelResult, run_panel, scale_of, \
    ordered_suite_graph
from repro.machine.config import KNF
from repro.kernels.coloring.parallel import parallel_coloring
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule, TlsMode)

__all__ = ["COLORING_VARIANTS", "coloring_cycles", "run_fig1", "BEST_PER_MODEL"]

#: Every runtime variant the figure compares, with the paper's best chunks.
COLORING_VARIANTS: dict[str, RuntimeSpec] = {
    "OpenMP-dynamic": RuntimeSpec(ProgrammingModel.OPENMP,
                                  schedule=Schedule.DYNAMIC, chunk=13),
    "OpenMP-static": RuntimeSpec(ProgrammingModel.OPENMP,
                                 schedule=Schedule.STATIC, chunk=5),
    "OpenMP-guided": RuntimeSpec(ProgrammingModel.OPENMP,
                                 schedule=Schedule.GUIDED, chunk=13),
    "CilkPlus": RuntimeSpec(ProgrammingModel.CILK,
                            tls_mode=TlsMode.WORKER_ID, chunk=13),
    "CilkPlus-holder": RuntimeSpec(ProgrammingModel.CILK,
                                   tls_mode=TlsMode.HOLDER, chunk=13),
    "TBB-simple": RuntimeSpec(ProgrammingModel.TBB,
                              partitioner=Partitioner.SIMPLE, chunk=5),
    "TBB-auto": RuntimeSpec(ProgrammingModel.TBB,
                            partitioner=Partitioner.AUTO, chunk=5),
    "TBB-affinity": RuntimeSpec(ProgrammingModel.TBB,
                                partitioner=Partitioner.AFFINITY, chunk=5),
}

#: The winner of each panel — carried forward to Figure 2 (§V-B).
BEST_PER_MODEL = ["OpenMP-dynamic", "CilkPlus-holder", "TBB-simple"]

_PANELS = {
    "Fig 1(a): coloring speedup, OpenMP (natural order)":
        ["OpenMP-dynamic", "OpenMP-static", "OpenMP-guided"],
    "Fig 1(b): coloring speedup, Cilk Plus (natural order)":
        ["CilkPlus", "CilkPlus-holder"],
    "Fig 1(c): coloring speedup, TBB (natural order)":
        ["TBB-simple", "TBB-auto", "TBB-affinity"],
}


def coloring_cycles(graph_name: str, variant: str, n_threads: int,
                    ordering: str = "natural", config=KNF,
                    seed: int = 0) -> float:
    """Simulated cycles of one colouring run (panel runner)."""
    graph = ordered_suite_graph(graph_name, ordering)
    run = parallel_coloring(graph, n_threads, COLORING_VARIANTS[variant],
                            config=config, cache_scale=scale_of(graph_name),
                            seed=seed)
    return run.total_cycles


def run_fig1(graphs=None, threads=None, jobs=None,
             store=None) -> dict[str, PanelResult]:
    """Regenerate all three Figure 1 panels.

    All eight variants are swept together so every panel shares the same
    per-graph baseline — "the configuration that performs the fastest on
    1 thread for that graph" (§V-A), which in practice is an OpenMP run.
    ``jobs``/``store`` reach the campaign executor via ``run_panel``.
    """
    combined = run_panel("fig1", coloring_cycles, list(COLORING_VARIANTS),
                         graphs=graphs, threads=threads, jobs=jobs,
                         store=store)
    out = {}
    for title, variants in _PANELS.items():
        panel = PanelResult(title=title,
                            thread_counts=combined.thread_counts,
                            baselines=combined.baselines)
        panel.series = {v: combined.series[v] for v in variants}
        panel.per_graph = {k: s for k, s in combined.per_graph.items()
                           if k[0] in variants}
        out[title] = panel
    return out
