"""Chunk-size tuning sweep (§V-B methodology).

"Different chunk sizes (from 40 to 150) were tried and only the best
results are reported.  We observed that, for the OpenMP experiments, the
dynamic scheduling policy performs better with a chunk size of 100.  The
static policy is better with a chunk size of 40..."

This experiment reproduces that tuning on the scaled suite: for each
scheduling policy it sweeps the chunk size and reports the speedup at
full thread count per chunk, exposing the tradeoff between scheduling
overhead (small chunks) and load-balance/concurrency quantisation (large
chunks).  Paper chunk sizes 40–150 correspond to 5–19 at the ~1/8 suite
scale.
"""

from __future__ import annotations

from repro.experiments.harness import PanelResult, run_panel, scale_of
from repro.graph.suite import suite_graph
from repro.kernels.coloring.parallel import parallel_coloring
from repro.machine.config import KNF
from repro.runtime.base import ProgrammingModel, RuntimeSpec, Schedule

__all__ = ["run_chunk_sweep", "CHUNK_SIZES"]

#: The paper's 40-150 range, scaled by ~1/8.
CHUNK_SIZES = [3, 5, 8, 13, 19, 32]


def run_chunk_sweep(schedule: Schedule = Schedule.DYNAMIC,
                    graphs=None, threads=None, jobs=None,
                    store=None) -> PanelResult:
    """Colouring speedup as a function of OpenMP chunk size."""
    graphs = graphs or ["hood", "msdoor"]

    def runner(g, variant, t):
        chunk = int(variant.split("=")[1])
        spec = RuntimeSpec(ProgrammingModel.OPENMP, schedule=schedule,
                           chunk=chunk)
        run = parallel_coloring(suite_graph(g), t, spec, KNF,
                                cache_scale=scale_of(g), seed=1)
        return run.total_cycles

    variants = [f"chunk={c}" for c in CHUNK_SIZES]
    return run_panel(
        f"Chunk-size sweep: coloring, OpenMP {schedule.value}",
        runner, variants, graphs=graphs, threads=threads, jobs=jobs,
        store=store)
