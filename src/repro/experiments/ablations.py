"""Ablation studies beyond the paper's figures (DESIGN.md §4).

Each ablation isolates one design choice the paper discusses:

* **block size** — the BFS block-queue tradeoff ("keeping the block size
  small, but not so small that we do not use atomics too often", §IV-C);
* **relaxed vs. locked** — the benign-race queue relaxation (§V-D:
  "relaxed queue variants led to consistently better speedup");
* **SMT** — the headline claim: without SMT contexts the memory-bound
  kernels stop scaling past the core count (§VI);
* **aggregate cache** — disable the chip-residency benefit (remote hits
  priced as DRAM): the super-linear Figure 2 speedup collapses to ≤ t;
* **memory bandwidth** — shrink the DRAM channel until the linear
  coloring scaling breaks (the saturation the KNF prototype avoided).
"""

from __future__ import annotations


from repro.experiments.fig1_coloring import COLORING_VARIANTS, coloring_cycles
from repro.experiments.fig4_bfs import bfs_cycles, run_fig4_panel
from repro.experiments.harness import PanelResult, run_panel, scale_of
from repro.graph.suite import suite_graph
from repro.kernels.coloring.parallel import parallel_coloring
from repro.machine.config import KNF

__all__ = ["run_block_size_ablation", "run_relaxed_ablation",
           "run_smt_ablation", "run_cache_ablation",
           "run_bandwidth_ablation", "run_all_ablations"]


def run_block_size_ablation(graphs=None, threads=None, jobs=None,
                            store=None) -> PanelResult:
    """BFS speedup vs. queue block size (OpenMP-Block-relaxed)."""
    graphs = graphs or ["pwtk", "inline_1"]

    def runner(g, variant, t):
        block = int(variant.split("=")[1])
        return bfs_cycles(g, "OpenMP-Block-relaxed", t, block=block)

    variants = [f"b={b}" for b in (8, 16, 32, 64, 128)]
    return run_panel("Ablation: BFS block size (OpenMP-Block-relaxed)",
                     runner, variants, graphs=graphs, threads=threads,
                     per_variant_baseline=False, jobs=jobs, store=store)


def run_relaxed_ablation(graphs=None, threads=None, jobs=None,
                         store=None) -> PanelResult:
    """Relaxed vs. locked queue insertion across BFS variants."""
    return run_fig4_panel(
        "Ablation: relaxed vs locked queues (BFS, Intel MIC)",
        ["OpenMP-Block-relaxed", "OpenMP-Block"],
        graphs or ["pwtk", "inline_1", "ldoor"], KNF, threads=threads,
        jobs=jobs, store=store)


def run_smt_ablation(graphs=None, threads=None, jobs=None,
                     store=None) -> PanelResult:
    """Coloring on shuffled graphs with 1-way vs. 4-way SMT cores."""
    graphs = graphs or ["hood", "msdoor"]
    no_smt = KNF.with_(name="KNF-noSMT", smt_per_core=1)

    def runner(g, variant, t):
        config = KNF if variant.endswith("4-way") else no_smt
        if t > config.max_threads:
            t = config.max_threads
        graph = suite_graph(g)
        run = parallel_coloring(graph, t, COLORING_VARIANTS["OpenMP-dynamic"],
                                config=config, cache_scale=scale_of(g))
        return run.total_cycles

    return run_panel("Ablation: SMT on/off (coloring, natural order)",
                     runner, ["SMT 4-way", "SMT 1-way"], graphs=graphs,
                     threads=threads, per_variant_baseline=True, jobs=jobs,
                     store=store)


def run_cache_ablation(graphs=None, threads=None, jobs=None,
                       store=None) -> PanelResult:
    """Shuffled coloring with and without the aggregate-cache benefit."""
    graphs = graphs or ["hood", "msdoor"]
    no_agg = KNF.with_(name="KNF-noAggCache",
                       remote_hit_cycles=KNF.dram_cycles)

    def runner(g, variant, t):
        config = KNF if variant == "with chip cache" else no_agg
        return coloring_cycles(g, "OpenMP-dynamic", t, ordering="random",
                               config=config)

    return run_panel(
        "Ablation: aggregate-cache residency (coloring, shuffled)",
        runner, ["with chip cache", "without chip cache"], graphs=graphs,
        threads=threads, per_variant_baseline=True, jobs=jobs, store=store)


def run_bandwidth_ablation(graphs=None, threads=None, jobs=None,
                           store=None) -> PanelResult:
    """Shuffled coloring under progressively narrower DRAM channels.

    Caches are shrunk to almost nothing so every access actually reaches
    DRAM (on the stock KNF the chip's aggregate cache absorbs the random
    traffic — remote hits consume no channel bandwidth — which is exactly
    why the real prototype's memory subsystem "scales well").
    """
    graphs = graphs or ["hood"]

    def runner(g, variant, t):
        banks = int(variant.split("=")[1])
        config = KNF.with_(name=f"KNF-{banks}banks", mem_banks=banks,
                           cache_lines_per_core=8,
                           dram_transfer_cycles=8.0)
        return coloring_cycles(g, "OpenMP-dynamic", t, ordering="random",
                               config=config)

    variants = [f"banks={b}" for b in (16, 4, 1)]
    return run_panel("Ablation: DRAM bandwidth (coloring, shuffled)",
                     runner, variants, graphs=graphs, threads=threads,
                     per_variant_baseline=True, jobs=jobs, store=store)


def run_all_ablations(graphs=None, threads=None, jobs=None,
                      store=None) -> dict[str, PanelResult]:
    """Run every ablation; returns panels keyed by short name."""
    return {
        "block_size": run_block_size_ablation(threads=threads, jobs=jobs,
                                              store=store),
        "relaxed": run_relaxed_ablation(threads=threads, jobs=jobs,
                                        store=store),
        "smt": run_smt_ablation(threads=threads, jobs=jobs, store=store),
        "cache": run_cache_ablation(threads=threads, jobs=jobs, store=store),
        "bandwidth": run_bandwidth_ablation(threads=threads, jobs=jobs,
                                            store=store),
    }
