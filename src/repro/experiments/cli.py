"""Command-line entry point: ``repro-experiments <what>``.

Regenerates the paper's tables and figures as ASCII tables, e.g.::

    repro-experiments table1
    repro-experiments fig1 --fast
    repro-experiments all
"""

from __future__ import annotations

import argparse
import os
import sys
import time

__all__ = ["main"]

_CHOICES = ["table1", "fig1", "fig2", "fig3", "fig4", "fig-faults",
            "ablations", "chunk-sweep", "all"]


def main(argv=None) -> int:
    """Entry point for ``repro-experiments`` (returns the exit code)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated Intel MIC machine.")
    parser.add_argument("what", choices=_CHOICES, help="experiment to run")
    parser.add_argument("--fast", action="store_true",
                        help="subset of graphs/thread counts (sets REPRO_FAST)")
    parser.add_argument("--graphs", default=None,
                        help="comma-separated suite graph names")
    parser.add_argument("--threads", default=None,
                        help="comma-separated thread counts")
    parser.add_argument("--retries", type=int, default=None,
                        help="per-cell retry budget (sets REPRO_RETRIES)")
    parser.add_argument("--checkpoint", default=None,
                        help="sweep checkpoint path (sets REPRO_CHECKPOINT; "
                             "re-run with the same path to resume)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="fault scenario seed (sets REPRO_FAULT_SEED)")
    args = parser.parse_args(argv)

    if args.fast:
        os.environ["REPRO_FAST"] = "1"
    if args.graphs:
        os.environ["REPRO_GRAPHS"] = args.graphs
    if args.threads:
        os.environ["REPRO_THREADS"] = args.threads
    if args.retries is not None:
        os.environ["REPRO_RETRIES"] = str(args.retries)
    if args.checkpoint:
        os.environ["REPRO_CHECKPOINT"] = args.checkpoint
    if args.fault_seed is not None:
        os.environ["REPRO_FAULT_SEED"] = str(args.fault_seed)

    from repro.experiments.report import print_panel
    from repro.experiments.table1 import run_table1

    t0 = time.time()
    what = args.what
    if what in ("table1", "all"):
        run_table1()
        print()
    if what in ("fig1", "all"):
        from repro.experiments.fig1_coloring import run_fig1
        for panel in run_fig1().values():
            print_panel(panel)
    if what in ("fig2", "all"):
        from repro.experiments.fig2_shuffled import run_fig2
        print_panel(run_fig2())
    if what in ("fig3", "all"):
        from repro.experiments.fig3_irregular import run_fig3
        for panel in run_fig3().values():
            print_panel(panel)
    if what in ("fig4", "all"):
        from repro.experiments.fig4_bfs import run_fig4
        for panel in run_fig4().values():
            print_panel(panel)
    if what in ("fig-faults", "all"):
        from repro.experiments.fig_faults import (format_kill_survival,
                                                  run_fig_faults)
        for panel in run_fig_faults().values():
            print_panel(panel)
        print("Kill survival (one thread killed mid-colouring):")
        print(format_kill_survival())
        print()
    if what == "chunk-sweep":
        from repro.experiments.chunk_sweep import run_chunk_sweep
        print_panel(run_chunk_sweep())
    if what in ("ablations", "all"):
        from repro.experiments.ablations import run_all_ablations
        for panel in run_all_ablations().values():
            print_panel(panel)
    print(f"[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
