"""Command-line entry point: ``repro-experiments <what>``.

Regenerates the paper's tables and figures as ASCII tables, e.g.::

    repro-experiments table1
    repro-experiments fig1 --fast
    repro-experiments all

Telemetry (``repro.obs``):

* ``--trace PATH`` / ``--metrics PATH`` on any figure run wraps the
  whole run in an :class:`~repro.obs.Observer` and writes the Chrome
  trace / metrics JSONL next to the ASCII output;
* ``profile`` runs one instrumented kernel and emits both artifacts
  plus an ASCII Gantt (see :mod:`repro.experiments.profile`);
* ``diff-metrics BASELINE CURRENT`` compares two metrics dumps and
  exits non-zero on cycle-breakdown drift past ``--threshold`` — the
  CI perf-regression gate.

Campaigns (``repro.campaign``):

* ``repro campaign run|status|cache ...`` delegates to
  :mod:`repro.campaign.cli` — declarative sweep specs, a parallel
  executor and a content-addressed result store;
* ``--jobs N`` computes any figure's sweep cells on N worker processes
  (bitwise-identical to the serial run); ``--store DIR`` caches every
  finished cell so repeated figure/ablation/CI runs recompute nothing;
* ``repro chaos SPEC.json`` delegates to :mod:`repro.campaign.chaos` —
  runs a campaign under injected process faults (worker SIGKILL, runner
  hangs/exceptions, store corruption) and fails unless the report is
  byte-identical to a clean serial run.

Static analysis (``repro.lint``):

* ``repro lint ...`` delegates to :mod:`repro.lint.cli` — the AST-level
  invariant checker (determinism, env hygiene, observer gating, kernel
  footprints, lock/barrier pairing) behind the CI lint gate.

Campaign service (``repro.serve``):

* ``repro serve start|submit|status|drain ...`` delegates to
  :mod:`repro.serve.cli` — a stdlib-asyncio HTTP service that accepts
  campaign specs as jobs, dedupes shared cells, and serves
  byte-deterministic results from a sharded store.

Graph registry (``repro.graphstore``):

* ``repro graphs build|ls|verify|gc ...`` delegates to
  :mod:`repro.graphstore.cli` — named graphs (``suite:ldoor``,
  ``tube:1m``, ``rmat:s20``) built once as checksummed ``.rgr``
  binaries and memory-mapped on every later load; with
  ``REPRO_GRAPH_DIR`` set, suite graphs everywhere (figures, campaign
  workers, serve) resolve through the registry instead of regenerating.

Benchmarking (``repro.bench``):

* ``repro bench run|profile|compare|trend ...`` delegates to
  :mod:`repro.bench.cli` — the wall-clock benchmark harness:
  median-of-K pinned suites appended to ``BENCH_<suite>.json``
  trajectory files, subsystem-bucketed wall profiling with flamegraph
  export, and the perf-regression gate CI runs against the committed
  baselines.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import nullcontext

__all__ = ["main"]

_CHOICES = ["table1", "fig1", "fig2", "fig3", "fig4", "fig-faults",
            "ablations", "chunk-sweep", "profile", "diff-metrics", "all"]

#: Figure runs that honour --trace/--metrics instrumentation.
_OBSERVABLE = {"fig1", "fig2", "fig3", "fig4", "fig-faults", "ablations",
               "chunk-sweep", "all"}


class _VersionAction(argparse.Action):
    """``--version``: package version + campaign-store code fingerprint.

    The fingerprint half of every store key is surfaced here so a user
    can see at a glance whether two checkouts will share cache entries.
    Computed lazily — it hashes the whole source tree.
    """

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        import repro
        from repro.campaign.store import code_fingerprint
        print(f"repro {repro.__version__} "
              f"(code fingerprint {code_fingerprint()})")
        parser.exit()


def main(argv=None) -> int:
    """Entry point for ``repro-experiments`` (returns the exit code)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import main as campaign_main
        return campaign_main(list(argv[1:]))
    if argv and argv[0] == "chaos":
        from repro.campaign.chaos import main as chaos_main
        return chaos_main(list(argv[1:]))
    if argv and argv[0] == "check":
        from repro.check.cli import main as check_main
        return check_main(list(argv[1:]))
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main
        return lint_main(list(argv[1:]))
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main
        return bench_main(list(argv[1:]))
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main
        return serve_main(list(argv[1:]))
    if argv and argv[0] == "graphs":
        from repro.graphstore.cli import main as graphs_main
        return graphs_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated Intel MIC machine.  'repro campaign ...' "
                    "runs declarative sweep campaigns instead.")
    parser.add_argument("--version", action=_VersionAction,
                        help="print version + campaign code fingerprint")
    parser.add_argument("what", choices=_CHOICES, help="experiment to run")
    parser.add_argument("paths", nargs="*", default=[],
                        help="for diff-metrics: BASELINE and CURRENT "
                             "metrics JSONL files")
    parser.add_argument("--fast", action="store_true",
                        help="subset of graphs/thread counts (sets REPRO_FAST)")
    parser.add_argument("--graphs", default=None,
                        help="comma-separated suite graph names")
    parser.add_argument("--threads", default=None,
                        help="comma-separated thread counts")
    parser.add_argument("--retries", type=int, default=None,
                        help="per-cell retry budget (sets REPRO_RETRIES)")
    parser.add_argument("--checkpoint", default=None,
                        help="sweep checkpoint path (sets REPRO_CHECKPOINT; "
                             "re-run with the same path to resume)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep cells (sets "
                             "REPRO_JOBS; 0 = one per CPU, default serial)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="content-addressed result store root (sets "
                             "REPRO_STORE; cached cells are never "
                             "recomputed)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="fault scenario seed (sets REPRO_FAULT_SEED)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a Chrome trace-event JSON of the run "
                             "(open in Perfetto)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="record per-loop metric frames as JSONL")
    parser.add_argument("--kernel", default="coloring",
                        choices=["coloring", "bfs"],
                        help="profile: kernel to instrument")
    parser.add_argument("--graph", default="auto",
                        help="profile: suite graph to run on")
    parser.add_argument("--variant", default=None,
                        help="profile: runtime variant "
                             "(default: the kernel's OpenMP variant)")
    parser.add_argument("--profile-threads", type=int, default=31,
                        help="profile: simulated thread count")
    parser.add_argument("--threshold", type=float, default=None,
                        help="diff-metrics: relative drift that fails the "
                             "diff (default 0.20)")
    args = parser.parse_args(argv)

    if args.fast:
        os.environ["REPRO_FAST"] = "1"
    if args.graphs:
        os.environ["REPRO_GRAPHS"] = args.graphs
    if args.threads:
        os.environ["REPRO_THREADS"] = args.threads
    if args.retries is not None:
        os.environ["REPRO_RETRIES"] = str(args.retries)
    if args.checkpoint:
        os.environ["REPRO_CHECKPOINT"] = args.checkpoint
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.store:
        os.environ["REPRO_STORE"] = args.store
    if args.fault_seed is not None:
        os.environ["REPRO_FAULT_SEED"] = str(args.fault_seed)

    what = args.what
    if what == "diff-metrics":
        return _diff_metrics(args)
    if what == "profile":
        from repro.experiments.profile import (DEFAULT_METRICS, DEFAULT_TRACE,
                                               run_profile)
        print("note: 'profile' runs one instrumented kernel; for "
              "whole-suite wall-clock profiling and flamegraph export "
              "use 'repro bench profile'", file=sys.stderr)
        return run_profile(
            kernel=args.kernel, graph=args.graph, variant=args.variant,
            threads=args.profile_threads,
            trace_path=args.trace or DEFAULT_TRACE,
            metrics_path=args.metrics or DEFAULT_METRICS)

    from repro.experiments.report import print_panel
    from repro.experiments.table1 import run_table1

    observe = (args.trace or args.metrics) and what in _OBSERVABLE
    if observe:
        from repro.obs import Observer
        obs = Observer(trace=bool(args.trace), metrics=bool(args.metrics))
    else:
        obs = None

    t0 = time.time()
    with obs if obs is not None else nullcontext():
        if what in ("table1", "all"):
            run_table1()
            print()
        if what in ("fig1", "all"):
            from repro.experiments.fig1_coloring import run_fig1
            for panel in run_fig1().values():
                print_panel(panel)
        if what in ("fig2", "all"):
            from repro.experiments.fig2_shuffled import run_fig2
            print_panel(run_fig2())
        if what in ("fig3", "all"):
            from repro.experiments.fig3_irregular import run_fig3
            for panel in run_fig3().values():
                print_panel(panel)
        if what in ("fig4", "all"):
            from repro.experiments.fig4_bfs import run_fig4
            for panel in run_fig4().values():
                print_panel(panel)
        if what in ("fig-faults", "all"):
            from repro.experiments.fig_faults import (format_kill_survival,
                                                      run_fig_faults)
            for panel in run_fig_faults().values():
                print_panel(panel)
            print("Kill survival (one thread killed mid-colouring):")
            print(format_kill_survival())
            print()
        if what == "chunk-sweep":
            from repro.experiments.chunk_sweep import run_chunk_sweep
            print_panel(run_chunk_sweep())
        if what in ("ablations", "all"):
            from repro.experiments.ablations import run_all_ablations
            for panel in run_all_ablations().values():
                print_panel(panel)
    if obs is not None:
        obs.write(trace_path=args.trace, metrics_path=args.metrics)
        for path, label in ((args.trace, "trace"), (args.metrics, "metrics")):
            if path:
                print(f"[{label} written to {path}]", file=sys.stderr)
    print(f"[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


def _diff_metrics(args) -> int:
    """``diff-metrics BASELINE CURRENT``: 0 iff no drift past threshold."""
    from repro.obs.diff import DEFAULT_THRESHOLD, diff_metrics_files

    if len(args.paths) != 2:
        print("diff-metrics needs exactly two paths: BASELINE CURRENT",
              file=sys.stderr)
        return 2
    threshold = args.threshold if args.threshold is not None \
        else DEFAULT_THRESHOLD
    report = diff_metrics_files(args.paths[0], args.paths[1],
                                threshold=threshold)
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
