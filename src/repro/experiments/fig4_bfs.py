"""Figure 4 — speedup of the layered parallel BFS.

Panels:

* (a) ``pwtk`` on the MIC — the outlier whose narrow levels cap the
  achievable speedup (the model's slope break at 13 threads);
* (b) ``inline_1`` on the MIC — about twice pwtk's peak;
* (c) all graphs on the MIC — relaxed block queues (OpenMP/TBB) against
  the Leiserson–Schardl bag, with the analytic model;
* (d) all graphs on the host CPU — adding SNAP's OpenMP-TLS.

The "Model" series is the §III-C analytic bound
(:mod:`repro.models.bfs_model`), normalised by its own 1-thread value so
it is comparable to measured speedups (the paper's full-size graphs make
that normalisation ≈1; on the scaled suite the 1-thread block padding is
visible).  Measured baselines follow the paper: fastest 1-thread
configuration per graph within the panel.
"""

from __future__ import annotations

from functools import lru_cache, partial

import numpy as np

from repro.experiments.harness import (PanelResult, geomean, panel_graphs,
                                       panel_threads, run_panel, scale_of)
from repro.graph.suite import suite_graph
from repro.kernels.bfs.layered import simulate_bfs
from repro.kernels.bfs.sequential import frontier_profile
from repro.machine.config import HOST_XEON, KNF, MachineConfig
from repro.models.bfs_model import bfs_model_speedup

__all__ = ["BLOCK_SIZE", "bfs_cycles", "model_series", "run_fig4",
           "run_fig4_panel"]

#: The paper's best block size was 32 on the full-size graphs (§V-D); the
#: ~1/8-scale suite preserves the blocks-per-level structure at 8 (the
#: block-size ablation bench confirms 8 is the scaled optimum).
BLOCK_SIZE = 8

#: Variant label -> (simulate_bfs variant, relaxed).
_BFS_VARIANTS = {
    "OpenMP-Block-relaxed": ("openmp-block", True),
    "OpenMP-Block": ("openmp-block", False),
    "TBB-Block-relaxed": ("tbb-block", True),
    "OpenMP-TLS": ("openmp-tls", False),
    "CilkPlus-Bag-relaxed": ("cilk-bag", True),
}


def bfs_cycles(graph_name: str, variant: str, n_threads: int,
               config: MachineConfig = KNF, block: int = BLOCK_SIZE,
               seed: int = 0) -> float:
    """Simulated cycles of one BFS run (panel runner)."""
    kind, relaxed = _BFS_VARIANTS[variant]
    run = simulate_bfs(suite_graph(graph_name), n_threads, variant=kind,
                       relaxed=relaxed, block=block, config=config,
                       cache_scale=scale_of(graph_name), seed=seed)
    return run.total_cycles


@lru_cache(maxsize=32)
def _widths(graph_name: str):
    g = suite_graph(graph_name)
    return tuple(frontier_profile(g, g.n_vertices // 2).tolist())


def model_series(graphs: list[str], threads: list[int],
                 block: int = BLOCK_SIZE) -> np.ndarray:
    """Geomean analytic-model speedups, normalised at one thread."""
    per_graph = []
    for g in graphs:
        widths = np.asarray(_widths(g), dtype=np.float64)
        raw = np.asarray([bfs_model_speedup(widths, t, block) for t in threads])
        per_graph.append(raw / raw[0] if raw[0] > 0 else raw)
    stacked = np.stack(per_graph)
    return np.asarray([geomean(stacked[:, i]) for i in range(len(threads))])


def run_fig4_panel(title: str, variants: list[str],
                   graphs: list[str], config: MachineConfig,
                   threads: list[int] | None = None,
                   block: int = BLOCK_SIZE, jobs=None,
                   store=None) -> PanelResult:
    """One Figure 4 panel, with the analytic model as an extra series."""
    threads = threads if threads is not None else \
        panel_threads(host=config is HOST_XEON)
    threads = [t for t in threads if t <= config.max_threads]
    runner = partial(bfs_cycles, config=config, block=block)
    panel = run_panel(title, runner, variants, graphs=graphs, threads=threads,
                      jobs=jobs, store=store)
    panel.series = {"Model": model_series(graphs, panel.thread_counts, block),
                    **panel.series}
    return panel


def run_fig4(graphs=None, threads=None, jobs=None,
             store=None) -> dict[str, PanelResult]:
    """Regenerate all four Figure 4 panels."""
    graphs = graphs if graphs is not None else panel_graphs()
    out = {}
    out["Fig 4(a): BFS speedup, pwtk on Intel MIC"] = run_fig4_panel(
        "Fig 4(a): BFS speedup, pwtk on Intel MIC",
        ["OpenMP-Block-relaxed", "OpenMP-Block"], ["pwtk"], KNF,
        threads=threads, jobs=jobs, store=store)
    out["Fig 4(b): BFS speedup, inline_1 on Intel MIC"] = run_fig4_panel(
        "Fig 4(b): BFS speedup, inline_1 on Intel MIC",
        ["OpenMP-Block-relaxed", "OpenMP-Block"], ["inline_1"], KNF,
        threads=threads, jobs=jobs, store=store)
    out["Fig 4(c): BFS speedup, all graphs on Intel MIC"] = run_fig4_panel(
        "Fig 4(c): BFS speedup, all graphs on Intel MIC",
        ["OpenMP-Block-relaxed", "TBB-Block-relaxed", "CilkPlus-Bag-relaxed"],
        graphs, KNF, threads=threads, jobs=jobs, store=store)
    out["Fig 4(d): BFS speedup, all graphs on host CPU"] = run_fig4_panel(
        "Fig 4(d): BFS speedup, all graphs on host CPU",
        ["OpenMP-Block-relaxed", "TBB-Block-relaxed", "OpenMP-TLS",
         "CilkPlus-Bag-relaxed"],
        graphs, HOST_XEON, jobs=jobs, store=store)
    return out
