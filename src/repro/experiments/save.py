"""Persist experiment results as JSON (reproducibility artifacts).

Panels round-trip losslessly, so a full regeneration can be archived next
to the paper comparison (EXPERIMENTS.md points at ``results_full.txt``;
``save_panels`` produces the machine-readable companion).

Sweep checkpoints: :func:`save_checkpoint` / :func:`load_checkpoint`
persist the raw per-cell cycle measurements of an in-flight
:func:`~repro.experiments.harness.run_panel` sweep (keyed by panel title,
one file can hold several panels) so a crashed 121-thread × 10-graph
panel resumes instead of restarting.  Writes are atomic (tmp +
``os.replace``) — a crash mid-write never corrupts the checkpoint — and
loads are tolerant: a truncated or foreign file warns and resumes from
scratch rather than killing the sweep it was meant to protect.  The
content-addressed campaign store (:mod:`repro.campaign.store`)
supersedes these per-path files for cross-figure/CI reuse; checkpoints
remain for a single portable resume file.
"""

from __future__ import annotations

import json
import math
import os
import warnings

import numpy as np

from repro._util import atomic_write_text
from repro.experiments.harness import PanelResult

__all__ = ["panel_to_dict", "panel_from_dict", "save_panels", "load_panels",
           "save_checkpoint", "load_checkpoint"]

#: Separator for compound JSON keys (graph/variant/threads tuples).
_SEP = "\x1f"


def panel_to_dict(panel: PanelResult) -> dict:
    """JSON-serialisable representation of a panel."""
    return {
        "title": panel.title,
        "thread_counts": list(panel.thread_counts),
        "series": {k: [float(x) for x in v] for k, v in panel.series.items()},
        "per_graph": {f"{v}{_SEP}{g}": [float(x) for x in arr]
                      for (v, g), arr in panel.per_graph.items()},
        "baselines": {g: float(b) for g, b in panel.baselines.items()},
        "failures": {f"{g}{_SEP}{v}{_SEP}{t}": err
                     for (g, v, t), err in panel.failures.items()},
        "notes": panel.notes,
    }


def panel_from_dict(data: dict) -> PanelResult:
    """Inverse of :func:`panel_to_dict`."""
    panel = PanelResult(title=data["title"],
                        thread_counts=list(data["thread_counts"]),
                        notes=data.get("notes", ""))
    panel.series = {k: np.asarray(v) for k, v in data["series"].items()}
    for key, arr in data.get("per_graph", {}).items():
        v, g = key.split(_SEP, 1)
        panel.per_graph[(v, g)] = np.asarray(arr)
    panel.baselines = dict(data.get("baselines", {}))
    for key, err in data.get("failures", {}).items():
        g, v, t = key.split(_SEP, 2)
        panel.failures[(g, v, int(t))] = err
    return panel


def save_panels(panels: dict[str, PanelResult] | PanelResult,
                path: str | os.PathLike) -> None:
    """Write one panel or a dict of panels to *path* as JSON."""
    if isinstance(panels, PanelResult):
        payload = {"panels": {panels.title: panel_to_dict(panels)}}
    else:
        payload = {"panels": {k: panel_to_dict(p) for k, p in panels.items()}}
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)


def load_panels(path: str | os.PathLike) -> dict[str, PanelResult]:
    """Read panels previously written by :func:`save_panels`."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if "panels" not in payload:
        raise ValueError(f"{path}: not a saved-panels file")
    return {k: panel_from_dict(d) for k, d in payload["panels"].items()}


def _atomic_dump(payload: dict, path: str) -> None:
    """Write JSON atomically so a crash never corrupts the file."""
    atomic_write_text(path, json.dumps(payload, indent=1))


def save_checkpoint(path: str | os.PathLike, title: str,
                    cells: dict[tuple[str, str, int], float]) -> None:
    """Persist one panel's raw cell measurements (see module docstring).

    ``cells`` maps ``(graph, variant, threads)`` to simulated cycles; NaN
    cells (failed after retries) are stored as ``null`` so the file stays
    strict JSON.  Other panels already in the file are preserved.
    """
    path = os.fspath(path)
    try:
        payload = _load_checkpoint_payload(path)
    except (OSError, ValueError):
        payload = {"checkpoints": {}}
    payload["checkpoints"][title] = {
        f"{g}{_SEP}{v}{_SEP}{t}": (None if math.isnan(c) else float(c))
        for (g, v, t), c in cells.items()}
    _atomic_dump(payload, path)


def load_checkpoint(path: str | os.PathLike,
                    title: str) -> dict[tuple[str, str, int], float]:
    """Cells previously checkpointed for *title* ({} if none/missing).

    A truncated, corrupt or foreign JSON file is tolerated: the loader
    warns and returns ``{}`` (resume from scratch) instead of raising —
    the next :func:`save_checkpoint` atomically replaces the damaged
    file.  Losing a resume point must never be worse than not having
    one.
    """
    path = os.fspath(path)
    try:
        payload = _load_checkpoint_payload(path)
    except OSError:
        return {}
    except ValueError as exc:
        warnings.warn(f"checkpoint {path} is corrupt ({exc}); "
                      f"resuming from scratch", stacklevel=2)
        return {}
    out = {}
    try:
        for key, c in payload["checkpoints"].get(title, {}).items():
            g, v, t = key.split(_SEP, 2)
            out[(g, v, int(t))] = float("nan") if c is None else float(c)
    except (AttributeError, TypeError, ValueError) as exc:
        warnings.warn(f"checkpoint {path} has malformed cells ({exc}); "
                      f"resuming from scratch", stacklevel=2)
        return {}
    return out


def _load_checkpoint_payload(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if "checkpoints" not in payload or not isinstance(payload["checkpoints"], dict):
        raise ValueError(f"{path}: not a checkpoint file")
    return payload
