"""Persist experiment results as JSON (reproducibility artifacts).

Panels round-trip losslessly, so a full regeneration can be archived next
to the paper comparison (EXPERIMENTS.md points at ``results_full.txt``;
``save_panels`` produces the machine-readable companion).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.experiments.harness import PanelResult

__all__ = ["panel_to_dict", "panel_from_dict", "save_panels", "load_panels"]


def panel_to_dict(panel: PanelResult) -> dict:
    """JSON-serialisable representation of a panel."""
    return {
        "title": panel.title,
        "thread_counts": list(panel.thread_counts),
        "series": {k: [float(x) for x in v] for k, v in panel.series.items()},
        "per_graph": {f"{v}\x1f{g}": [float(x) for x in arr]
                      for (v, g), arr in panel.per_graph.items()},
        "baselines": {g: float(b) for g, b in panel.baselines.items()},
        "notes": panel.notes,
    }


def panel_from_dict(data: dict) -> PanelResult:
    """Inverse of :func:`panel_to_dict`."""
    panel = PanelResult(title=data["title"],
                        thread_counts=list(data["thread_counts"]),
                        notes=data.get("notes", ""))
    panel.series = {k: np.asarray(v) for k, v in data["series"].items()}
    for key, arr in data.get("per_graph", {}).items():
        v, g = key.split("\x1f", 1)
        panel.per_graph[(v, g)] = np.asarray(arr)
    panel.baselines = dict(data.get("baselines", {}))
    return panel


def save_panels(panels: dict[str, PanelResult] | PanelResult,
                path: str | os.PathLike) -> None:
    """Write one panel or a dict of panels to *path* as JSON."""
    if isinstance(panels, PanelResult):
        payload = {"panels": {panels.title: panel_to_dict(panels)}}
    else:
        payload = {"panels": {k: panel_to_dict(p) for k, p in panels.items()}}
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)


def load_panels(path: str | os.PathLike) -> dict[str, PanelResult]:
    """Read panels previously written by :func:`save_panels`."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if "panels" not in payload:
        raise ValueError(f"{path}: not a saved-panels file")
    return {k: panel_from_dict(d) for k, d in payload["panels"].items()}
