"""repro — reproduction of *An Early Evaluation of the Scalability of Graph
Algorithms on the Intel MIC Architecture* (Saule & Çatalyürek, IPDPS-W 2012).

The package provides:

* :mod:`repro.graph` — a CSR graph substrate with FEM-style generators that
  mirror the paper's seven test matrices, reordering, and I/O.
* :mod:`repro.sim` — a deterministic discrete-event engine.
* :mod:`repro.machine` — a timing model of a many-core chip (Knights Ferry
  and a dual-Xeon host), including an SMT core model and a cache/locality
  model.
* :mod:`repro.runtime` — simulated OpenMP, Cilk Plus and TBB runtimes with
  the scheduling policies the paper compares.
* :mod:`repro.kernels` — the paper's three kernels: iterative speculative
  graph coloring, an irregular-computation microbenchmark, and layered BFS
  with bag / TLS-queue / block-queue frontier data structures.
* :mod:`repro.models` — the paper's analytic layered-BFS speedup model.
* :mod:`repro.apps` — the applications the paper motivates: task-graph
  scheduling, betweenness centrality, PageRank, heat diffusion.
* :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from repro.graph import CSRGraph, suite_graph, SUITE
from repro.machine import MachineConfig, KNF, HOST_XEON
from repro.runtime import ProgrammingModel, Schedule, Partitioner
from repro.kernels import (
    greedy_coloring,
    parallel_coloring,
    verify_coloring,
    bfs_sequential,
    bfs_parallel,
    irregular_kernel,
)
from repro.models import bfs_model_speedup

# Single source of truth is the package metadata (pyproject.toml); the
# literal fallback covers PYTHONPATH=src runs without an installed dist.
try:
    from importlib.metadata import version as _dist_version
    __version__ = _dist_version("repro")
except Exception:  # PackageNotFoundError, or exotic import environments
    __version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "suite_graph",
    "SUITE",
    "MachineConfig",
    "KNF",
    "HOST_XEON",
    "ProgrammingModel",
    "Schedule",
    "Partitioner",
    "greedy_coloring",
    "parallel_coloring",
    "verify_coloring",
    "bfs_sequential",
    "bfs_parallel",
    "irregular_kernel",
    "bfs_model_speedup",
    "__version__",
]
