"""Deterministic wall-clock profiler with obs-span-aligned attribution.

A ``sys.setprofile``-based collector (deterministic — every call and
return is observed, nothing is sampled) that buckets **wall time** onto
the same subsystem labels the simulated-cycle tracer uses for its spans
(:data:`repro.obs.tracer.SPAN_BUCKETS`): ``engine:barrier-wait``,
``runtime:chunk``, ``runtime:tls``, ``resources:dram`` and friends.  A
hot-spot table therefore names *our* subsystems — "the engine condition
variables cost 31% of the wall clock" — instead of a flat list of
Python frames, and lines up with what a Perfetto view of the simulated
trace shows.

Attribution walks the live call stack: a frame whose code maps to a
subsystem opens that bucket; frames with no mapping (stdlib, numpy,
helpers) inherit the innermost mapped caller, so a ``heapq.heappush``
inside the event engine is engine time, not anonymous stdlib time.
Time observed before any mapped frame is entered lands in the
``other:python`` catch-all — :meth:`ProfileReport.coverage` reports the
named fraction, which the CI profile gate requires to stay ≥ 90%.

The full stack × self-time table doubles as a flamegraph:
:meth:`ProfileReport.collapsed_lines` emits the standard collapsed-stack
format (``frame;frame;frame <microseconds>``) consumed by
``flamegraph.pl``, speedscope and Perfetto's firefox importer.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro._util import atomic_write_text
from repro.bench.timer import WALL, Clock

__all__ = ["WallProfiler", "ProfileReport", "code_bucket", "OTHER_BUCKET"]

#: Catch-all bucket for time outside any mapped subsystem frame.
OTHER_BUCKET = "other:python"

#: ``path fragment -> bucket`` for modules that map wholesale.  Checked
#: after the function-sensitive rules below; first match wins, ordered
#: most-specific first.
_MODULE_BUCKETS = (
    ("repro/kernels/coloring", "kernels:coloring"),
    ("repro/kernels/bfs", "kernels:bfs"),
    ("repro/kernels/irregular", "kernels:irregular"),
    ("repro/kernels/", "kernels:other"),
    ("repro/machine/cache", "machine:cache-model"),
    ("repro/machine/", "machine:model"),
    ("repro/graph/", "graph:build"),
    ("repro/obs/", "obs:telemetry"),
    ("repro/check/", "check:telemetry"),
    ("repro/sim/faults", "engine:events"),
    ("repro/sim/", "engine:events"),
    ("repro/campaign/", "campaign:executor"),
    ("repro/apps/", "kernels:apps"),
    ("repro/experiments/", "harness:sweep"),
    ("repro/bench/", "harness:sweep"),
)


def _norm(filename: str) -> str:
    return filename.replace(os.sep, "/")


def code_bucket(filename: str, funcname: str) -> str | None:
    """Subsystem bucket for a code location, or None to inherit.

    The engine/runtime/resources rules are function-sensitive so the
    buckets line up with the tracer's span labels: ``Barrier`` methods
    are ``engine:barrier-wait`` wall time exactly as their simulated
    spans are ``barrier-wait`` simulated cycles.
    """
    path = _norm(filename)
    idx = path.rfind("repro/")
    if idx < 0:
        return None
    path = path[idx:]
    fn = funcname.lower()
    if path.startswith("repro/sim/engine"):
        if "barrier" in fn or "release" in fn:
            return "engine:barrier-wait"
        if "cond" in fn or "fire" in fn or "block" in fn:
            return "engine:cond-wait"
        return "engine:events"
    if path.startswith("repro/sim/resources"):
        if "service" in fn or "bank" in fn or "channel" in fn:
            return "resources:dram"
        return "resources:atomic"
    if path.startswith("repro/runtime/"):
        if "tls" in fn:
            return "runtime:tls"
        if "steal" in fn or "deque" in fn:
            return "runtime:steal"
        if "chunk" in fn:
            return "runtime:chunk"
        return "runtime:loop"
    for fragment, bucket in _MODULE_BUCKETS:
        if path.startswith(fragment):
            return bucket
    return None


def _frame_label(frame) -> str:
    """Short stable label for a Python frame: ``module.func``."""
    path = _norm(frame.f_code.co_filename)
    idx = path.rfind("repro/")
    mod = path[idx:] if idx >= 0 else os.path.basename(path)
    if mod.endswith(".py"):
        mod = mod[:-3]
    return f"{mod.replace('/', '.')}.{frame.f_code.co_name}"


@dataclass
class ProfileReport:
    """Accumulated wall-time attribution of one profiled call."""

    buckets: dict = field(default_factory=dict)    # bucket -> self seconds
    functions: dict = field(default_factory=dict)  # (bucket, label) -> seconds
    stacks: dict = field(default_factory=dict)     # tuple[label,...] -> seconds
    calls: int = 0                                 # profile events observed

    @property
    def total_seconds(self) -> float:
        """Total attributed wall time (the sum over buckets)."""
        return sum(self.buckets.values())

    def coverage(self) -> float:
        """Fraction of wall time attributed to named subsystem buckets.

        1.0 when nothing was measured — an empty profile has no
        unattributed time to complain about.
        """
        total = self.total_seconds
        if total <= 0:
            return 1.0
        named = sum(v for k, v in self.buckets.items()
                    if not k.startswith("other:"))
        return named / total

    def top_buckets(self, n: int = 10) -> list[tuple[str, float, float]]:
        """``(bucket, seconds, share)`` rows, largest first."""
        total = self.total_seconds or 1.0
        ordered = sorted(self.buckets.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(b, s, s / total) for b, s in ordered[:n]]

    def top_functions(self, n: int = 10) -> list[tuple[str, str, float, float]]:
        """``(bucket, function, seconds, share)`` rows, largest first."""
        total = self.total_seconds or 1.0
        ordered = sorted(self.functions.items(),
                         key=lambda kv: (-kv[1], kv[0]))
        return [(b, f, s, s / total) for (b, f), s in ordered[:n]]

    def format_table(self, n: int = 10) -> str:
        """ASCII hot-spot tables: buckets first, then functions."""
        from repro.experiments.report import format_rows
        lines = ["wall-clock attribution by subsystem bucket:"]
        lines.append(format_rows(
            ["bucket", "seconds", "share"],
            [(b, f"{s:.4f}", f"{share:.1%}")
             for b, s, share in self.top_buckets(n)]))
        lines.append("")
        lines.append(f"top {n} functions:")
        lines.append(format_rows(
            ["bucket", "function", "seconds", "share"],
            [(b, f, f"{s:.4f}", f"{share:.1%}")
             for b, f, s, share in self.top_functions(n)]))
        lines.append("")
        lines.append(f"coverage: {self.coverage():.1%} of "
                     f"{self.total_seconds:.4f}s wall attributed to named "
                     f"subsystem buckets")
        return "\n".join(lines)

    def collapsed_lines(self) -> list[str]:
        """Flamegraph collapsed-stack lines (``a;b;c <microseconds>``).

        Weights are integer microseconds; zero-weight stacks are
        dropped.  Sorted for byte-stable output under a fake clock.
        """
        out = []
        for stack in sorted(self.stacks):
            us = int(round(self.stacks[stack] * 1e6))
            if us > 0 and stack:
                out.append(";".join(stack) + f" {us}")
        return out

    def write_collapsed(self, path: str | os.PathLike) -> None:
        """Write the collapsed stacks to *path* (atomic)."""
        atomic_write_text(os.fspath(path),
                          "\n".join(self.collapsed_lines()) + "\n")


class WallProfiler:
    """Context manager installing the deterministic collector.

    Usage::

        prof = WallProfiler()
        with prof:
            run = expensive_simulation()
        print(prof.report.format_table(10))

    Only the installing thread is profiled (``sys.setprofile`` is
    per-thread), which matches the simulator: one OS thread runs the
    whole event loop.  Profiling cannot change a single simulated cycle
    — it observes the Python interpreter, not the simulated machine —
    but it does slow wall time down; never wrap benchmark timing runs in
    a profiler.
    """

    def __init__(self, clock: Clock = WALL):
        self._clock = clock
        self._last = 0.0
        self._labels: list[str] = []    # live stack of frame labels
        self._buckets: list[str] = []   # parallel stack of open buckets
        self._installed = False
        self.report = ProfileReport()

    # ----- collection -------------------------------------------------------

    def _attribute(self, dt: float) -> None:
        if dt <= 0.0:
            return
        rep = self.report
        bucket = self._buckets[-1] if self._buckets else OTHER_BUCKET
        rep.buckets[bucket] = rep.buckets.get(bucket, 0.0) + dt
        if self._labels:
            leaf = (bucket, self._labels[-1])
            rep.functions[leaf] = rep.functions.get(leaf, 0.0) + dt
            stack = tuple(self._labels)
            rep.stacks[stack] = rep.stacks.get(stack, 0.0) + dt

    def _hook(self, frame, event: str, arg) -> None:
        now = self._clock()
        self._attribute(now - self._last)
        self.report.calls += 1
        if event == "call":
            label = _frame_label(frame)
            bucket = code_bucket(frame.f_code.co_filename,
                                 frame.f_code.co_name)
            self._labels.append(label)
            self._buckets.append(
                bucket if bucket is not None
                else (self._buckets[-1] if self._buckets else OTHER_BUCKET))
        elif event == "c_call":
            name = getattr(arg, "__qualname__", None) \
                or getattr(arg, "__name__", "builtin")
            self._labels.append(f"<{name}>")
            self._buckets.append(
                self._buckets[-1] if self._buckets else OTHER_BUCKET)
        elif event in ("return", "c_return", "c_exception"):
            # Returns from frames entered before installation underflow;
            # ignore them (their time was attributed to the catch-all).
            if self._labels:
                self._labels.pop()
                self._buckets.pop()
        self._last = self._clock()

    # ----- lifecycle --------------------------------------------------------

    def __enter__(self) -> "WallProfiler":
        if self._installed:
            raise RuntimeError("profiler is already installed")
        self._installed = True
        self._labels.clear()
        self._buckets.clear()
        self._last = self._clock()
        sys.setprofile(self._hook)
        return self

    def __exit__(self, *exc) -> None:
        sys.setprofile(None)
        self._attribute(self._clock() - self._last)
        self._installed = False

    def profile(self, fn: Callable[[], object]) -> object:
        """Run ``fn()`` under the profiler; returns its result."""
        with self:
            return fn()
