"""Pinned benchmark suites and ``BENCH_<suite>.json`` trajectory files.

Four suites cover the layers whose wall-clock cost the ROADMAP speed
items must move:

``figs``
    The paper's figure sweeps (fig1–fig4) at smoke scale — end-to-end
    driver cost including the harness, baselines and aggregation.
``kernels``
    One kernel execution each (colouring, BFS, irregular) in isolation —
    the event engine + runtime hot loops with no sweep machinery around
    them.
``campaign``
    Campaign executor throughput: dispatch overhead per cell (serial
    executor over a trivial runner) and the content-addressed store's
    warm hit path.
``serve``
    The campaign service over live HTTP on an ephemeral port: cold
    submit-to-result latency (journal fsyncs and all) and warm-hit
    resubmission throughput against a pre-seeded sharded store.
``graphs``
    The graph registry at million-vertex scale: one cold streaming
    build of ``tube:1m`` into a fresh registry, and the warm path — a
    new registry instance memory-mapping the same ``.rgr`` file — which
    is the cost every campaign worker pays per graph after the first.

Every benchmark pins its environment (graphs, thread counts, fast mode;
store and checkpoint resume *off* so repetitions measure compute, not
cache hits) and restores it afterwards, so results are comparable across
checkouts and unaffected by the caller's shell.

Results append to versioned trajectory files at the repo root —
``BENCH_figs.json``, ``BENCH_kernels.json``, … — one entry per ``repro
bench run``, carrying an environment fingerprint (python, platform, CPU
count, code fingerprint) so a regression can be told apart from a
machine change.  ``repro bench compare``/``trend`` consume these files;
CI appends on every run and fails on regression past the noise floor.
"""

from __future__ import annotations

import io
import json
import os
import platform
import sys
import tempfile
import time
from contextlib import contextmanager, redirect_stdout
from dataclasses import dataclass
from typing import Callable

from repro._util import atomic_write_text, env_str
from repro.bench.timer import WALL, Clock, Sample, measure

__all__ = ["Benchmark", "BENCHMARKS", "SUITES", "suite_names",
           "suite_benchmarks", "run_suite", "env_fingerprint",
           "validate_entry", "load_trajectory", "append_entry",
           "trajectory_path", "SCHEMA_VERSION", "bench_filter"]

#: Version stamp of the entry schema (bump on incompatible change).
SCHEMA_VERSION = 1

#: Smoke-scale sweep pins shared by the fig benchmarks: two suite graphs
#: and three thread counts keep one fig sweep in low single-digit
#: seconds while still exercising the 1-thread baseline and a wide loop.
_FIG_GRAPHS = "auto,pwtk"
_FIG_THREADS = "1,11,31"


def bench_filter() -> str | None:
    """Benchmark-name substring filter from ``REPRO_BENCH_FILTER``."""
    return env_str("REPRO_BENCH_FILTER")


@contextmanager
def _pinned_env(pins: dict):
    """Pin environment variables for one benchmark run, then restore.

    A pin of ``None`` removes the variable.  ``REPRO_STORE`` and
    ``REPRO_CHECKPOINT`` are always cleared: a warm store would turn a
    compute benchmark into a cache-hit benchmark.
    """
    pins = {"REPRO_STORE": None, "REPRO_CHECKPOINT": None,
            "REPRO_JOBS": None, **pins}
    saved = {name: os.environ.get(name) for name in pins}
    try:
        for name, value in pins.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = str(value)
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark: a pinned, repeatable no-arg callable."""

    name: str
    suite: str
    fn: Callable[[], object]
    description: str = ""


BENCHMARKS: dict[str, Benchmark] = {}


def _register(name: str, suite: str, description: str):
    def deco(fn):
        if name in BENCHMARKS:
            raise ValueError(f"duplicate benchmark name {name!r}")
        BENCHMARKS[name] = Benchmark(name=name, suite=suite, fn=fn,
                                     description=description)
        return fn
    return deco


# ----- figs suite: end-to-end figure sweeps at smoke scale ------------------


def _fig_pins() -> dict:
    return {"REPRO_FAST": "1", "REPRO_GRAPHS": _FIG_GRAPHS,
            "REPRO_THREADS": _FIG_THREADS, "REPRO_PROGRESS": None}


@_register("fig1", "figs", "colouring sweep, natural order")
def _bench_fig1() -> None:
    from repro.experiments.fig1_coloring import run_fig1
    with _pinned_env(_fig_pins()):
        run_fig1()


@_register("fig2", "figs", "colouring sweep, shuffled vertex ids")
def _bench_fig2() -> None:
    from repro.experiments.fig2_shuffled import run_fig2
    with _pinned_env(_fig_pins()):
        run_fig2()


@_register("fig3", "figs", "irregular microbenchmark sweep")
def _bench_fig3() -> None:
    from repro.experiments.fig3_irregular import run_fig3
    with _pinned_env(_fig_pins()):
        run_fig3()


@_register("fig4", "figs", "layered BFS sweep")
def _bench_fig4() -> None:
    from repro.experiments.fig4_bfs import run_fig4
    with _pinned_env(_fig_pins()):
        run_fig4()


# ----- kernels suite: one instrumented-scale kernel run each ----------------


@_register("coloring", "kernels", "one parallel colouring, 31 threads")
def _bench_coloring() -> None:
    from repro.experiments.fig1_coloring import coloring_cycles
    with _pinned_env({}):
        coloring_cycles("pwtk", "OpenMP-dynamic", 31)


@_register("bfs", "kernels", "one layered BFS, 31 threads")
def _bench_bfs() -> None:
    from repro.experiments.fig4_bfs import bfs_cycles
    with _pinned_env({}):
        bfs_cycles("pwtk", "OpenMP-Block-relaxed", 31)


@_register("irregular", "kernels", "one irregular microbenchmark, 31 threads")
def _bench_irregular() -> None:
    from repro.experiments.fig3_irregular import irregular_cycles
    with _pinned_env({}):
        irregular_cycles("auto", "5 x", 31)


# ----- campaign suite: executor and store throughput ------------------------

#: Cells per executor-throughput repetition (trivial runner: measures
#: dispatch/record overhead, reported as cells/sec by ``bench run``).
_EXEC_CELLS = 400


@_register("executor-dispatch", "campaign",
           f"serial executor over {_EXEC_CELLS} trivial cells")
def _bench_executor() -> None:
    from repro.campaign.executor import execute
    with _pinned_env({}):
        report = execute(lambda key: float(key % 7), range(_EXEC_CELLS),
                         jobs=1)
        if report.failed:
            raise RuntimeError(f"executor benchmark failed: {report.errors}")


@_register("store-hits", "campaign",
           f"warm content-addressed store, {_EXEC_CELLS} hits")
def _bench_store_hits() -> None:
    from repro.campaign.executor import execute
    from repro.campaign.store import ResultStore
    with _pinned_env({}), tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        spec_for = lambda key: {"bench": "store-hits", "cell": key}  # noqa: E731
        for key in range(_EXEC_CELLS):
            store.put(spec_for(key), float(key))
        report = execute(lambda key: float(key), range(_EXEC_CELLS),
                         jobs=1, store=store, spec_for=spec_for)
        if report.hits != _EXEC_CELLS:
            raise RuntimeError(
                f"expected {_EXEC_CELLS} hits, got {report.hits}")


# ----- serve suite: the campaign service over live HTTP ---------------------

#: Cells per service benchmark: enough to amortise server startup while
#: keeping one repetition (journal fsyncs included) under a second.
_SERVE_CELLS = 64


def _serve_spec(cells: int) -> dict:
    return {"name": "bench-serve", "experiment": "coloring",
            "graphs": ["auto"], "variants": ["OpenMP-dynamic"],
            "threads": list(range(1, cells + 1)), "machine": "KNF",
            "seeds": [0], "params": {}}


def _serve_stub_runner(cell) -> float:
    return float(cell.threads)


@_register("serve-submit", "serve",
           f"HTTP submit -> results, {_SERVE_CELLS} stub cells, cold store")
def _bench_serve_submit() -> None:
    """Submit-to-result latency of the whole service path: HTTP parse,
    admission, journal (fsync per record), queue, dispatch, settle,
    results serialisation — with a stub runner so compute is nil."""
    from repro.serve import client
    from repro.serve.http import BackgroundServer
    from repro.serve.service import CampaignService
    from repro.serve.shards import ShardedResultStore
    with _pinned_env({}), tempfile.TemporaryDirectory() as root:
        store = ShardedResultStore(root, shards=8, cache_size=1024)
        with BackgroundServer(lambda: CampaignService(
                store, jobs=1, retries=0,
                runner=_serve_stub_runner)) as url:
            status, accepted = client.submit_job(
                url, _serve_spec(_SERVE_CELLS), client="bench")
            if status != 202:
                raise RuntimeError(f"submit rejected: {status} {accepted}")
            client.wait_for_job(url, accepted["job"], timeout=120)
            status, _raw = client.job_results(url, accepted["job"])
            if status != 200:
                raise RuntimeError(f"results fetch failed: {status}")


@_register("serve-warm-hits", "serve",
           f"HTTP submit of {_SERVE_CELLS} store-warm cells")
def _bench_serve_warm_hits() -> None:
    """Warm-resubmission throughput: every cell pre-seeded in the
    sharded store, so the whole job settles at submit time from store
    hits — no queue, no dispatch, no compute."""
    from repro.campaign.spec import CampaignSpec
    from repro.serve import client
    from repro.serve.http import BackgroundServer
    from repro.serve.service import CampaignService
    from repro.serve.shards import ShardedResultStore
    with _pinned_env({}), tempfile.TemporaryDirectory() as root:
        store = ShardedResultStore(root, shards=8, cache_size=1024)
        spec = _serve_spec(_SERVE_CELLS)
        for cell in CampaignSpec.from_dict(spec).expand():
            store.put(cell.to_dict(), float(cell.threads))
        with BackgroundServer(lambda: CampaignService(
                store, jobs=1, retries=0,
                runner=_serve_stub_runner)) as url:
            status, accepted = client.submit_job(url, spec, client="bench")
            if status != 202:
                raise RuntimeError(f"submit rejected: {status} {accepted}")
            cells = accepted["cells"]
            if cells["hits"] != cells["total"]:
                raise RuntimeError(
                    f"expected {cells['total']} store hits, "
                    f"got {cells['hits']}")
            status, _raw = client.job_results(url, accepted["job"])
            if status != 200:
                raise RuntimeError(f"results fetch failed: {status}")


# ----- graphs suite: registry cold build vs warm mmap load ------------------

#: The graph the registry benchmarks build/load: the smallest name that
#: exercises true million-vertex scale (~12.5M directed entries, ~55 MiB
#: on disk).
_GRAPHS_BENCH_NAME = "tube:1m"

#: Lazily-built registry root shared by the warm-load repetitions, so
#: the ~4s build is paid once, not per sample.  Cleaned up at exit.
_graphs_warm_root: str | None = None


def _graphs_warm_registry_root() -> str:
    global _graphs_warm_root
    if _graphs_warm_root is None:
        import atexit
        import shutil
        from repro.graphstore.registry import GraphRegistry
        root = tempfile.mkdtemp(prefix="repro-bench-graphs-")
        GraphRegistry(root).build(_GRAPHS_BENCH_NAME)
        atexit.register(shutil.rmtree, root, True)
        _graphs_warm_root = root
    return _graphs_warm_root


@_register("graphs-cold-build", "graphs",
           f"streaming build + save of {_GRAPHS_BENCH_NAME}, fresh registry")
def _bench_graphs_cold_build() -> None:
    """The full cold path: parse the name, stream-generate a million
    vertices through the external CSR builder, write the checksummed
    ``.rgr``, and mmap it back."""
    from repro.graphstore.registry import GraphRegistry
    with _pinned_env({}), tempfile.TemporaryDirectory() as root:
        registry = GraphRegistry(root)
        graph = registry.get(_GRAPHS_BENCH_NAME)
        if registry.stats.builds != 1 or graph.n_vertices < 1_000_000:
            raise RuntimeError(f"expected one 1M-vertex cold build, got "
                               f"{registry.stats.to_dict()}")


#: Warm loads per repetition: one mmap open is sub-millisecond, so a
#: single load is all clock noise; 20 fresh-registry loads amortise it.
_GRAPHS_WARM_LOADS = 20


@_register("graphs-warm-load", "graphs",
           f"{_GRAPHS_WARM_LOADS} zero-copy mmap loads of a built "
           f"{_GRAPHS_BENCH_NAME}")
def _bench_graphs_warm_load() -> None:
    """The per-worker warm path: a fresh registry instance (cold handle
    cache, as in a new fork) resolving the same name must load via mmap
    with zero generation — O(1) header checks, no payload read."""
    from repro.graphstore.registry import GraphRegistry
    with _pinned_env({}):
        root = _graphs_warm_registry_root()
        for _ in range(_GRAPHS_WARM_LOADS):
            registry = GraphRegistry(root)
            graph = registry.get(_GRAPHS_BENCH_NAME)
            if registry.stats.builds != 0 or registry.stats.hits != 1:
                raise RuntimeError(f"warm load regenerated the graph: "
                                   f"{registry.stats.to_dict()}")
            if graph.n_vertices < 1_000_000:
                raise RuntimeError("warm load returned the wrong graph")


# ----- suite execution ------------------------------------------------------

#: Suite name -> ordered benchmark names (derived from the registry).
SUITES: dict[str, list[str]] = {}
for _name, _bench in BENCHMARKS.items():
    SUITES.setdefault(_bench.suite, []).append(_name)


def suite_names() -> list[str]:
    """The registered suite names, sorted."""
    return sorted(SUITES)


def suite_benchmarks(suite: str,
                     name_filter: str | None = None) -> list[Benchmark]:
    """The suite's benchmarks, optionally filtered by name substring."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} "
                         f"(choose from {suite_names()})")
    if name_filter is None:
        name_filter = bench_filter()
    out = [BENCHMARKS[n] for n in SUITES[suite]
           if name_filter is None or name_filter in n]
    if not out:
        raise ValueError(f"filter {name_filter!r} matches no benchmark in "
                         f"suite {suite!r} (have {SUITES[suite]})")
    return out


def env_fingerprint() -> dict:
    """The environment block stamped into every trajectory entry.

    Identifies *where* an entry was measured — comparing entries whose
    fingerprints disagree on machine or python is a warning, not a
    regression.
    """
    import repro
    from repro.campaign.store import code_fingerprint
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "repro_version": repro.__version__,
        "code_fingerprint": code_fingerprint(),
    }


def run_suite(suite: str, *, repeat: int | None = None,
              warmup: int | None = None, name_filter: str | None = None,
              clock: Clock = WALL, stamp: Clock = time.time,
              progress=None) -> dict:
    """Run every benchmark of *suite*; returns one trajectory entry.

    *clock* times the repetitions and *stamp* produces the entry's
    ``generated_at`` — both injectable so tests get byte-stable entries.
    *progress* (``callable(str)``) receives one line per benchmark.
    Benchmark stdout is swallowed: the drivers print ASCII panels, and a
    timing run is not the place for them.
    """
    benches = suite_benchmarks(suite, name_filter)
    results: dict[str, dict] = {}
    for bench in benches:
        if progress is not None:
            progress(f"bench {bench.name} ({bench.description}) ...")
        sink = io.StringIO()
        with redirect_stdout(sink):
            sample = measure(bench.fn, repeat=repeat, warmup=warmup,
                             clock=clock)
        results[bench.name] = sample.to_dict()
        if progress is not None:
            progress(f"bench {bench.name}: median "
                     f"{sample.median:.4f}s over {sample.repeat} run(s) "
                     f"(spread {sample.spread:.1%})")
    entry = {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "generated_at": float(stamp()),
        "env": env_fingerprint(),
        "results": results,
    }
    validate_entry(entry)
    return entry


# ----- trajectory files -----------------------------------------------------


def validate_entry(entry: object) -> dict:
    """Schema-check one trajectory entry; returns it or raises ValueError."""
    if not isinstance(entry, dict):
        raise ValueError(f"entry must be an object, got {type(entry).__name__}")
    for key in ("schema", "suite", "generated_at", "env", "results"):
        if key not in entry:
            raise ValueError(f"entry is missing {key!r}")
    if entry["schema"] != SCHEMA_VERSION:
        raise ValueError(f"unsupported entry schema {entry['schema']!r} "
                         f"(expected {SCHEMA_VERSION})")
    if not isinstance(entry["results"], dict) or not entry["results"]:
        raise ValueError("entry has no results")
    for name, stats in entry["results"].items():
        if not isinstance(stats, dict):
            raise ValueError(f"result {name!r} is not a stats block")
        for field in ("median_s", "min_s", "spread", "samples_s"):
            if field not in stats:
                raise ValueError(f"result {name!r} is missing {field!r}")
        if not stats["samples_s"]:
            raise ValueError(f"result {name!r} has no samples")
    env = entry["env"]
    if not isinstance(env, dict) or "code_fingerprint" not in env:
        raise ValueError("entry env block is missing code_fingerprint")
    return entry


def trajectory_path(suite: str, directory: str | os.PathLike = ".") -> str:
    """Default trajectory file for *suite*: ``<dir>/BENCH_<suite>.json``."""
    return os.path.join(os.fspath(directory), f"BENCH_{suite}.json")


def load_trajectory(path: str | os.PathLike) -> dict:
    """Load + schema-check a trajectory file (or a bare entry).

    A bare entry (as written by ``bench run --output`` with
    ``--no-append``) is wrapped into a single-entry trajectory so the
    compare/trend layer handles both shapes.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and "entries" not in data:
        entry = validate_entry(data)
        return {"bench_schema": SCHEMA_VERSION, "suite": entry["suite"],
                "entries": [entry]}
    if not isinstance(data, dict) or data.get("bench_schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: not a repro bench trajectory file")
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: trajectory has no entries")
    for entry in entries:
        validate_entry(entry)
        if entry["suite"] != data.get("suite"):
            raise ValueError(f"{path}: entry suite {entry['suite']!r} does "
                             f"not match file suite {data.get('suite')!r}")
    return data


def append_entry(path: str | os.PathLike, entry: dict) -> dict:
    """Append *entry* to the trajectory at *path* (created if missing).

    Returns the updated trajectory.  Writes are atomic with sorted keys
    — the same bytes for the same entries, regardless of insertion
    history.
    """
    validate_entry(entry)
    path = os.fspath(path)
    if os.path.exists(path):
        data = load_trajectory(path)
        if data["suite"] != entry["suite"]:
            raise ValueError(
                f"{path} tracks suite {data['suite']!r}, refusing to append "
                f"a {entry['suite']!r} entry")
    else:
        data = {"bench_schema": SCHEMA_VERSION, "suite": entry["suite"],
                "entries": []}
    data["entries"].append(entry)
    atomic_write_text(path, json.dumps(data, sort_keys=True, indent=1) + "\n")
    return data


def print_entry(entry: dict, stream=None) -> None:
    """Human-readable table of one entry's results."""
    from repro.experiments.report import format_rows
    stream = stream if stream is not None else sys.stdout
    rows = []
    for name in sorted(entry["results"]):
        stats = entry["results"][name]
        rows.append((name, f"{stats['median_s']:.4f}",
                     f"{stats['min_s']:.4f}", f"{stats['spread']:.1%}",
                     str(stats.get("repeat", len(stats["samples_s"])))))
    print(format_rows(["benchmark", "median_s", "min_s", "spread", "runs"],
                      rows), file=stream)
